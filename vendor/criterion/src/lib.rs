//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the workspace's benchmark sources compiling and runnable with
//! `cargo bench` in an environment without registry access. Measurement
//! is rudimentary — a warm-up pass, then a fixed batch timed with
//! `std::time::Instant` and reported as mean wall time per iteration —
//! with none of criterion's statistics, plots, or history.

use std::time::Instant;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    // Warm-up / correctness pass.
    f(&mut b);
    // Timed pass.
    b.iters = sample_size as u64;
    b.elapsed_ns = 0;
    f(&mut b);
    let per_iter = b.elapsed_ns as f64 / b.iters.max(1) as f64;
    println!("bench {name}: {:.1} ns/iter ({} iters)", per_iter, b.iters);
}

/// Runs the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `f` over this bencher's iteration budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Re-export for sources that import `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        // Warm-up (1 iter) + timed batch (sample_size iters).
        assert_eq!(calls, 1 + 20);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        g.finish();
        assert_eq!(calls, 1 + 5);
    }
}
