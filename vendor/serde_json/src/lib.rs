//! Offline vendored stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text and parses
//! JSON text back into it. Floats are written with Rust's shortest
//! round-trip formatting (`{:?}`), and non-finite floats serialize as
//! `null`, matching real serde_json's behavior.

use serde::{Deserialize, Serialize, Value};

/// Error produced when JSON parsing or deserialization fails.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // {:?} yields the shortest representation that
                // round-trips, e.g. "1.0", "0.30000000000000004".
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("truncated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them loudly.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported surrogate escape"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}

/// Parse JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut parser = Parser::new(bytes);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing bytes after JSON value at {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    from_slice(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let v = Value::Seq(vec![
            Value::Null,
            Value::Bool(true),
            Value::I64(-7),
            Value::U64(18_446_744_073_709_551_615),
            Value::F64(0.1 + 0.2),
            Value::Str("a\"b\\c\nd".into()),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        let again = to_string(&back).unwrap();
        assert_eq!(text, again);
    }

    #[test]
    fn floats_shortest_round_trip() {
        let text = to_string(&1.0f64).unwrap();
        assert_eq!(text, "1.0");
        let x: f64 = from_str("0.30000000000000004").unwrap();
        assert_eq!(x, 0.1 + 0.2);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let x: f64 = from_str("null").unwrap();
        assert!(x.is_nan());
    }

    #[test]
    fn nested_object() {
        let text = r#"{"a": [1, 2.5], "b": {"c": "hi"}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.field("a").as_seq().unwrap().len(), 2);
        assert_eq!(v.field("b").field("c").as_str().unwrap(), "hi");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
