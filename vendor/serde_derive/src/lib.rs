//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The registry is unreachable in this build environment, so this macro
//! is written against `proc_macro` alone — no `syn`, no `quote`. It
//! parses the handful of item shapes the workspace actually uses and
//! emits `impl serde::Serialize` / `impl serde::Deserialize` blocks by
//! building Rust source text and re-parsing it.
//!
//! Supported shapes: named-field structs, newtype (single-field tuple)
//! structs, enums whose variants are unit / newtype / named-field, the
//! container attributes `#[serde(tag = "...", rename_all =
//! "snake_case")]`, and the field attributes `#[serde(with = "module")]`
//! and `#[serde(default)]` (absent keys fall back to `Default::default()`).
//! Anything else fails the build with a descriptive panic, which is the
//! desired behavior: extend this macro deliberately rather than guess.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

enum VariantShape {
    Unit,
    Newtype,
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
    tag: Option<String>,
    rename_all_snake: bool,
}

/// Collect `key = "value"` pairs from the tokens inside `#[serde(...)]`.
fn parse_serde_args(group: &proc_macro::Group) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match (&tokens[i], tokens.get(i + 1), tokens.get(i + 2)) {
            (TokenTree::Ident(key), Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                if eq.as_char() == '=' =>
            {
                let raw = lit.to_string();
                out.push((key.to_string(), raw.trim_matches('"').to_string()));
                i += 3;
            }
            // Bare flag attribute like `#[serde(default)]`.
            (TokenTree::Ident(key), next, _)
                if next.is_none()
                    || matches!(next, Some(TokenTree::Punct(p)) if p.as_char() == ',') =>
            {
                out.push((key.to_string(), String::new()));
                i += 1;
            }
            (TokenTree::Punct(p), _, _) if p.as_char() == ',' => i += 1,
            other => panic!("unsupported #[serde(...)] syntax near {other:?}"),
        }
    }
    out
}

/// Skip attributes starting at `i`; returns the new index and any
/// `#[serde(...)]` key/value pairs seen.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, Vec<(String, String)>) {
    let mut serde_args = Vec::new();
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    serde_args.extend(parse_serde_args(args));
                }
            }
        }
        i += 2;
    }
    (i, serde_args)
}

/// Skip a `pub` / `pub(...)` visibility prefix.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split the tokens of a brace/paren group body at top-level commas,
/// treating `<...>` nesting as opaque.
fn split_top_level(body: &proc_macro::Group) -> Vec<Vec<TokenTree>> {
    let mut pieces = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth: i32 = 0;
    for tok in body.stream() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    pieces.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        pieces.push(current);
    }
    pieces
}

fn parse_field(tokens: &[TokenTree]) -> Field {
    let (i, serde_args) = skip_attrs(tokens, 0);
    let i = skip_vis(tokens, i);
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected field name, got {:?}", tokens.get(i));
    };
    let mut with = None;
    let mut default = false;
    for (key, value) in serde_args {
        match key.as_str() {
            "with" => with = Some(value),
            "default" if value.is_empty() => default = true,
            other => panic!("unsupported field attribute #[serde({other} = ...)]"),
        }
    }
    Field {
        name: name.to_string(),
        with,
        default,
    }
}

fn parse_variant(tokens: &[TokenTree]) -> Variant {
    let (i, serde_args) = skip_attrs(tokens, 0);
    if !serde_args.is_empty() {
        panic!("unsupported variant-level #[serde(...)] attribute");
    }
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected variant name, got {:?}", tokens.get(i));
    };
    let shape = match tokens.get(i + 1) {
        None => VariantShape::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let pieces = split_top_level(g);
            if pieces.len() != 1 {
                panic!(
                    "only newtype tuple variants are supported, {name} has {}",
                    pieces.len()
                );
            }
            VariantShape::Newtype
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantShape::Named(
            split_top_level(g)
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| parse_field(p))
                .collect(),
        ),
        other => panic!("unsupported variant shape for {name}: {other:?}"),
    };
    Variant {
        name: name.to_string(),
        shape,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (i, serde_args) = skip_attrs(&tokens, 0);
    let i = skip_vis(&tokens, i);
    let TokenTree::Ident(keyword) = &tokens[i] else {
        panic!("expected struct/enum, got {:?}", tokens.get(i));
    };
    let keyword = keyword.to_string();
    let TokenTree::Ident(name) = &tokens[i + 1] else {
        panic!("expected item name, got {:?}", tokens.get(i + 1));
    };
    let name = name.to_string();
    if matches!(&tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the vendored serde derive ({name})");
    }

    let mut tag = None;
    let mut rename_all_snake = false;
    for (key, value) in serde_args {
        match (key.as_str(), value.as_str()) {
            ("tag", t) => tag = Some(t.to_string()),
            ("rename_all", "snake_case") => rename_all_snake = true,
            (other, v) => panic!("unsupported container attribute #[serde({other} = \"{v}\")]"),
        }
    }

    let kind = match (keyword.as_str(), &tokens[i + 2]) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            ItemKind::NamedStruct(
                split_top_level(g)
                    .iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| parse_field(p))
                    .collect(),
            )
        }
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if split_top_level(g).len() != 1 {
                panic!("only newtype tuple structs are supported ({name})");
            }
            ItemKind::NewtypeStruct
        }
        ("enum", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => ItemKind::Enum(
            split_top_level(g)
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| parse_variant(p))
                .collect(),
        ),
        (kw, other) => panic!("unsupported item shape: {kw} {name} {other:?}"),
    };

    Item {
        name,
        kind,
        tag,
        rename_all_snake,
    }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

impl Item {
    fn variant_tag(&self, variant: &str) -> String {
        if self.rename_all_snake {
            snake_case(variant)
        } else {
            variant.to_string()
        }
    }
}

fn push_field_ser(out: &mut String, field: &Field, access: &str) {
    match &field.with {
        Some(module) => out.push_str(&format!(
            "m.push((String::from(\"{n}\"), {module}::serialize({access})));\n",
            n = field.name
        )),
        None => out.push_str(&format!(
            "m.push((String::from(\"{n}\"), serde::Serialize::to_value({access})));\n",
            n = field.name
        )),
    }
}

fn field_de(field: &Field, source: &str) -> String {
    let read = match &field.with {
        Some(module) => format!(
            "{module}::deserialize({source}.field(\"{n}\"))?",
            n = field.name
        ),
        None => format!(
            "serde::Deserialize::from_value({source}.field(\"{n}\"))?",
            n = field.name
        ),
    };
    if field.default {
        // Absent keys read back as Null; fall back to the type's default.
        format!(
            "{n}: match {source}.field(\"{n}\") {{ serde::Value::Null => \
             std::default::Default::default(), _ => {read} }}",
            n = field.name
        )
    } else {
        format!("{n}: {read}", n = field.name)
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut s = String::from("let mut m: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fields {
                push_field_ser(&mut s, f, &format!("&self.{}", f.name));
            }
            s.push_str("serde::Value::Map(m)\n");
            s
        }
        ItemKind::NewtypeStruct => String::from("serde::Serialize::to_value(&self.0)\n"),
        ItemKind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vtag = item.variant_tag(&v.name);
                match (&v.shape, &item.tag) {
                    (VariantShape::Unit, None) => s.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(String::from(\"{vtag}\")),\n",
                        v = v.name
                    )),
                    (VariantShape::Unit, Some(tag)) => s.push_str(&format!(
                        "{name}::{v} => serde::Value::Map(vec![(String::from(\"{tag}\"), \
                         serde::Value::Str(String::from(\"{vtag}\")))]),\n",
                        v = v.name
                    )),
                    (VariantShape::Newtype, None) => s.push_str(&format!(
                        "{name}::{v}(inner) => serde::Value::Map(vec![(String::from(\"{vtag}\"), \
                         serde::Serialize::to_value(inner))]),\n",
                        v = v.name
                    )),
                    (VariantShape::Newtype, Some(_)) => {
                        panic!(
                            "newtype variants cannot be internally tagged ({name}::{})",
                            v.name
                        )
                    }
                    (VariantShape::Named(fields), tag) => {
                        let pattern: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\n",
                            v = v.name,
                            pat = pattern.join(", ")
                        ));
                        s.push_str("let mut m: Vec<(String, serde::Value)> = Vec::new();\n");
                        if let Some(tag) = tag {
                            s.push_str(&format!(
                                "m.push((String::from(\"{tag}\"), \
                                 serde::Value::Str(String::from(\"{vtag}\"))));\n"
                            ));
                        }
                        for f in fields {
                            push_field_ser(&mut s, f, &f.name);
                        }
                        if tag.is_some() {
                            s.push_str("serde::Value::Map(m)\n}\n");
                        } else {
                            s.push_str(&format!(
                                "serde::Value::Map(vec![(String::from(\"{vtag}\"), \
                                 serde::Value::Map(m))])\n}}\n"
                            ));
                        }
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_de(f, "v")).collect();
            format!("Ok({name} {{ {} }})\n", inits.join(", "))
        }
        ItemKind::NewtypeStruct => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))\n")
        }
        ItemKind::Enum(variants) => {
            let mut s = String::new();
            match &item.tag {
                Some(tag) => {
                    s.push_str(&format!("let kind = v.field(\"{tag}\").as_str()?;\n"));
                    s.push_str("match kind {\n");
                    for var in variants {
                        let vtag = item.variant_tag(&var.name);
                        match &var.shape {
                            VariantShape::Unit => s.push_str(&format!(
                                "\"{vtag}\" => Ok({name}::{v}),\n",
                                v = var.name
                            )),
                            VariantShape::Named(fields) => {
                                let inits: Vec<String> =
                                    fields.iter().map(|f| field_de(f, "v")).collect();
                                s.push_str(&format!(
                                    "\"{vtag}\" => Ok({name}::{v} {{ {init} }}),\n",
                                    v = var.name,
                                    init = inits.join(", ")
                                ));
                            }
                            VariantShape::Newtype => {
                                panic!("newtype variants cannot be internally tagged ({name})")
                            }
                        }
                    }
                    s.push_str(&format!(
                        "other => Err(serde::Error::msg(format!(\"unknown {name} \
                         variant {{other}}\"))),\n}}\n"
                    ));
                }
                None => {
                    // Externally tagged: a bare string names a unit
                    // variant; a single-entry map names a data variant.
                    s.push_str("if let serde::Value::Str(s) = v {\nmatch s.as_str() {\n");
                    for var in variants {
                        if matches!(var.shape, VariantShape::Unit) {
                            s.push_str(&format!(
                                "\"{vtag}\" => return Ok({name}::{v}),\n",
                                vtag = item.variant_tag(&var.name),
                                v = var.name
                            ));
                        }
                    }
                    s.push_str("_ => {}\n}\n}\n");
                    s.push_str(
                        "if let serde::Value::Map(entries) = v {\n\
                         if entries.len() == 1 {\n\
                         let (key, inner) = &entries[0];\n\
                         match key.as_str() {\n",
                    );
                    for var in variants {
                        let vtag = item.variant_tag(&var.name);
                        match &var.shape {
                            VariantShape::Unit => {}
                            VariantShape::Newtype => s.push_str(&format!(
                                "\"{vtag}\" => return \
                                 Ok({name}::{v}(serde::Deserialize::from_value(inner)?)),\n",
                                v = var.name
                            )),
                            VariantShape::Named(fields) => {
                                let inits: Vec<String> =
                                    fields.iter().map(|f| field_de(f, "inner")).collect();
                                s.push_str(&format!(
                                    "\"{vtag}\" => return Ok({name}::{v} {{ {init} }}),\n",
                                    v = var.name,
                                    init = inits.join(", ")
                                ));
                            }
                        }
                    }
                    s.push_str("_ => {}\n}\n}\n}\n");
                    s.push_str(&format!(
                        "Err(serde::Error::msg(format!(\"cannot deserialize {name} \
                         from {{v:?}}\")))\n"
                    ));
                }
            }
            s
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> Result<{name}, serde::Error> {{\n{body}}}\n}}\n"
    )
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{code}"))
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{code}"))
}
