//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! the minimal surface it actually uses: the [`RngCore`] / [`SeedableRng`]
//! traits and the [`Error`] type. All simulation-critical sampling is
//! implemented locally in `cloudchar-simcore`; this crate exists only so
//! `SimRng` keeps exposing the standard trait vocabulary.

/// Error type for fallible RNG operations (never produced by cloudchar's
/// infallible generators).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// An error with a static description.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible generators simply delegate.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed;

    /// Build a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn traits_compose() {
        let mut r = Lcg::from_seed([1, 0, 0, 0, 0, 0, 0, 0]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        let mut buf = [0u8; 5];
        r.try_fill_bytes(&mut buf).expect("infallible");
        assert!(buf.iter().any(|&x| x != 0));
    }

    #[test]
    fn error_displays() {
        let e = Error::new("boom");
        assert!(format!("{e}").contains("boom"));
    }
}
