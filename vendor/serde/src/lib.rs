//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace ships a
//! self-contained serialization framework under the same crate name. It
//! keeps serde's surface syntax — `#[derive(Serialize, Deserialize)]`,
//! `use serde::{Serialize, Deserialize}` — but the data model is a single
//! JSON-shaped [`Value`] tree instead of serde's visitor machinery:
//!
//! * [`Serialize::to_value`] renders a type into a [`Value`];
//! * [`Deserialize::from_value`] rebuilds the type from a [`Value`];
//! * the companion `serde_json` vendored crate converts [`Value`] to and
//!   from JSON text.
//!
//! Supported derive shapes (everything cloudchar uses): named-field
//! structs, newtype structs, unit-variant enums, newtype/struct-variant
//! enums (externally tagged), internally tagged enums via
//! `#[serde(tag = "...", rename_all = "snake_case")]`, and per-field
//! `#[serde(with = "module")]` redirection.

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped self-describing value.
///
/// Maps preserve insertion order (struct field order), which keeps the
/// serialized form deterministic for identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an ordered entry list.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Look up an object field; absent keys read as [`Value::Null`].
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }

    /// Borrow as an array.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(xs) => Ok(xs),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }

    /// Borrow as an object entry list.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }

    /// Numeric view as `f64` (accepts any number representation).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            // serde_json writes non-finite floats as null; read them back
            // as NaN so a value round-trips structurally.
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            ref other => Err(Error::msg(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(x) => Ok(x),
            Value::U64(x) if x <= i64::MAX as u64 => Ok(x as i64),
            ref other => Err(Error::msg(format!("expected integer, got {other:?}"))),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match *self {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying a description.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v.as_u64()?;
        usize::try_from(raw).map_err(|_| Error::msg(format!("{raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = v.as_i64()?;
        isize::try_from(raw).map_err(|_| Error::msg(format!("{raw} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq()? {
            [a, b] => Ok((A::from_value(a)?, B::from_value(b)?)),
            xs => Err(Error::msg(format!(
                "expected 2-tuple, got {} items",
                xs.len()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq()? {
            [a, b, c] => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            xs => Err(Error::msg(format!(
                "expected 3-tuple, got {} items",
                xs.len()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_defaults_to_null() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.field("a"), &Value::U64(1));
        assert_eq!(m.field("missing"), &Value::Null);
        assert_eq!(Value::Bool(true).field("x"), &Value::Null);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::U64(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::I64(-2).as_f64().unwrap(), -2.0);
        assert_eq!(Value::I64(5).as_u64().unwrap(), 5);
        assert!(Value::I64(-5).as_u64().is_err());
        assert!(Value::Null.as_f64().unwrap().is_nan());
    }

    #[test]
    fn container_round_trips() {
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
        let pair = ("k".to_string(), 2.5f64);
        assert_eq!(<(String, f64)>::from_value(&pair.to_value()).unwrap(), pair);
        let trip = ("a".to_string(), 1u64, 0.5f64);
        assert_eq!(
            <(String, u64, f64)>::from_value(&trip.to_value()).unwrap(),
            trip
        );
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1.5f64);
        m.insert("y".to_string(), -2.0);
        let back = BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(i8::from_value(&Value::I64(-300)).is_err());
        assert_eq!(u8::from_value(&Value::U64(255)).unwrap(), 255);
    }
}
