//! Offline vendored stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses —
//! [`Strategy`], `any::<T>()`, range / tuple / `collection::vec` /
//! `option::of` strategies, `prop_map`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * **Deterministic**: cases are generated from a seed derived from the
//!   test's name, never from wall-clock entropy, so failures reproduce
//!   exactly and `cargo test` is stable run-to-run.
//! * **No shrinking**: a failing case panics with the case index; rerun
//!   with the same build to reproduce it.

use std::ops::Range;

/// Number of generated cases per `proptest!` test function.
pub const NUM_CASES: u64 = 64;

/// Deterministic generator state (SplitMix64).
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seed from a test name, so every test gets a distinct but stable
    /// case sequence.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Gen { state: h }
    }

    /// Re-derive the stream for a given case index.
    pub fn reseed_case(&mut self, base: u64, case: u64) {
        self.state = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    /// Raw seed value for this generator.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for producing values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produce one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, g: &mut Gen) -> O {
        (self.f)(self.inner.generate(g))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                let offset = (u128::from(g.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        self.start + g.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Produce an arbitrary value.
    fn arbitrary(g: &mut Gen) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> bool {
        g.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> $t {
                g.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(g: &mut Gen) -> Self {
                ($(<$name as Arbitrary>::arbitrary(g),)+)
            }
        }
    )*};
}
impl_arbitrary_tuple! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = self.len.generate(g);
            (0..n).map(|_| self.element.generate(g)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Gen, Strategy};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, g: &mut Gen) -> Option<S::Value> {
            if g.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(g))
            }
        }
    }
}

/// Define deterministic property tests.
///
/// Each function runs [`NUM_CASES`] generated cases; a failing
/// `prop_assert!` panics with the case index for reproduction.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut g = $crate::Gen::from_name(stringify!($name));
                let base = g.seed();
                for case in 0..$crate::NUM_CASES {
                    g.reseed_case(base, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut g);)+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = Gen::from_name("ranges");
        for _ in 0..1000 {
            let x = (3u32..17).generate(&mut g);
            assert!((3..17).contains(&x));
            let y = (-1e6f64..1e6).generate(&mut g);
            assert!((-1e6..1e6).contains(&y));
            let z = (-5i32..5).generate(&mut g);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec((any::<bool>(), 0u64..100), 1..20);
        let mut g1 = Gen::from_name("det");
        let mut g2 = Gen::from_name("det");
        assert_eq!(strat.generate(&mut g1), strat.generate(&mut g2));
        let mut g3 = Gen::from_name("other");
        let _ = strat.generate(&mut g3);
        assert_ne!(g1.seed(), g3.seed());
    }

    #[test]
    fn prop_map_and_option_compose() {
        let strat = option::of((0u8..10).prop_map(|x| x * 2));
        let mut g = Gen::from_name("compose");
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            match strat.generate(&mut g) {
                None => saw_none = true,
                Some(x) => {
                    assert!(x % 2 == 0 && x < 20);
                    saw_some = true;
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    proptest! {
        #[test]
        fn macro_compiles_and_runs(xs in collection::vec(0u64..50, 1..10), flag in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            let total: u64 = xs.iter().sum();
            prop_assert!(total <= 50 * xs.len() as u64, "sum {total} too large (flag {flag})");
            prop_assert_eq!(xs.len(), xs.iter().count());
        }
    }
}
