//! Metric synthesis: raw model activity → full sysstat / perf vectors.
//!
//! The simulator's device and kernel models expose a compact set of raw
//! per-interval deltas (cycles, bytes, faults, switches). sar and perf
//! derive their hundreds of fields from exactly such kernel counters;
//! this module performs the same derivation so every 2-second sample
//! fills the complete 518-metric catalog. Figure-relevant metrics are
//! exact transcriptions of model state; secondary fields (e.g. TLB miss
//! rates) are derived with fixed microarchitectural ratios so they are
//! *consistent* (monotone in the underlying activity) rather than
//! independently calibrated.
//!
//! The hot path is allocation-free: metric names are only rendered once
//! per process (the *layout* pass, which resolves each emission slot to
//! its [`MetricId`] via the catalog); steady-state synthesis pairs the
//! cached ids with freshly computed values positionally and appends them
//! to a caller-owned [`SampleRow`]. The emission order is fixed — it
//! never depends on sample values — which is what makes the positional
//! pairing sound.

use crate::catalog::catalog;
use crate::metric::{MetricId, Source};
use crate::store::SampleRow;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Raw activity of one host (VM, dom0, or physical machine) over one
/// sampling interval.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RawHostSample {
    /// Interval length in seconds.
    pub dt_s: f64,
    /// CPU cycles executed this interval.
    pub cpu_cycles: f64,
    /// Cycle capacity this interval (cores × Hz × dt).
    pub cpu_capacity_cycles: f64,
    /// Fraction of busy time in user mode (rest is system).
    pub user_frac: f64,
    /// Steal time as a fraction of the interval (virtualized guests).
    pub steal_frac: f64,
    /// I/O wait as a fraction of the interval.
    pub iowait_frac: f64,
    /// Total memory in KB.
    pub mem_total_kb: f64,
    /// Used memory in KB (anonymous + cache).
    pub mem_used_kb: f64,
    /// Page-cache KB.
    pub mem_cached_kb: f64,
    /// Dirty page KB.
    pub mem_dirty_kb: f64,
    /// Disk bytes read this interval.
    pub disk_read_bytes: f64,
    /// Disk bytes written this interval.
    pub disk_write_bytes: f64,
    /// Read operations.
    pub disk_reads: f64,
    /// Write operations.
    pub disk_writes: f64,
    /// Disk busy seconds this interval.
    pub disk_busy_s: f64,
    /// Network bytes received.
    pub net_rx_bytes: f64,
    /// Network bytes transmitted.
    pub net_tx_bytes: f64,
    /// Packets received.
    pub net_rx_pkts: f64,
    /// Packets transmitted.
    pub net_tx_pkts: f64,
    /// Context switches.
    pub cswch: f64,
    /// Interrupts handled.
    pub intr: f64,
    /// Processes created.
    pub forks: f64,
    /// Page faults.
    pub page_faults: f64,
    /// Run-queue length at sample time.
    pub runq: f64,
    /// Total tasks.
    pub nproc: f64,
    /// Tasks blocked on I/O.
    pub blocked: f64,
    /// TCP connections opened this interval.
    pub tcp_active: f64,
    /// Open TCP sockets at sample time.
    pub tcp_sockets: f64,
    /// Number of CPUs visible to this host.
    pub cores: u32,
    /// Core clock in Hz.
    pub core_hz: f64,
}

/// Average instructions per cycle assumed for the web/db workload when
/// deriving instruction-derived counters.
const IPC: f64 = 0.85;
/// Cache references per thousand instructions.
const CACHE_REF_PER_KI: f64 = 42.0;
/// LLC miss ratio of cache references.
const LLC_MISS_RATIO: f64 = 0.18;
/// Branch instructions per thousand instructions.
const BRANCH_PER_KI: f64 = 190.0;
/// Branch misprediction ratio.
const BRANCH_MISS_RATIO: f64 = 0.035;
/// dTLB miss per thousand instructions.
const DTLB_MISS_PER_KI: f64 = 1.3;

/// Walk the sysstat emission schedule for one host sample, handing each
/// `(name, value)` pair to `sink`. Names are passed as
/// [`std::fmt::Arguments`] so the steady-state caller never renders
/// them; the emission *order* is a fixed property of this function and
/// never depends on `raw`'s values.
fn emit_sysstat(raw: &RawHostSample, mut sink: impl FnMut(std::fmt::Arguments<'_>, f64)) {
    macro_rules! set {
        ($name:literal, $v:expr) => {
            sink(format_args!($name), $v)
        };
    }
    let dt = raw.dt_s.max(1e-9);
    let steal_frac = raw.steal_frac.clamp(0.0, 1.0);
    let iowait_frac = raw.iowait_frac.clamp(0.0, 1.0);
    // Busy time competes with steal and iowait for the same 100%; at
    // saturation sar renormalizes rather than reporting >100%.
    let busy = (raw.cpu_cycles / raw.cpu_capacity_cycles.max(1.0))
        .clamp(0.0, (1.0 - steal_frac - iowait_frac).max(0.0));
    let user = busy * raw.user_frac.clamp(0.0, 1.0) * 100.0;
    let system = busy * (1.0 - raw.user_frac.clamp(0.0, 1.0)) * 100.0;
    let steal = steal_frac * 100.0;
    let iowait = iowait_frac * 100.0;
    let idle = (100.0 - user - system - steal - iowait).max(0.0);
    let soft = system * 0.2;
    let irq = system * 0.08;

    // CPU.
    set!("%user", user);
    set!("%nice", 0.0);
    set!("%system", system);
    set!("%iowait", iowait);
    set!("%steal", steal);
    set!("%idle", idle);
    set!("%irq", irq);
    set!("%soft", soft);
    set!("%guest", 0.0);
    set!("%gnice", 0.0);
    // Per-CPU: distribute busy time with a deterministic skew (IRQ
    // affinity pins more work on low cores, as on the real testbed).
    let cores = raw.cores.max(1);
    for cpu in 0..8 {
        if cpu < cores {
            let skew = 1.0 + 0.25 * f64::from(cores - cpu) / f64::from(cores);
            let norm = skew * f64::from(cores)
                / (0..cores)
                    .map(|k| 1.0 + 0.25 * f64::from(cores - k) / f64::from(cores))
                    .sum::<f64>();
            let u = (user * norm).min(100.0);
            let s = (system * norm).min(100.0 - u);
            set!("cpu{cpu}-%user", u);
            set!("cpu{cpu}-%system", s);
            set!("cpu{cpu}-%idle", (100.0 - u - s).max(0.0));
        } else {
            set!("cpu{cpu}-%user", 0.0);
            set!("cpu{cpu}-%system", 0.0);
            set!("cpu{cpu}-%idle", 100.0);
        }
    }
    // Processes.
    set!("proc/s", raw.forks / dt);
    set!("cswch/s", raw.cswch / dt);
    // Interrupts: total plus a fixed affinity split over 16 lines
    // (timer on 0, disk on 14, NIC on 11).
    set!("intr/s", raw.intr / dt);
    for irq_line in 0..16 {
        let share = match irq_line {
            0 => 0.35,  // timer
            11 => 0.30, // eth0
            14 => 0.20, // disk
            _ => 0.15 / 13.0,
        };
        set!("i{irq_line:03}/s", raw.intr * share / dt);
    }
    // Swap: the testbed never swaps (paper runs fit in RAM).
    set!("pswpin/s", 0.0);
    set!("pswpout/s", 0.0);
    // Paging.
    set!("pgpgin/s", raw.disk_read_bytes / 1024.0 / dt);
    set!("pgpgout/s", raw.disk_write_bytes / 1024.0 / dt);
    set!("fault/s", raw.page_faults / dt);
    set!("majflt/s", raw.page_faults * 0.01 / dt);
    set!("pgfree/s", raw.page_faults * 1.4 / dt);
    set!("pgscank/s", 0.0);
    set!("pgscand/s", 0.0);
    set!("pgsteal/s", 0.0);
    set!("%vmeff", 0.0);
    // I/O totals (sectors are 512 B).
    set!("tps", (raw.disk_reads + raw.disk_writes) / dt);
    set!("rtps", raw.disk_reads / dt);
    set!("wtps", raw.disk_writes / dt);
    set!("bread/s", raw.disk_read_bytes / 512.0 / dt);
    set!("bwrtn/s", raw.disk_write_bytes / 512.0 / dt);
    // Memory.
    let free = (raw.mem_total_kb - raw.mem_used_kb).max(0.0);
    set!("kbmemfree", free);
    set!("kbmemused", raw.mem_used_kb);
    set!(
        "%memused",
        100.0 * raw.mem_used_kb / raw.mem_total_kb.max(1.0)
    );
    set!("kbbuffers", raw.mem_cached_kb * 0.08);
    set!("kbcached", raw.mem_cached_kb);
    set!("kbcommit", raw.mem_used_kb * 1.3);
    set!(
        "%commit",
        100.0 * raw.mem_used_kb * 1.3 / raw.mem_total_kb.max(1.0)
    );
    set!("kbactive", raw.mem_used_kb * 0.6);
    set!("kbinact", raw.mem_used_kb * 0.25);
    set!("kbdirty", raw.mem_dirty_kb);
    // Swap space: configured but unused.
    let swap_total = 2.0 * 1024.0 * 1024.0;
    set!("kbswpfree", swap_total);
    set!("kbswpused", 0.0);
    set!("%swpused", 0.0);
    set!("kbswpcad", 0.0);
    set!("%swpcad", 0.0);
    // Huge pages: disabled on the 2.6.18 guests.
    set!("kbhugfree", 0.0);
    set!("kbhugused", 0.0);
    set!("%hugused", 0.0);
    // Load.
    set!("runq-sz", raw.runq);
    set!("plist-sz", raw.nproc);
    set!("ldavg-1", raw.runq * 0.9 + raw.blocked);
    set!("ldavg-5", raw.runq * 0.8 + raw.blocked);
    set!("ldavg-15", raw.runq * 0.7 + raw.blocked);
    set!("blocked", raw.blocked);
    // Disk devices: all activity on dev8-0; dev8-16 idle.
    let svctm_ms = if raw.disk_reads + raw.disk_writes > 0.0 {
        1000.0 * raw.disk_busy_s / (raw.disk_reads + raw.disk_writes)
    } else {
        0.0
    };
    for (dev, active) in [("dev8-0", true), ("dev8-16", false)] {
        let k = if active { 1.0 } else { 0.0 };
        set!("{dev}-tps", k * (raw.disk_reads + raw.disk_writes) / dt);
        set!("{dev}-rd_sec/s", k * raw.disk_read_bytes / 512.0 / dt);
        set!("{dev}-wr_sec/s", k * raw.disk_write_bytes / 512.0 / dt);
        let rq = if raw.disk_reads + raw.disk_writes > 0.0 {
            (raw.disk_read_bytes + raw.disk_write_bytes)
                / 512.0
                / (raw.disk_reads + raw.disk_writes)
        } else {
            0.0
        };
        set!("{dev}-avgrq-sz", k * rq);
        set!("{dev}-avgqu-sz", k * raw.blocked.min(8.0));
        set!("{dev}-await", k * svctm_ms * (1.0 + raw.blocked.min(8.0)));
        set!("{dev}-svctm", k * svctm_ms);
        set!("{dev}-%util", k * (100.0 * raw.disk_busy_s / dt).min(100.0));
    }
    // Network: external traffic on eth0; loopback idle.
    for (ifc, active) in [("eth0", true), ("lo", false)] {
        let k = if active { 1.0 } else { 0.0 };
        set!("{ifc}-rxpck/s", k * raw.net_rx_pkts / dt);
        set!("{ifc}-txpck/s", k * raw.net_tx_pkts / dt);
        set!("{ifc}-rxkB/s", k * raw.net_rx_bytes / 1024.0 / dt);
        set!("{ifc}-txkB/s", k * raw.net_tx_bytes / 1024.0 / dt);
        set!("{ifc}-rxcmp/s", 0.0);
        set!("{ifc}-txcmp/s", 0.0);
        set!("{ifc}-rxmcst/s", 0.0);
        for err in [
            "rxerr/s", "txerr/s", "coll/s", "rxdrop/s", "txdrop/s", "txcarr/s", "rxfram/s",
            "rxfifo/s", "txfifo/s",
        ] {
            set!("{ifc}-{err}", 0.0);
        }
    }
    // Sockets.
    set!("totsck", raw.tcp_sockets + 40.0);
    set!("tcpsck", raw.tcp_sockets);
    set!("udpsck", 4.0);
    set!("rawsck", 0.0);
    set!("ip-frag", 0.0);
    set!("tcp-tw", raw.tcp_active * 2.0);
    // IP stack: derived from packet flow.
    set!("irec/s", raw.net_rx_pkts / dt);
    set!("fwddgm/s", 0.0);
    set!("idel/s", raw.net_rx_pkts / dt);
    set!("orq/s", raw.net_tx_pkts / dt);
    set!("asmrq/s", 0.0);
    set!("asmok/s", 0.0);
    set!("fragok/s", 0.0);
    set!("fragcrt/s", 0.0);
    set!("imsg/s", 0.0);
    set!("omsg/s", 0.0);
    set!("iech/s", 0.0);
    set!("oech/s", 0.0);
    set!("active/s", raw.tcp_active / dt);
    set!("passive/s", raw.tcp_active / dt);
    set!("iseg/s", raw.net_rx_pkts / dt);
    set!("oseg/s", raw.net_tx_pkts / dt);
    set!("idgm/s", 0.0);
    set!("odgm/s", 0.0);
    set!("noport/s", 0.0);
    set!("idgmerr/s", 0.0);
    // Power: fixed frequency (no scaling on the testbed), warm package.
    for cpu in 0..8 {
        set!(
            "cpu{cpu}-MHz",
            if cpu < cores { raw.core_hz / 1e6 } else { 0.0 }
        );
    }
    set!("degC", 42.0 + 18.0 * busy);
    set!("fan-rpm", 5400.0);
    set!("inV", 12.0);
    // Kernel tables.
    set!("dentunusd", 20_000.0);
    set!("file-nr", 1_200.0 + raw.tcp_sockets * 2.0);
    set!("inode-nr", 35_000.0);
    set!("pty-nr", 2.0);
}

/// Walk the perf emission schedule for one host sample (see
/// [`emit_sysstat`] for the sink contract).
fn emit_perf(raw: &RawHostSample, mut sink: impl FnMut(std::fmt::Arguments<'_>, f64)) {
    macro_rules! set {
        ($name:literal, $v:expr) => {
            sink(format_args!($name), $v)
        };
    }
    let cycles = raw.cpu_cycles.max(0.0);
    let instructions = cycles * IPC;
    let ki = instructions / 1_000.0;
    let cache_refs = ki * CACHE_REF_PER_KI;
    let cache_misses = cache_refs * LLC_MISS_RATIO;
    let branches = ki * BRANCH_PER_KI;
    let branch_misses = branches * BRANCH_MISS_RATIO;
    let dtlb_misses = ki * DTLB_MISS_PER_KI;

    set!("cycles", cycles);
    set!("instructions", instructions);
    set!("cache-references", cache_refs);
    set!("cache-misses", cache_misses);
    set!("branches", branches);
    set!("branch-misses", branch_misses);
    set!("bus-cycles", cycles * 0.02);
    set!("ref-cycles", cycles);
    set!("stalled-cycles-frontend", cycles * 0.12);
    set!("stalled-cycles-backend", cycles * 0.22);
    // Cache hierarchy: loads ≈ 30% of instructions, L1 miss 4%, etc.
    let loads = instructions * 0.30;
    let stores = instructions * 0.12;
    set!("L1-dcache-loads", loads);
    set!("L1-dcache-load-misses", loads * 0.04);
    set!("L1-dcache-stores", stores);
    set!("L1-dcache-store-misses", stores * 0.03);
    set!("L1-dcache-prefetches", loads * 0.05);
    set!("L1-dcache-prefetch-misses", loads * 0.01);
    set!("L1-icache-loads", instructions * 0.25);
    set!("L1-icache-load-misses", instructions * 0.25 * 0.015);
    set!("LLC-loads", cache_refs * 0.7);
    set!("LLC-load-misses", cache_misses * 0.7);
    set!("LLC-stores", cache_refs * 0.3);
    set!("LLC-store-misses", cache_misses * 0.3);
    set!("LLC-prefetches", cache_refs * 0.1);
    set!("LLC-prefetch-misses", cache_misses * 0.1);
    set!("dTLB-loads", loads);
    set!("dTLB-load-misses", dtlb_misses * 0.8);
    set!("dTLB-stores", stores);
    set!("dTLB-store-misses", dtlb_misses * 0.2);
    set!("iTLB-loads", instructions * 0.25);
    set!("iTLB-load-misses", ki * 0.3);
    // Software events mirror the kernel counters.
    set!("cpu-clock", cycles / raw.core_hz.max(1.0) * 1e9);
    set!("task-clock", cycles / raw.core_hz.max(1.0) * 1e9);
    set!("page-faults", raw.page_faults);
    set!("context-switches", raw.cswch);
    set!("cpu-migrations", raw.cswch * 0.02);
    set!("minor-faults", raw.page_faults * 0.99);
    set!("major-faults", raw.page_faults * 0.01);
    set!("alignment-faults", 0.0);
    set!("emulation-faults", 0.0);
    // Per-core: same deterministic skew as the sysstat view.
    let cores = raw.cores.max(1);
    let mut weights = [0.0_f64; 8];
    for (k, w) in weights.iter_mut().enumerate() {
        let k = k as u32;
        if k < cores {
            *w = 1.0 + 0.25 * f64::from(cores - k) / f64::from(cores);
        }
    }
    let wsum: f64 = weights.iter().sum();
    for core in 0..8 {
        let share = weights[core as usize] / wsum;
        set!("cpu{core}-cycles", cycles * share);
        set!("cpu{core}-instructions", instructions * share);
        set!("cpu{core}-LLC-load-misses", cache_misses * 0.7 * share);
        set!("cpu{core}-branch-misses", branch_misses * share);
    }
    // Offcore/uncore raw events: consistent derived ratios.
    let uops = instructions * 1.25;
    let derived: [(&str, f64); 83] = [
        ("UOPS_ISSUED.ANY", uops),
        ("UOPS_ISSUED.FUSED", uops * 0.08),
        ("UOPS_ISSUED.STALL_CYCLES", cycles * 0.18),
        ("UOPS_EXECUTED.PORT0", uops * 0.22),
        ("UOPS_EXECUTED.PORT1", uops * 0.20),
        ("UOPS_EXECUTED.PORT2_CORE", uops * 0.18),
        ("UOPS_EXECUTED.PORT3_CORE", uops * 0.12),
        ("UOPS_EXECUTED.PORT4_CORE", uops * 0.12),
        ("UOPS_EXECUTED.PORT5", uops * 0.16),
        ("UOPS_RETIRED.ANY", uops * 0.96),
        ("UOPS_RETIRED.MACRO_FUSED", uops * 0.07),
        ("UOPS_RETIRED.RETIRE_SLOTS", uops),
        ("RESOURCE_STALLS.ANY", cycles * 0.22),
        ("RESOURCE_STALLS.LOAD", cycles * 0.08),
        ("RESOURCE_STALLS.RS_FULL", cycles * 0.05),
        ("RESOURCE_STALLS.STORE", cycles * 0.04),
        ("RESOURCE_STALLS.ROB_FULL", cycles * 0.05),
        ("MEM_LOAD_RETIRED.L1D_HIT", loads * 0.96),
        ("MEM_LOAD_RETIRED.L2_HIT", loads * 0.03),
        ("MEM_LOAD_RETIRED.L3_MISS", cache_misses * 0.7),
        ("MEM_LOAD_RETIRED.HIT_LFB", loads * 0.005),
        ("MEM_LOAD_RETIRED.DTLB_MISS", dtlb_misses * 0.8),
        ("MEM_UNCORE_RETIRED.LOCAL_DRAM", cache_misses * 0.65),
        ("MEM_UNCORE_RETIRED.REMOTE_DRAM", cache_misses * 0.05),
        ("MEM_UNCORE_RETIRED.OTHER_CORE_L2_HIT", cache_misses * 0.08),
        ("FP_COMP_OPS_EXE.X87", instructions * 0.001),
        ("FP_COMP_OPS_EXE.SSE_FP", instructions * 0.004),
        ("BR_INST_RETIRED.ALL_BRANCHES", branches),
        ("BR_INST_RETIRED.CONDITIONAL", branches * 0.78),
        ("BR_INST_RETIRED.NEAR_CALL", branches * 0.09),
        ("BR_MISP_RETIRED.ALL_BRANCHES", branch_misses),
        ("BR_MISP_RETIRED.CONDITIONAL", branch_misses * 0.8),
        ("DTLB_MISSES.ANY", dtlb_misses),
        ("DTLB_MISSES.WALK_COMPLETED", dtlb_misses * 0.6),
        ("DTLB_MISSES.STLB_HIT", dtlb_misses * 0.4),
        ("ITLB_MISSES.ANY", ki * 0.3),
        ("ITLB_MISSES.WALK_COMPLETED", ki * 0.18),
        ("L2_RQSTS.REFERENCES", loads * 0.04 + stores * 0.03),
        ("L2_RQSTS.MISS", cache_refs),
        ("L2_RQSTS.IFETCH_HIT", instructions * 0.25 * 0.012),
        ("L2_RQSTS.IFETCH_MISS", instructions * 0.25 * 0.003),
        ("L2_RQSTS.LD_HIT", loads * 0.03),
        ("L2_RQSTS.LD_MISS", loads * 0.01),
        ("L2_LINES_IN.ANY", cache_refs * 0.9),
        ("L2_LINES_IN.DEMAND", cache_refs * 0.7),
        ("L2_LINES_IN.PREFETCH", cache_refs * 0.2),
        ("L2_LINES_OUT.ANY", cache_refs * 0.85),
        ("L2_LINES_OUT.DEMAND_CLEAN", cache_refs * 0.55),
        ("L2_LINES_OUT.DEMAND_DIRTY", cache_refs * 0.30),
        ("OFFCORE_REQUESTS.ANY", cache_misses * 1.3),
        ("OFFCORE_REQUESTS.DEMAND_READ_DATA", cache_misses * 0.8),
        ("OFFCORE_REQUESTS.DEMAND_RFO", cache_misses * 0.3),
        ("OFFCORE_REQUESTS.UNCACHED_MEM", cache_misses * 0.02),
        ("SNOOP_RESPONSE.HIT", cache_misses * 0.10),
        ("SNOOP_RESPONSE.HITE", cache_misses * 0.06),
        ("SNOOP_RESPONSE.HITM", cache_misses * 0.04),
        ("UNC_QMC_NORMAL_READS.ANY", cache_misses * 0.9),
        ("UNC_QMC_WRITES.FULL.ANY", cache_misses * 0.4),
        ("UNC_QHL_REQUESTS.LOCAL_READS", cache_misses * 0.85),
        ("UNC_QHL_REQUESTS.REMOTE_READS", cache_misses * 0.05),
        ("UNC_QHL_REQUESTS.LOCAL_WRITES", cache_misses * 0.35),
        ("UNC_QHL_REQUESTS.REMOTE_WRITES", cache_misses * 0.03),
        ("UNC_LLC_MISS.READ", cache_misses * 0.7),
        ("UNC_LLC_MISS.WRITE", cache_misses * 0.3),
        ("UNC_LLC_MISS.ANY", cache_misses),
        ("UNC_LLC_HITS.READ", (cache_refs - cache_misses) * 0.7),
        ("UNC_LLC_HITS.WRITE", (cache_refs - cache_misses) * 0.3),
        ("UNC_LLC_HITS.ANY", cache_refs - cache_misses),
        ("UNC_CLK_UNHALTED", cycles),
        ("MACHINE_CLEARS.CYCLES", cycles * 0.002),
        ("MACHINE_CLEARS.MEM_ORDER", ki * 0.02),
        ("MACHINE_CLEARS.SMC", 0.0),
        ("ILD_STALL.ANY", cycles * 0.015),
        ("ILD_STALL.LCP", cycles * 0.002),
        ("ARITH.CYCLES_DIV_BUSY", cycles * 0.01),
        ("ARITH.DIV", ki * 0.4),
        ("ARITH.MUL", ki * 2.0),
        ("INST_QUEUE_WRITES", uops * 0.8),
        ("INST_DECODED.DEC0", instructions * 0.4),
        ("RAT_STALLS.ANY", cycles * 0.03),
        ("LOAD_HIT_PRE", loads * 0.001),
        ("SQ_FULL_STALL_CYCLES", cycles * 0.008),
        ("XSNP_RESPONSE.ANY", cache_misses * 0.2),
    ];
    for (name, v) in derived {
        set!("{name}", v);
    }
}

static HV_SYSSTAT_LAYOUT: OnceLock<Vec<MetricId>> = OnceLock::new();
static VM_SYSSTAT_LAYOUT: OnceLock<Vec<MetricId>> = OnceLock::new();
static PERF_LAYOUT: OnceLock<Vec<MetricId>> = OnceLock::new();

/// Resolve the emission schedule of `source` to catalog ids, once: run
/// the emitter on a probe sample, render each slot's name, and look it
/// up. Sound because the emission order is value-independent.
fn resolve_layout(source: Source) -> Vec<MetricId> {
    let c = catalog();
    let probe = RawHostSample {
        dt_s: 1.0,
        cores: 1,
        core_hz: 1.0,
        cpu_capacity_cycles: 1.0,
        mem_total_kb: 1.0,
        ..RawHostSample::default()
    };
    let mut ids = Vec::new();
    match source {
        Source::PerfCounter => emit_perf(&probe, |name, _| {
            let name = name.to_string();
            let id = c
                .find(&name, source)
                .unwrap_or_else(|| panic!("perf metric {name} missing"));
            ids.push(id);
        }),
        Source::HypervisorSysstat | Source::VmSysstat => emit_sysstat(&probe, |name, _| {
            let name = name.to_string();
            let id = c
                .find(&name, source)
                .unwrap_or_else(|| panic!("metric {name} missing from catalog"));
            ids.push(id);
        }),
    }
    ids
}

fn sysstat_layout(source: Source) -> &'static [MetricId] {
    let cell = match source {
        Source::HypervisorSysstat => &HV_SYSSTAT_LAYOUT,
        Source::VmSysstat | Source::PerfCounter => &VM_SYSSTAT_LAYOUT,
    };
    cell.get_or_init(|| resolve_layout(source))
}

/// Synthesize the 182 sysstat metrics of `source` for one host sample,
/// appending `(MetricId, value)` pairs to `out` without allocating
/// (after the process-wide layout pass).
pub fn synthesize_sysstat_into(raw: &RawHostSample, source: Source, out: &mut SampleRow) {
    assert!(matches!(
        source,
        Source::HypervisorSysstat | Source::VmSysstat
    ));
    let layout = sysstat_layout(source);
    let mut slot = 0;
    emit_sysstat(raw, |_, v| {
        out.push(layout[slot], v);
        slot += 1;
    });
    debug_assert_eq!(slot, crate::catalog::SYSSTAT_METRICS);
}

/// Synthesize the 154 perf-counter metrics for one host sample,
/// appending `(MetricId, value)` pairs to `out` without allocating
/// (after the process-wide layout pass).
pub fn synthesize_perf_into(raw: &RawHostSample, out: &mut SampleRow) {
    let layout = PERF_LAYOUT.get_or_init(|| resolve_layout(Source::PerfCounter));
    let mut slot = 0;
    emit_perf(raw, |_, v| {
        out.push(layout[slot], v);
        slot += 1;
    });
    debug_assert_eq!(slot, crate::catalog::PERF_METRICS);
}

/// Synthesize the 182 sysstat metrics of `source` for one host sample.
///
/// Returns `(MetricId, value)` pairs covering every metric of that
/// source. Convenience wrapper over [`synthesize_sysstat_into`]; hot
/// paths should reuse a [`SampleRow`] instead.
pub fn synthesize_sysstat(raw: &RawHostSample, source: Source) -> Vec<(MetricId, f64)> {
    let mut row = SampleRow::with_capacity(crate::catalog::SYSSTAT_METRICS);
    synthesize_sysstat_into(raw, source, &mut row);
    row.entries().to_vec()
}

/// Synthesize the 154 perf-counter metrics from host activity.
///
/// Convenience wrapper over [`synthesize_perf_into`]; hot paths should
/// reuse a [`SampleRow`] instead.
pub fn synthesize_perf(raw: &RawHostSample) -> Vec<(MetricId, f64)> {
    let mut row = SampleRow::with_capacity(crate::catalog::PERF_METRICS);
    synthesize_perf_into(raw, &mut row);
    row.entries().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RawHostSample {
        RawHostSample {
            dt_s: 2.0,
            cpu_cycles: 1.0e9,
            cpu_capacity_cycles: 2.0 * 8.0 * 2.8e9,
            user_frac: 0.7,
            steal_frac: 0.02,
            iowait_frac: 0.01,
            mem_total_kb: 2.0 * 1024.0 * 1024.0,
            mem_used_kb: 500.0 * 1024.0,
            mem_cached_kb: 120.0 * 1024.0,
            mem_dirty_kb: 3.0 * 1024.0,
            disk_read_bytes: 200_000.0,
            disk_write_bytes: 400_000.0,
            disk_reads: 20.0,
            disk_writes: 50.0,
            disk_busy_s: 0.4,
            net_rx_bytes: 1.0e6,
            net_tx_bytes: 5.0e6,
            net_rx_pkts: 900.0,
            net_tx_pkts: 3600.0,
            cswch: 8_000.0,
            intr: 4_000.0,
            forks: 12.0,
            page_faults: 5_000.0,
            runq: 3.0,
            nproc: 180.0,
            blocked: 1.0,
            tcp_active: 250.0,
            tcp_sockets: 400.0,
            cores: 2,
            core_hz: 2.8e9,
        }
    }

    #[test]
    fn sysstat_vector_is_complete() {
        let raw = sample();
        for source in [Source::VmSysstat, Source::HypervisorSysstat] {
            let v = synthesize_sysstat(&raw, source);
            assert_eq!(v.len(), 182);
            // No duplicate metric ids.
            let mut ids: Vec<_> = v.iter().map(|(id, _)| *id).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), 182);
            // All values finite.
            assert!(v.iter().all(|(_, x)| x.is_finite()));
        }
    }

    #[test]
    fn cpu_percentages_sum_to_100() {
        let raw = sample();
        let v = synthesize_sysstat(&raw, Source::VmSysstat);
        let c = catalog();
        let get = |name: &str| {
            let id = c.find(name, Source::VmSysstat).unwrap();
            v.iter().find(|(i, _)| *i == id).unwrap().1
        };
        let total = get("%user") + get("%system") + get("%iowait") + get("%steal") + get("%idle");
        assert!((total - 100.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn figure_metrics_are_exact() {
        let raw = sample();
        let v = synthesize_sysstat(&raw, Source::VmSysstat);
        let c = catalog();
        let get = |name: &str| {
            let id = c.find(name, Source::VmSysstat).unwrap();
            v.iter().find(|(i, _)| *i == id).unwrap().1
        };
        assert!((get("kbmemused") - 500.0 * 1024.0).abs() < 1e-9);
        assert!((get("eth0-rxkB/s") - 1.0e6 / 1024.0 / 2.0).abs() < 1e-9);
        assert!((get("eth0-txkB/s") - 5.0e6 / 1024.0 / 2.0).abs() < 1e-9);
        assert!((get("bread/s") - 200_000.0 / 512.0 / 2.0).abs() < 1e-9);
        assert!((get("cswch/s") - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn perf_vector_is_complete_and_consistent() {
        let raw = sample();
        let v = synthesize_perf(&raw);
        assert_eq!(v.len(), 154);
        let c = catalog();
        let get = |name: &str| {
            let id = c.find(name, Source::PerfCounter).unwrap();
            v.iter().find(|(i, _)| *i == id).unwrap().1
        };
        assert_eq!(get("cycles"), 1.0e9);
        assert!(get("instructions") < get("cycles") * 4.0);
        assert!(get("cache-misses") < get("cache-references"));
        assert!(get("branch-misses") < get("branches"));
        // Per-core cycles sum to total.
        let sum: f64 = (0..8).map(|k| get(&format!("cpu{k}-cycles"))).sum();
        assert!((sum - 1.0e9).abs() / 1.0e9 < 1e-9, "sum {sum}");
        assert!(v.iter().all(|(_, x)| x.is_finite()));
    }

    #[test]
    fn perf_scales_with_cycles() {
        let mut raw = sample();
        let v1 = synthesize_perf(&raw);
        raw.cpu_cycles *= 2.0;
        let v2 = synthesize_perf(&raw);
        let c = catalog();
        let id = c.find("instructions", Source::PerfCounter).unwrap();
        let a = v1.iter().find(|(i, _)| *i == id).unwrap().1;
        let b = v2.iter().find(|(i, _)| *i == id).unwrap().1;
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_host_synthesizes_zeros() {
        let raw = RawHostSample {
            dt_s: 2.0,
            cores: 8,
            core_hz: 2.8e9,
            cpu_capacity_cycles: 2.0 * 8.0 * 2.8e9,
            mem_total_kb: 1.0e6,
            ..RawHostSample::default()
        };
        let v = synthesize_sysstat(&raw, Source::HypervisorSysstat);
        let c = catalog();
        let get = |name: &str| {
            let id = c.find(name, Source::HypervisorSysstat).unwrap();
            v.iter().find(|(i, _)| *i == id).unwrap().1
        };
        assert_eq!(get("%user"), 0.0);
        assert_eq!(get("%idle"), 100.0);
        assert_eq!(get("eth0-rxkB/s"), 0.0);
        let p = synthesize_perf(&raw);
        assert!(p.iter().all(|(_, x)| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn into_variants_match_vec_variants() {
        let raw = sample();
        for source in [Source::VmSysstat, Source::HypervisorSysstat] {
            let vec_form = synthesize_sysstat(&raw, source);
            let mut row = SampleRow::new();
            synthesize_sysstat_into(&raw, source, &mut row);
            assert_eq!(row.entries(), &vec_form[..]);
        }
        let vec_form = synthesize_perf(&raw);
        let mut row = SampleRow::new();
        synthesize_perf_into(&raw, &mut row);
        assert_eq!(row.entries(), &vec_form[..]);
    }

    #[test]
    fn emission_order_is_input_independent() {
        // The positional layout pairing is only sound if every input
        // emits the same names in the same order.
        let collect = |raw: &RawHostSample, source: Source| -> Vec<String> {
            let mut names = Vec::new();
            match source {
                Source::PerfCounter => emit_perf(raw, |n, _| names.push(n.to_string())),
                _ => emit_sysstat(raw, |n, _| names.push(n.to_string())),
            }
            names
        };
        let busy = sample();
        let idle = RawHostSample::default();
        let mut many_cores = sample();
        many_cores.cores = 8;
        for source in [
            Source::VmSysstat,
            Source::HypervisorSysstat,
            Source::PerfCounter,
        ] {
            let a = collect(&busy, source);
            let b = collect(&idle, source);
            let c = collect(&many_cores, source);
            assert_eq!(a, b, "{source:?} order depends on values");
            assert_eq!(a, c, "{source:?} order depends on core count");
        }
    }
}
