//! Metric identity and metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index into the [`crate::catalog::MetricCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId(pub u16);

/// Which collector produces a metric — the paper's three instrumentation
/// planes: sysstat in dom0, sysstat inside each VM, and a modified perf
/// reading hardware counters from the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// sysstat (sar) running in the hypervisor / host OS (dom0).
    HypervisorSysstat,
    /// sysstat (sar) running inside a VM.
    VmSysstat,
    /// Hardware performance counters via the modified perf.
    PerfCounter,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Source::HypervisorSysstat => "sysstat(dom0)",
            Source::VmSysstat => "sysstat(vm)",
            Source::PerfCounter => "perf",
        };
        f.write_str(s)
    }
}

/// Metric family, mirroring sar report sections / perf event groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Family {
    Cpu,
    PerCpu,
    Process,
    Interrupts,
    Swap,
    Paging,
    Io,
    Memory,
    SwapSpace,
    HugePages,
    Load,
    Disk,
    Network,
    NetworkErrors,
    Sockets,
    IpStack,
    Power,
    HwGeneric,
    HwCache,
    HwTlb,
    Software,
    PerCore,
    Uncore,
}

/// Unit of a metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Unit {
    Percent,
    PerSecond,
    Kilobytes,
    KilobytesPerSecond,
    Megahertz,
    Count,
    CountPerSecond,
    Cycles,
    Events,
    Celsius,
}

/// Static description of one profiled metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDef {
    /// sar / perf style name, e.g. `%user`, `rxkB/s`, `LLC-load-misses`.
    pub name: String,
    /// Producing collector.
    pub source: Source,
    /// Report section / event group.
    pub family: Family,
    /// Value unit.
    pub unit: Unit,
    /// Human-readable description (Table 1 column).
    pub description: String,
}
