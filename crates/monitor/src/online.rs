//! Per-tick resource demand extraction for online characterization.
//!
//! The batch pipeline derives the four figure resources (CPU cycles,
//! RAM MB, disk KB, network KB) from completed
//! [`crate::store::SeriesStore`] series after the run. Live profiling
//! needs the same four numbers *during* the 2 s sampling tick, straight
//! from the freshly synthesized [`SampleRow`] and before it is written
//! to the store or a trace. [`ResourceTap`] resolves the contributing
//! [`MetricId`]s once per host at arm time and then extracts all four
//! demands in a single allocation-free pass per row, applying exactly
//! the unit conversions of the batch `resource_series` accessors so the
//! online and post-hoc views of a run agree bit-for-bit.

use crate::catalog::catalog;
use crate::metric::{MetricId, Source};
use crate::store::SampleRow;

/// Display labels of the four extracted resources, in
/// [`ResourceTap::extract`] order.
pub const RESOURCE_NAMES: [&str; 4] = ["cpu", "ram", "disk", "net"];

/// Resolved metric handles for one host's per-tick resource demands.
#[derive(Debug, Clone, Copy)]
pub struct ResourceTap {
    cpu_cycles: MetricId,
    ram_kb: MetricId,
    disk_read: MetricId,
    disk_write: MetricId,
    net_rx: MetricId,
    net_tx: MetricId,
    dt_s: f64,
}

impl ResourceTap {
    /// Resolve the tap for `host` (VM hosts report through the VM
    /// sysstat plane, everything else through the hypervisor plane)
    /// with sample interval `dt_s` seconds. Returns `None` only if the
    /// pinned catalog were to lose one of the six contributing metrics.
    pub fn new(host: &str, dt_s: f64) -> Option<Self> {
        let source = if host.ends_with("-vm") {
            Source::VmSysstat
        } else {
            Source::HypervisorSysstat
        };
        let c = catalog();
        Some(ResourceTap {
            cpu_cycles: c.find("cycles", Source::PerfCounter)?,
            ram_kb: c.find("kbmemused", source)?,
            disk_read: c.find("bread/s", source)?,
            disk_write: c.find("bwrtn/s", source)?,
            net_rx: c.find("eth0-rxkB/s", source)?,
            net_tx: c.find("eth0-txkB/s", source)?,
            dt_s,
        })
    }

    /// Extract `[cpu cycles, ram MB, disk KB, net KB]` from one
    /// synthesized sample row, in [`RESOURCE_NAMES`] order and the
    /// exact units (and floating-point expression order) of the batch
    /// `resource_series` accessors. Metrics absent from the row — e.g.
    /// perf counters on a host without the perf plane — extract as 0.
    pub fn extract(&self, row: &SampleRow) -> [f64; 4] {
        let mut cycles = 0.0;
        let mut ram_kb = 0.0;
        let mut read = 0.0;
        let mut write = 0.0;
        let mut rx = 0.0;
        let mut tx = 0.0;
        for &(id, v) in row.entries() {
            if id == self.cpu_cycles {
                cycles = v;
            } else if id == self.ram_kb {
                ram_kb = v;
            } else if id == self.disk_read {
                read = v;
            } else if id == self.disk_write {
                write = v;
            } else if id == self.net_rx {
                rx = v;
            } else if id == self.net_tx {
                tx = v;
            }
        }
        [
            cycles,
            ram_kb / 1024.0,
            (read + write) * 512.0 * self.dt_s / 1024.0,
            (rx + tx) * self.dt_s,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_for_both_planes() {
        let vm = ResourceTap::new("web-vm", 2.0).expect("vm tap");
        let hv = ResourceTap::new("dom0", 2.0).expect("hypervisor tap");
        // Perf plane is shared; the sysstat plane differs per host kind.
        assert_eq!(vm.cpu_cycles, hv.cpu_cycles);
        assert_ne!(vm.ram_kb, hv.ram_kb);
    }

    #[test]
    fn extracts_with_batch_unit_conversions() {
        let tap = ResourceTap::new("web-vm", 2.0).expect("tap");
        let mut row = SampleRow::new();
        row.push(tap.cpu_cycles, 1.5e9);
        row.push(tap.ram_kb, 2048.0);
        row.push(tap.disk_read, 100.0);
        row.push(tap.disk_write, 50.0);
        row.push(tap.net_rx, 30.0);
        row.push(tap.net_tx, 10.0);
        // An unrelated metric must not perturb the extraction.
        let other = catalog()
            .find("ldavg-1", Source::VmSysstat)
            .expect("ldavg-1");
        row.push(other, 9.9);
        let [cpu, ram, disk, net] = tap.extract(&row);
        assert_eq!(cpu, 1.5e9);
        assert_eq!(ram, 2.0);
        assert_eq!(disk, (100.0 + 50.0) * 512.0 * 2.0 / 1024.0);
        assert_eq!(net, (30.0 + 10.0) * 2.0);
    }

    #[test]
    fn missing_metrics_extract_as_zero() {
        let tap = ResourceTap::new("mysql-vm", 2.0).expect("tap");
        let row = SampleRow::new();
        assert_eq!(tap.extract(&row), [0.0; 4]);
    }
}
