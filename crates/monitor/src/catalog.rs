//! The 518-metric catalog.
//!
//! The paper profiles "in total, 518 metrics … 182 for the hypervisor and
//! 182 for VMs by sysstat and 154 for performance counters by perf".
//! This module reconstructs that instrumentation surface: the full sar
//! field set (CPU, per-CPU, processes, interrupts, swapping, paging,
//! I/O, memory, swap space, huge pages, load, per-disk, per-interface
//! network, sockets, IP stack, power, kernel tables) and a Nehalem-class
//! perf event list (generic hardware events, cache/TLB hierarchies,
//! software events, per-core counters, offcore/uncore events).

use crate::metric::{Family, MetricDef, MetricId, Source, Unit};
use std::sync::OnceLock;

/// Number of sysstat metrics per host, as in the paper.
pub const SYSSTAT_METRICS: usize = 182;
/// Number of perf-counter metrics, as in the paper.
pub const PERF_METRICS: usize = 154;
/// Total profiled metrics, as in the paper.
pub const TOTAL_METRICS: usize = 2 * SYSSTAT_METRICS + PERF_METRICS;

/// The full metric catalog.
#[derive(Debug)]
pub struct MetricCatalog {
    defs: Vec<MetricDef>,
}

fn sysstat_defs() -> Vec<(String, Family, Unit, String)> {
    use Family::*;
    use Unit::*;
    let mut m: Vec<(String, Family, Unit, String)> = Vec::with_capacity(SYSSTAT_METRICS);
    let mut push = |name: &str, family: Family, unit: Unit, desc: &str| {
        m.push((name.to_string(), family, unit, desc.to_string()));
    };

    // CPU utilization (all CPUs) — sar -u ALL.
    for (n, d) in [
        ("%user", "time in unprivileged user code"),
        ("%nice", "time in niced user code"),
        ("%system", "time in kernel code"),
        ("%iowait", "idle with outstanding disk I/O"),
        (
            "%steal",
            "involuntary wait while hypervisor serviced another VCPU",
        ),
        ("%idle", "idle without outstanding I/O"),
        ("%irq", "time servicing hardware interrupts"),
        ("%soft", "time servicing softirqs"),
        ("%guest", "time running a virtual processor"),
        ("%gnice", "time running a niced guest"),
    ] {
        push(n, Cpu, Percent, d);
    }
    // Per-CPU utilization — sar -P 0..7.
    for cpu in 0..8 {
        for (n, d) in [
            ("%user", "user time"),
            ("%system", "system time"),
            ("%idle", "idle time"),
        ] {
            push(
                &format!("cpu{cpu}-{n}"),
                PerCpu,
                Percent,
                &format!("CPU {cpu} {d}"),
            );
        }
    }
    // Process creation and context switching — sar -w.
    push("proc/s", Process, PerSecond, "tasks created per second");
    push("cswch/s", Process, PerSecond, "context switches per second");
    // Interrupts — sar -I.
    push(
        "intr/s",
        Interrupts,
        PerSecond,
        "total interrupts per second",
    );
    for irq in 0..16 {
        push(
            &format!("i{irq:03}/s"),
            Interrupts,
            PerSecond,
            &format!("interrupts on IRQ {irq} per second"),
        );
    }
    // Swapping — sar -W.
    push("pswpin/s", Swap, PerSecond, "pages swapped in per second");
    push("pswpout/s", Swap, PerSecond, "pages swapped out per second");
    // Paging — sar -B.
    for (n, d) in [
        ("pgpgin/s", "KB paged in from disk per second"),
        ("pgpgout/s", "KB paged out to disk per second"),
        ("fault/s", "page faults per second"),
        ("majflt/s", "major faults per second"),
        ("pgfree/s", "pages freed per second"),
        ("pgscank/s", "pages scanned by kswapd per second"),
        ("pgscand/s", "pages scanned directly per second"),
        ("pgsteal/s", "pages reclaimed per second"),
        ("%vmeff", "page reclaim efficiency"),
    ] {
        push(
            n,
            Paging,
            if n == "%vmeff" { Percent } else { PerSecond },
            d,
        );
    }
    // I/O and transfer rates — sar -b.
    for (n, d) in [
        ("tps", "transfers per second to physical devices"),
        ("rtps", "read requests per second"),
        ("wtps", "write requests per second"),
        ("bread/s", "blocks read per second"),
        ("bwrtn/s", "blocks written per second"),
    ] {
        push(n, Io, PerSecond, d);
    }
    // Memory — sar -r.
    for (n, u, d) in [
        ("kbmemfree", Kilobytes, "free memory"),
        ("kbmemused", Kilobytes, "used memory"),
        ("%memused", Percent, "memory utilization"),
        ("kbbuffers", Kilobytes, "kernel buffers"),
        ("kbcached", Kilobytes, "page cache"),
        ("kbcommit", Kilobytes, "committed memory"),
        ("%commit", Percent, "committed vs total"),
        ("kbactive", Kilobytes, "active memory"),
        ("kbinact", Kilobytes, "inactive memory"),
        ("kbdirty", Kilobytes, "dirty pages awaiting writeback"),
    ] {
        push(n, Memory, u, d);
    }
    // Swap space — sar -S.
    for (n, u, d) in [
        ("kbswpfree", Kilobytes, "free swap"),
        ("kbswpused", Kilobytes, "used swap"),
        ("%swpused", Percent, "swap utilization"),
        ("kbswpcad", Kilobytes, "cached swap"),
        ("%swpcad", Percent, "cached vs used swap"),
    ] {
        push(n, SwapSpace, u, d);
    }
    // Huge pages — sar -H.
    push("kbhugfree", HugePages, Kilobytes, "free huge pages");
    push("kbhugused", HugePages, Kilobytes, "used huge pages");
    push("%hugused", HugePages, Percent, "huge page utilization");
    // Queue/load — sar -q.
    for (n, u, d) in [
        ("runq-sz", Count, "run queue length"),
        ("plist-sz", Count, "task list size"),
        ("ldavg-1", Count, "1-minute load average"),
        ("ldavg-5", Count, "5-minute load average"),
        ("ldavg-15", Count, "15-minute load average"),
        ("blocked", Count, "tasks blocked on I/O"),
    ] {
        push(n, Load, u, d);
    }
    // Per-device disk — sar -d (two devices).
    for dev in ["dev8-0", "dev8-16"] {
        for (n, u, d) in [
            ("tps", PerSecond, "transfers per second"),
            ("rd_sec/s", PerSecond, "sectors read per second"),
            ("wr_sec/s", PerSecond, "sectors written per second"),
            ("avgrq-sz", Count, "average request size (sectors)"),
            ("avgqu-sz", Count, "average queue length"),
            ("await", Count, "average I/O wait (ms)"),
            ("svctm", Count, "average service time (ms)"),
            ("%util", Percent, "device utilization"),
        ] {
            push(&format!("{dev}-{n}"), Disk, u, &format!("{dev}: {d}"));
        }
    }
    // Per-interface network — sar -n DEV (eth0, lo).
    for ifc in ["eth0", "lo"] {
        for (n, u, d) in [
            ("rxpck/s", PerSecond, "packets received per second"),
            ("txpck/s", PerSecond, "packets transmitted per second"),
            ("rxkB/s", KilobytesPerSecond, "KB received per second"),
            ("txkB/s", KilobytesPerSecond, "KB transmitted per second"),
            ("rxcmp/s", PerSecond, "compressed packets received"),
            ("txcmp/s", PerSecond, "compressed packets transmitted"),
            ("rxmcst/s", PerSecond, "multicast packets received"),
        ] {
            push(&format!("{ifc}-{n}"), Network, u, &format!("{ifc}: {d}"));
        }
    }
    // Network errors — sar -n EDEV.
    for ifc in ["eth0", "lo"] {
        for n in [
            "rxerr/s", "txerr/s", "coll/s", "rxdrop/s", "txdrop/s", "txcarr/s", "rxfram/s",
            "rxfifo/s", "txfifo/s",
        ] {
            push(
                &format!("{ifc}-{n}"),
                NetworkErrors,
                PerSecond,
                &format!("{ifc}: {n} error rate"),
            );
        }
    }
    // Sockets — sar -n SOCK.
    for (n, d) in [
        ("totsck", "sockets in use"),
        ("tcpsck", "TCP sockets"),
        ("udpsck", "UDP sockets"),
        ("rawsck", "raw sockets"),
        ("ip-frag", "IP fragments queued"),
        ("tcp-tw", "TCP TIME_WAIT sockets"),
    ] {
        push(n, Sockets, Count, d);
    }
    // IP / ICMP / TCP / UDP — sar -n IP,ICMP,TCP,UDP.
    for (n, d) in [
        ("irec/s", "IP datagrams received"),
        ("fwddgm/s", "IP datagrams forwarded"),
        ("idel/s", "IP datagrams delivered"),
        ("orq/s", "IP datagrams sent"),
        ("asmrq/s", "fragments needing reassembly"),
        ("asmok/s", "datagrams reassembled"),
        ("fragok/s", "datagrams fragmented"),
        ("fragcrt/s", "fragments created"),
        ("imsg/s", "ICMP messages received"),
        ("omsg/s", "ICMP messages sent"),
        ("iech/s", "ICMP echoes received"),
        ("oech/s", "ICMP echoes sent"),
        ("active/s", "TCP active opens"),
        ("passive/s", "TCP passive opens"),
        ("iseg/s", "TCP segments received"),
        ("oseg/s", "TCP segments sent"),
        ("idgm/s", "UDP datagrams received"),
        ("odgm/s", "UDP datagrams sent"),
        ("noport/s", "UDP no-port errors"),
        ("idgmerr/s", "UDP datagram errors"),
    ] {
        push(n, IpStack, PerSecond, d);
    }
    // Power management — sar -m (per-core frequency + sensors).
    for cpu in 0..8 {
        push(
            &format!("cpu{cpu}-MHz"),
            Power,
            Megahertz,
            &format!("CPU {cpu} clock frequency"),
        );
    }
    push("degC", Power, Celsius, "package temperature");
    push("fan-rpm", Power, Count, "fan speed");
    push("inV", Power, Count, "input voltage");
    // Kernel tables — sar -v.
    for (n, d) in [
        ("dentunusd", "unused directory cache entries"),
        ("file-nr", "file handles in use"),
        ("inode-nr", "inode handles in use"),
        ("pty-nr", "pseudo-terminals in use"),
    ] {
        push(n, Load, Count, d);
    }

    assert_eq!(m.len(), SYSSTAT_METRICS, "sysstat catalog drifted");
    m
}

fn perf_defs() -> Vec<(String, Family, Unit, String)> {
    use Family::*;
    use Unit::*;
    let mut m: Vec<(String, Family, Unit, String)> = Vec::with_capacity(PERF_METRICS);
    let mut push = |name: &str, family: Family, desc: &str| {
        m.push((name.to_string(), family, Events, desc.to_string()));
    };

    // Generic hardware events.
    for (n, d) in [
        ("cycles", "CPU cycles"),
        ("instructions", "instructions retired"),
        ("cache-references", "last-level cache references"),
        ("cache-misses", "last-level cache misses"),
        ("branches", "branch instructions"),
        ("branch-misses", "mispredicted branches"),
        ("bus-cycles", "bus cycles"),
        ("ref-cycles", "reference cycles (unhalted)"),
        (
            "stalled-cycles-frontend",
            "cycles stalled on instruction fetch",
        ),
        ("stalled-cycles-backend", "cycles stalled on resources"),
    ] {
        push(n, HwGeneric, d);
    }
    // Cache hierarchy.
    for n in [
        "L1-dcache-loads",
        "L1-dcache-load-misses",
        "L1-dcache-stores",
        "L1-dcache-store-misses",
        "L1-dcache-prefetches",
        "L1-dcache-prefetch-misses",
        "L1-icache-loads",
        "L1-icache-load-misses",
        "LLC-loads",
        "LLC-load-misses",
        "LLC-stores",
        "LLC-store-misses",
        "LLC-prefetches",
        "LLC-prefetch-misses",
    ] {
        push(n, HwCache, "cache hierarchy event");
    }
    // TLBs.
    for n in [
        "dTLB-loads",
        "dTLB-load-misses",
        "dTLB-stores",
        "dTLB-store-misses",
        "iTLB-loads",
        "iTLB-load-misses",
    ] {
        push(n, HwTlb, "TLB event");
    }
    // Software events.
    for n in [
        "cpu-clock",
        "task-clock",
        "page-faults",
        "context-switches",
        "cpu-migrations",
        "minor-faults",
        "major-faults",
        "alignment-faults",
        "emulation-faults",
    ] {
        push(n, Software, "kernel software event");
    }
    // Per-core counters.
    for core in 0..8 {
        for ev in ["cycles", "instructions", "LLC-load-misses", "branch-misses"] {
            push(&format!("cpu{core}-{ev}"), PerCore, "per-core counter");
        }
    }
    // Offcore / uncore raw events (Nehalem-class Xeon).
    let raw: [&str; 83] = [
        "UOPS_ISSUED.ANY",
        "UOPS_ISSUED.FUSED",
        "UOPS_ISSUED.STALL_CYCLES",
        "UOPS_EXECUTED.PORT0",
        "UOPS_EXECUTED.PORT1",
        "UOPS_EXECUTED.PORT2_CORE",
        "UOPS_EXECUTED.PORT3_CORE",
        "UOPS_EXECUTED.PORT4_CORE",
        "UOPS_EXECUTED.PORT5",
        "UOPS_RETIRED.ANY",
        "UOPS_RETIRED.MACRO_FUSED",
        "UOPS_RETIRED.RETIRE_SLOTS",
        "RESOURCE_STALLS.ANY",
        "RESOURCE_STALLS.LOAD",
        "RESOURCE_STALLS.RS_FULL",
        "RESOURCE_STALLS.STORE",
        "RESOURCE_STALLS.ROB_FULL",
        "MEM_LOAD_RETIRED.L1D_HIT",
        "MEM_LOAD_RETIRED.L2_HIT",
        "MEM_LOAD_RETIRED.L3_MISS",
        "MEM_LOAD_RETIRED.HIT_LFB",
        "MEM_LOAD_RETIRED.DTLB_MISS",
        "MEM_UNCORE_RETIRED.LOCAL_DRAM",
        "MEM_UNCORE_RETIRED.REMOTE_DRAM",
        "MEM_UNCORE_RETIRED.OTHER_CORE_L2_HIT",
        "FP_COMP_OPS_EXE.X87",
        "FP_COMP_OPS_EXE.SSE_FP",
        "BR_INST_RETIRED.ALL_BRANCHES",
        "BR_INST_RETIRED.CONDITIONAL",
        "BR_INST_RETIRED.NEAR_CALL",
        "BR_MISP_RETIRED.ALL_BRANCHES",
        "BR_MISP_RETIRED.CONDITIONAL",
        "DTLB_MISSES.ANY",
        "DTLB_MISSES.WALK_COMPLETED",
        "DTLB_MISSES.STLB_HIT",
        "ITLB_MISSES.ANY",
        "ITLB_MISSES.WALK_COMPLETED",
        "L2_RQSTS.REFERENCES",
        "L2_RQSTS.MISS",
        "L2_RQSTS.IFETCH_HIT",
        "L2_RQSTS.IFETCH_MISS",
        "L2_RQSTS.LD_HIT",
        "L2_RQSTS.LD_MISS",
        "L2_LINES_IN.ANY",
        "L2_LINES_IN.DEMAND",
        "L2_LINES_IN.PREFETCH",
        "L2_LINES_OUT.ANY",
        "L2_LINES_OUT.DEMAND_CLEAN",
        "L2_LINES_OUT.DEMAND_DIRTY",
        "OFFCORE_REQUESTS.ANY",
        "OFFCORE_REQUESTS.DEMAND_READ_DATA",
        "OFFCORE_REQUESTS.DEMAND_RFO",
        "OFFCORE_REQUESTS.UNCACHED_MEM",
        "SNOOP_RESPONSE.HIT",
        "SNOOP_RESPONSE.HITE",
        "SNOOP_RESPONSE.HITM",
        "UNC_QMC_NORMAL_READS.ANY",
        "UNC_QMC_WRITES.FULL.ANY",
        "UNC_QHL_REQUESTS.LOCAL_READS",
        "UNC_QHL_REQUESTS.REMOTE_READS",
        "UNC_QHL_REQUESTS.LOCAL_WRITES",
        "UNC_QHL_REQUESTS.REMOTE_WRITES",
        "UNC_LLC_MISS.READ",
        "UNC_LLC_MISS.WRITE",
        "UNC_LLC_MISS.ANY",
        "UNC_LLC_HITS.READ",
        "UNC_LLC_HITS.WRITE",
        "UNC_LLC_HITS.ANY",
        "UNC_CLK_UNHALTED",
        "MACHINE_CLEARS.CYCLES",
        "MACHINE_CLEARS.MEM_ORDER",
        "MACHINE_CLEARS.SMC",
        "ILD_STALL.ANY",
        "ILD_STALL.LCP",
        "ARITH.CYCLES_DIV_BUSY",
        "ARITH.DIV",
        "ARITH.MUL",
        "INST_QUEUE_WRITES",
        "INST_DECODED.DEC0",
        "RAT_STALLS.ANY",
        "LOAD_HIT_PRE",
        "SQ_FULL_STALL_CYCLES",
        "XSNP_RESPONSE.ANY",
    ];
    for n in raw {
        push(n, Uncore, "raw PMU event");
    }

    assert_eq!(m.len(), PERF_METRICS, "perf catalog drifted");
    m
}

impl MetricCatalog {
    fn build() -> Self {
        let mut defs = Vec::with_capacity(TOTAL_METRICS);
        for source in [Source::HypervisorSysstat, Source::VmSysstat] {
            for (name, family, unit, description) in sysstat_defs() {
                defs.push(MetricDef {
                    name,
                    source,
                    family,
                    unit,
                    description,
                });
            }
        }
        for (name, family, unit, description) in perf_defs() {
            defs.push(MetricDef {
                name,
                source: Source::PerfCounter,
                family,
                unit,
                description,
            });
        }
        assert_eq!(defs.len(), TOTAL_METRICS);
        MetricCatalog { defs }
    }

    /// Number of metrics (always [`TOTAL_METRICS`]).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Catalog is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Look up a metric definition.
    pub fn def(&self, id: MetricId) -> &MetricDef {
        &self.defs[id.0 as usize]
    }

    /// All metric ids.
    pub fn ids(&self) -> impl Iterator<Item = MetricId> + '_ {
        (0..self.defs.len() as u16).map(MetricId)
    }

    /// Find a metric by name and source.
    pub fn find(&self, name: &str, source: Source) -> Option<MetricId> {
        self.defs
            .iter()
            .position(|d| d.source == source && d.name == name)
            .map(|i| MetricId(i as u16))
    }

    /// Metrics of a source.
    pub fn by_source(&self, source: Source) -> Vec<MetricId> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.source == source)
            .map(|(i, _)| MetricId(i as u16))
            .collect()
    }

    /// The curated sample of metrics reproduced in Table 1.
    pub fn table1_sample(&self) -> Vec<MetricId> {
        let picks: [(&str, Source); 14] = [
            ("%user", Source::VmSysstat),
            ("%system", Source::VmSysstat),
            ("%steal", Source::VmSysstat),
            ("kbmemused", Source::VmSysstat),
            ("kbcached", Source::VmSysstat),
            ("bread/s", Source::VmSysstat),
            ("bwrtn/s", Source::VmSysstat),
            ("eth0-rxkB/s", Source::VmSysstat),
            ("eth0-txkB/s", Source::VmSysstat),
            ("cswch/s", Source::HypervisorSysstat),
            ("intr/s", Source::HypervisorSysstat),
            ("%iowait", Source::HypervisorSysstat),
            ("cycles", Source::PerfCounter),
            ("cache-misses", Source::PerfCounter),
        ];
        picks
            .iter()
            .map(|(n, s)| self.find(n, *s).expect("table1 metric in catalog"))
            .collect()
    }
}

/// The process-wide catalog instance.
pub fn catalog() -> &'static MetricCatalog {
    static CATALOG: OnceLock<MetricCatalog> = OnceLock::new();
    CATALOG.get_or_init(MetricCatalog::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_518_metrics() {
        let c = catalog();
        assert_eq!(c.len(), 518);
        assert_eq!(c.by_source(Source::HypervisorSysstat).len(), 182);
        assert_eq!(c.by_source(Source::VmSysstat).len(), 182);
        assert_eq!(c.by_source(Source::PerfCounter).len(), 154);
    }

    #[test]
    fn names_unique_within_source() {
        use std::collections::HashSet;
        let c = catalog();
        for source in [
            Source::HypervisorSysstat,
            Source::VmSysstat,
            Source::PerfCounter,
        ] {
            let ids = c.by_source(source);
            let names: HashSet<_> = ids.iter().map(|&id| &c.def(id).name).collect();
            assert_eq!(names.len(), ids.len(), "duplicate names in {source}");
        }
    }

    #[test]
    fn find_round_trips() {
        let c = catalog();
        let id = c.find("%steal", Source::VmSysstat).unwrap();
        assert_eq!(c.def(id).name, "%steal");
        assert_eq!(c.def(id).source, Source::VmSysstat);
        assert!(c.find("%steal", Source::PerfCounter).is_none());
        assert!(c.find("no-such-metric", Source::VmSysstat).is_none());
    }

    #[test]
    fn hypervisor_and_vm_views_mirror_each_other() {
        let c = catalog();
        let hv = c.by_source(Source::HypervisorSysstat);
        let vm = c.by_source(Source::VmSysstat);
        for (h, v) in hv.iter().zip(vm.iter()) {
            assert_eq!(c.def(*h).name, c.def(*v).name);
            assert_eq!(c.def(*h).family, c.def(*v).family);
        }
    }

    #[test]
    fn table1_sample_resolves() {
        let c = catalog();
        let t1 = c.table1_sample();
        assert_eq!(t1.len(), 14);
        // All three sources represented, as in the paper's Table 1.
        let sources: std::collections::HashSet<_> = t1.iter().map(|&id| c.def(id).source).collect();
        assert_eq!(sources.len(), 3);
    }

    #[test]
    fn ids_cover_catalog() {
        let c = catalog();
        assert_eq!(c.ids().count(), 518);
        let last = MetricId(517);
        assert!(!c.def(last).name.is_empty());
    }
}
