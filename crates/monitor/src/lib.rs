//! # cloudchar-monitor
//!
//! The monitoring substrate of the `cloudchar` testbed, reconstructing
//! the paper's instrumentation: **518 metrics** — 182 sysstat metrics in
//! the hypervisor, 182 sysstat metrics per VM, and 154 perf hardware
//! counters — sampled every 2 seconds.
//!
//! * [`metric`] — metric identity, sources, families, units;
//! * [`catalog`](mod@catalog) — the full 518-entry catalog and the Table 1 sample;
//! * [`synth`] — derivation of complete sysstat/perf vectors from raw
//!   model activity, sar-style;
//! * [`store`] — per-`(host, metric)` time series with figure-ready
//!   export;
//! * [`chunk`] — the compressed chunked on-disk trace format
//!   (delta-of-delta + Gorilla XOR) with streaming writer/reader for
//!   out-of-core analysis;
//! * [`fault`] — fault-visible metrics (error rate, retries,
//!   availability, attribution windows) kept outside the pinned catalog;
//! * [`online`] — per-tick resource demand extraction ([`ResourceTap`])
//!   feeding the live sliding-window profilers.

#![warn(missing_docs)]

pub mod catalog;
pub mod chunk;
pub mod fault;
pub mod metric;
pub mod online;
pub mod sar;
pub mod store;
pub mod synth;

pub use catalog::{catalog, MetricCatalog, PERF_METRICS, SYSSTAT_METRICS, TOTAL_METRICS};
pub use chunk::{ChunkReader, ChunkWriter, SeriesCursor, CHUNK_SAMPLES};
pub use fault::{FaultMonitor, FaultSummary, FaultWindow};
pub use metric::{Family, MetricDef, MetricId, Source, Unit};
pub use online::{ResourceTap, RESOURCE_NAMES};
pub use sar::render_sar;
pub use store::{HostId, SampleRow, SeriesStore, TimeSeries};
pub use synth::{
    synthesize_perf, synthesize_perf_into, synthesize_sysstat, synthesize_sysstat_into,
    RawHostSample,
};
