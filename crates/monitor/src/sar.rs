//! sar-style text rendering of sampled metrics.
//!
//! The paper's raw data arrived as sysstat reports; this module renders
//! our sampled series back into that familiar shape, one section per
//! sar report family, for eyeballing and diffing against real sar
//! output.

use crate::catalog::catalog;
use crate::metric::Source;
use crate::store::SeriesStore;
use std::fmt::Write as _;

/// Render a sar-like report for `host` covering sample indices
/// `[from, to)`. Sections: CPU, memory, I/O, network — the families the
/// paper's figures draw from.
pub fn render_sar(
    store: &SeriesStore,
    host: &str,
    source: Source,
    from: usize,
    to: usize,
) -> String {
    let c = catalog();
    let mut out = String::new();
    let get = |name: &str, i: usize| -> f64 {
        c.find(name, source)
            .and_then(|id| store.get(host, id))
            .and_then(|s| s.values.get(i))
            .copied()
            .unwrap_or(f64::NAN)
    };
    let time_of = |i: usize| -> String {
        let id = c.find("%user", source).expect("%user exists");
        match store.get(host, id) {
            Some(s) => {
                let t = s.time_of(i).as_secs_f64();
                let (h, rem) = ((t as u64) / 3600, (t as u64) % 3600);
                format!("{:02}:{:02}:{:02}", h, rem / 60, rem % 60)
            }
            None => "--:--:--".to_string(),
        }
    };

    let span = |out: &mut String, header: &str, cols: &[&str]| {
        writeln!(out, "{header}").unwrap();
        for i in from..to {
            let mut row = time_of(i);
            for name in cols {
                write!(row, " {:>10.2}", get(name, i)).unwrap();
            }
            writeln!(out, "{row}").unwrap();
        }
        writeln!(out).unwrap();
    };

    writeln!(out, "Linux 2.6.18-xen ({host})\tsimulated\t_x86_64_\n").unwrap();
    span(
        &mut out,
        &format!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "time", "%user", "%system", "%iowait", "%steal", "%idle"
        ),
        &["%user", "%system", "%iowait", "%steal", "%idle"],
    );
    span(
        &mut out,
        &format!(
            "{:>8} {:>10} {:>10} {:>10}",
            "time", "kbmemused", "kbcached", "%memused"
        ),
        &["kbmemused", "kbcached", "%memused"],
    );
    span(
        &mut out,
        &format!(
            "{:>8} {:>10} {:>10} {:>10}",
            "time", "tps", "bread/s", "bwrtn/s"
        ),
        &["tps", "bread/s", "bwrtn/s"],
    );
    span(
        &mut out,
        &format!(
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            "time", "rxpck/s", "txpck/s", "rxkB/s", "txkB/s"
        ),
        &["eth0-rxpck/s", "eth0-txpck/s", "eth0-rxkB/s", "eth0-txkB/s"],
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricId;
    use crate::synth::{synthesize_sysstat, RawHostSample};
    use cloudchar_simcore::{SimDuration, SimTime};

    fn store_with_samples(n: usize) -> SeriesStore {
        let mut store = SeriesStore::new();
        for i in 0..n {
            let raw = RawHostSample {
                dt_s: 2.0,
                cpu_cycles: 1e8 * (i + 1) as f64,
                cpu_capacity_cycles: 4.48e10,
                user_frac: 0.7,
                mem_total_kb: 2e6,
                mem_used_kb: 4e5 + 1e4 * i as f64,
                mem_cached_kb: 1e5,
                disk_read_bytes: 1e5,
                disk_write_bytes: 2e5,
                disk_reads: 10.0,
                disk_writes: 20.0,
                net_rx_bytes: 5e5,
                net_tx_bytes: 2e6,
                net_rx_pkts: 400.0,
                net_tx_pkts: 1500.0,
                cores: 2,
                core_hz: 2.8e9,
                ..Default::default()
            };
            for (id, v) in synthesize_sysstat(&raw, Source::VmSysstat) {
                store.record(
                    "web-vm",
                    id,
                    SimTime::ZERO + SimDuration::from_secs(2),
                    SimDuration::from_secs(2),
                    v,
                );
            }
        }
        store
    }

    #[test]
    fn renders_all_sections() {
        let store = store_with_samples(5);
        let report = render_sar(&store, "web-vm", Source::VmSysstat, 0, 5);
        for header in ["%user", "kbmemused", "bread/s", "rxkB/s"] {
            assert!(report.contains(header), "missing section {header}");
        }
        // 4 sections × 5 rows + headers + banner.
        assert!(report.lines().count() >= 4 * 6);
        // Timestamps progress by the 2 s cadence.
        assert!(report.contains("00:00:02"));
        assert!(report.contains("00:00:10"));
    }

    #[test]
    fn missing_host_renders_nan_rows() {
        let store = store_with_samples(2);
        let report = render_sar(&store, "no-such-host", Source::VmSysstat, 0, 2);
        assert!(report.contains("NaN"));
    }

    #[test]
    fn range_is_respected() {
        let store = store_with_samples(10);
        let full = render_sar(&store, "web-vm", Source::VmSysstat, 0, 10);
        let slice = render_sar(&store, "web-vm", Source::VmSysstat, 2, 4);
        assert!(slice.lines().count() < full.lines().count());
    }

    #[test]
    fn values_match_store() {
        let store = store_with_samples(3);
        let id: MetricId = catalog().find("kbmemused", Source::VmSysstat).unwrap();
        let v = store.get("web-vm", id).unwrap().values[0];
        let report = render_sar(&store, "web-vm", Source::VmSysstat, 0, 1);
        assert!(report.contains(&format!("{v:.2}")), "report lacks {v}");
    }
}
