//! Time-series storage for sampled metrics.
//!
//! The paper samples every 2 seconds for ~20 minutes, giving ~600 points
//! per metric per host. [`SeriesStore`] holds one [`TimeSeries`] per
//! `(host, metric)` pair and can export figure-ready columns.
//!
//! Layout: the store is *columnar*. Hosts are interned once into small
//! dense [`HostId`]s, and each host owns a block of columns indexed
//! directly by [`MetricId`] (the catalog is a fixed dense table, so
//! `metric.0` *is* the column index). The hot path commits one whole
//! [`SampleRow`] per host per tick through [`SeriesStore::record_row`]
//! without touching a `String` key or a map probe; the keyed
//! `(host, metric) → TimeSeries` view survives as the compatibility API
//! ([`SeriesStore::get`] and friends) for analysis and reporting.
//! Serialization still emits the flat `(host, metric, series)` entry
//! list in `(host, metric)` order, byte-identical to the previous
//! map-backed format.

use crate::metric::MetricId;
use cloudchar_simcore::stats::Moments;
use cloudchar_simcore::{audit, SimDuration, SimTime};
use serde::{Deserialize, Error, Serialize, Value};

/// A regularly sampled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Time of the first sample.
    pub start: SimTime,
    /// Sampling interval.
    pub interval: SimDuration,
    /// Sample values.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series with the given timing.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        TimeSeries {
            start,
            interval,
            values: Vec::new(),
        }
    }

    /// An empty series preallocated for `capacity` samples.
    pub fn with_capacity(start: SimTime, interval: SimDuration, capacity: usize) -> Self {
        TimeSeries {
            start,
            interval,
            values: Vec::with_capacity(capacity),
        }
    }

    /// Append one sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of sample `i`.
    pub fn time_of(&self, i: usize) -> SimTime {
        self.start + SimDuration::from_nanos(self.interval.as_nanos().saturating_mul(i as u64))
    }

    /// One-pass summary moments (count, mean, M2, sum, min, max).
    pub fn moments(&self) -> Moments {
        Moments::of(&self.values)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        let m = self.moments();
        if m.count == 0 {
            0.0
        } else {
            m.sum / m.count as f64
        }
    }

    /// Population variance (0 when < 2 samples).
    pub fn variance(&self) -> f64 {
        self.moments().variance()
    }

    /// Sum of all samples (aggregate demand over the run).
    pub fn total(&self) -> f64 {
        self.moments().sum
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.moments().max_opt()
    }
}

/// Label identifying a monitored host (e.g. `"web-vm"`, `"dom0"`).
pub type HostLabel = String;

/// Dense interned host handle, valid for the [`SeriesStore`] that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(pub u32);

/// One host's metric row for a single sampling tick: `(metric, value)`
/// pairs in synthesis order. Reused across ticks so steady-state
/// sampling allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct SampleRow {
    entries: Vec<(MetricId, f64)>,
}

impl SampleRow {
    /// Empty row.
    pub fn new() -> Self {
        SampleRow::default()
    }

    /// Empty row preallocated for `capacity` metrics.
    pub fn with_capacity(capacity: usize) -> Self {
        SampleRow {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Drop all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Append one `(metric, value)` pair.
    pub fn push(&mut self, metric: MetricId, value: f64) {
        self.entries.push((metric, value));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the row has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(metric, value)` pairs in insertion order.
    pub fn entries(&self) -> &[(MetricId, f64)] {
        &self.entries
    }
}

/// Store of all sampled series: per-host column blocks indexed by
/// [`MetricId`], with a `(host, metric)` keyed compatibility view.
#[derive(Debug, Default, Clone)]
pub struct SeriesStore {
    /// Interned host labels, in first-touch order (`HostId.0` indexes
    /// this and `blocks`).
    hosts: Vec<HostLabel>,
    /// Per-host columns; `metric.0 as usize` is the column index.
    blocks: Vec<Vec<Option<TimeSeries>>>,
    /// Preallocation hint: expected samples per series (0 = unknown).
    expected_samples: usize,
}

impl Serialize for SeriesStore {
    fn to_value(&self) -> Value {
        // Emit the flat entry list sorted by (host label, metric id) —
        // exactly the order the previous BTreeMap-backed store produced,
        // so serialized traces stay byte-identical.
        let mut order: Vec<usize> = (0..self.hosts.len()).collect();
        order.sort_by(|&a, &b| self.hosts[a].cmp(&self.hosts[b]));
        let mut entries = Vec::new();
        for hi in order {
            for (ci, col) in self.blocks[hi].iter().enumerate() {
                if let Some(series) = col {
                    entries.push(Value::Seq(vec![
                        self.hosts[hi].to_value(),
                        MetricId(ci as u16).to_value(),
                        series.to_value(),
                    ]));
                }
            }
        }
        Value::Map(vec![("series".to_string(), Value::Seq(entries))])
    }
}

impl Deserialize for SeriesStore {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries: Vec<(HostLabel, MetricId, TimeSeries)> =
            Deserialize::from_value(v.field("series"))?;
        let mut store = SeriesStore::new();
        for (host, metric, series) in entries {
            let id = store.host_id(&host);
            store.put_series(id, metric, series);
        }
        Ok(store)
    }
}

impl SeriesStore {
    /// Empty store.
    pub fn new() -> Self {
        SeriesStore::default()
    }

    /// Empty store that preallocates every new series for
    /// `expected_samples` points (`duration / interval` of the run).
    pub fn with_expected_samples(expected_samples: usize) -> Self {
        SeriesStore {
            expected_samples,
            ..SeriesStore::default()
        }
    }

    /// Intern a host label, returning its dense id. The first call for a
    /// label allocates its column block; subsequent calls are a short
    /// scan over the (few) known hosts.
    pub fn host_id(&mut self, host: &str) -> HostId {
        if let Some(i) = self.hosts.iter().position(|h| h == host) {
            return HostId(i as u32);
        }
        self.hosts.push(host.to_string());
        self.blocks
            .push(Vec::with_capacity(crate::catalog::TOTAL_METRICS));
        HostId((self.hosts.len() - 1) as u32)
    }

    /// Label of an interned host.
    pub fn host_label(&self, id: HostId) -> &str {
        &self.hosts[id.0 as usize]
    }

    fn find_host(&self, host: &str) -> Option<usize> {
        self.hosts.iter().position(|h| h == host)
    }

    /// Column slot for `(host, metric)`, growing the block on demand.
    fn column_mut(&mut self, id: HostId, metric: MetricId) -> &mut Option<TimeSeries> {
        let block = &mut self.blocks[id.0 as usize];
        let idx = metric.0 as usize;
        if idx >= block.len() {
            block.resize_with(idx + 1, || None);
        }
        &mut block[idx]
    }

    fn put_series(&mut self, id: HostId, metric: MetricId, series: TimeSeries) {
        *self.column_mut(id, metric) = Some(series);
    }

    /// Append a sample, creating the series on first touch.
    pub fn record(
        &mut self,
        host: &str,
        metric: MetricId,
        start: SimTime,
        interval: SimDuration,
        value: f64,
    ) {
        let id = self.host_id(host);
        self.record_by_id(id, metric, start, interval, value);
    }

    /// Append a sample under an interned host id.
    pub fn record_by_id(
        &mut self,
        id: HostId,
        metric: MetricId,
        start: SimTime,
        interval: SimDuration,
        value: f64,
    ) {
        let expected = self.expected_samples;
        let block = &mut self.blocks[id.0 as usize];
        let idx = metric.0 as usize;
        if idx >= block.len() {
            block.resize_with(idx + 1, || None);
        }
        let series =
            block[idx].get_or_insert_with(|| TimeSeries::with_capacity(start, interval, expected));
        if audit::is_enabled() {
            let host = &self.hosts[id.0 as usize];
            audit::check(
                "monitor.sample_finite",
                series.time_of(series.len()).as_nanos(),
                value.is_finite(),
                || format!("{host}/{metric:?} sample {} is {value}", series.len()),
            );
        }
        series.push(value);
    }

    /// Commit one host's whole sampling row: every `(metric, value)`
    /// pair is appended to its column, creating columns on first touch.
    pub fn record_row(
        &mut self,
        id: HostId,
        start: SimTime,
        interval: SimDuration,
        row: &SampleRow,
    ) {
        let audit_on = audit::is_enabled();
        let expected = self.expected_samples;
        let block = &mut self.blocks[id.0 as usize];
        for &(metric, value) in &row.entries {
            let idx = metric.0 as usize;
            if idx >= block.len() {
                block.resize_with(idx + 1, || None);
            }
            let series = block[idx]
                .get_or_insert_with(|| TimeSeries::with_capacity(start, interval, expected));
            if audit_on {
                let host = &self.hosts[id.0 as usize];
                audit::check(
                    "monitor.sample_finite",
                    series.time_of(series.len()).as_nanos(),
                    value.is_finite(),
                    || format!("{host}/{metric:?} sample {} is {value}", series.len()),
                );
            }
            series.push(value);
        }
    }

    /// Fetch a series.
    pub fn get(&self, host: &str, metric: MetricId) -> Option<&TimeSeries> {
        let hi = self.find_host(host)?;
        self.blocks[hi].get(metric.0 as usize)?.as_ref()
    }

    /// Iterate every `(host, metric, series)` entry, sorted by
    /// `(host label, metric id)` — the order the keyed store yielded.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricId, &TimeSeries)> {
        let mut order: Vec<usize> = (0..self.hosts.len()).collect();
        order.sort_by(|&a, &b| self.hosts[a].cmp(&self.hosts[b]));
        order.into_iter().flat_map(move |hi| {
            self.blocks[hi]
                .iter()
                .enumerate()
                .filter_map(move |(ci, col)| {
                    col.as_ref()
                        .map(|s| (self.hosts[hi].as_str(), MetricId(ci as u16), s))
                })
        })
    }

    /// All hosts present, sorted by label.
    pub fn hosts(&self) -> Vec<&str> {
        let mut hosts: Vec<&str> = self
            .hosts
            .iter()
            .enumerate()
            .filter(|(hi, _)| self.blocks[*hi].iter().any(Option::is_some))
            .map(|(_, h)| h.as_str())
            .collect();
        hosts.sort_unstable();
        hosts
    }

    /// Number of `(host, metric)` series.
    pub fn len(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.iter().filter(|c| c.is_some()).count())
            .sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absorb every series of `other`, prefixing each of its host
    /// labels with `prefix` — how the fleet runner folds per-pod stores
    /// into one sweep-wide store without label collisions. Panics if a
    /// renamed `(host, metric)` series already exists here: pods own
    /// disjoint hosts by construction, and a collision means two shards
    /// sampled the same host. Consumes `other` and *moves* every series
    /// across (no clone), so folding N pod stores does not double peak
    /// memory at finalize.
    pub fn merge_renamed(&mut self, other: SeriesStore, prefix: &str) {
        for (host, block) in other.hosts.into_iter().zip(other.blocks) {
            let renamed = format!("{prefix}{host}");
            let id = self.host_id(&renamed);
            for (ci, col) in block.into_iter().enumerate() {
                let Some(series) = col else { continue };
                let slot = self.column_mut(id, MetricId(ci as u16));
                assert!(
                    slot.is_none(),
                    "merge_renamed: series {renamed}/{ci} already present"
                );
                *slot = Some(series);
            }
        }
    }

    /// Export one series as `(seconds, value)` rows.
    pub fn to_rows(&self, host: &str, metric: MetricId) -> Vec<(f64, f64)> {
        match self.get(host, metric) {
            None => Vec::new(),
            Some(s) => s
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| (s.time_of(i).as_secs_f64(), v))
                .collect(),
        }
    }

    /// Export several series on a shared time axis as CSV with a header.
    pub fn to_csv(&self, columns: &[(&str, MetricId, &str)]) -> String {
        let mut out = String::from("t_s");
        for (_, _, label) in columns {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        let n = columns
            .iter()
            .filter_map(|(h, m, _)| self.get(h, *m).map(|s| s.len()))
            .max()
            .unwrap_or(0);
        let timing = columns
            .iter()
            .find_map(|(h, m, _)| self.get(h, *m))
            .map(|s| (s.start, s.interval))
            .unwrap_or((SimTime::ZERO, SimDuration::from_secs(2)));
        for i in 0..n {
            let t =
                timing.0 + SimDuration::from_nanos(timing.1.as_nanos().saturating_mul(i as u64));
            out.push_str(&format!("{:.1}", t.as_secs_f64()));
            for (h, m, _) in columns {
                let v = self
                    .get(h, *m)
                    .and_then(|s| s.values.get(i))
                    .copied()
                    .unwrap_or(f64::NAN);
                out.push_str(&format!(",{v:.3}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(n: u16) -> MetricId {
        MetricId(n)
    }

    #[test]
    fn series_timing_and_stats() {
        let mut s = TimeSeries::new(SimTime::from_secs(10), SimDuration::from_secs(2));
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.time_of(0), SimTime::from_secs(10));
        assert_eq!(s.time_of(3), SimTime::from_secs(16));
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.total(), 10.0);
        assert_eq!(s.max(), Some(4.0));
        assert!((s.variance() - 1.25).abs() < 1e-12);
        let m = s.moments();
        assert_eq!(m.count, 4);
        assert_eq!(m.min_opt(), Some(1.0));
        assert!(m.all_finite);
    }

    #[test]
    fn empty_series_stats() {
        let s = TimeSeries::new(SimTime::ZERO, SimDuration::from_secs(2));
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn store_records_and_retrieves() {
        let mut st = SeriesStore::new();
        for i in 0..5 {
            st.record(
                "web-vm",
                mid(3),
                SimTime::ZERO,
                SimDuration::from_secs(2),
                i as f64,
            );
        }
        let s = st.get("web-vm", mid(3)).unwrap();
        assert_eq!(s.len(), 5);
        assert!(st.get("web-vm", mid(4)).is_none());
        assert!(st.get("db-vm", mid(3)).is_none());
        assert_eq!(st.len(), 1);
        assert_eq!(st.hosts(), vec!["web-vm"]);
    }

    #[test]
    fn host_interning_is_stable() {
        let mut st = SeriesStore::new();
        let a = st.host_id("web-vm");
        let b = st.host_id("mysql-vm");
        assert_ne!(a, b);
        assert_eq!(st.host_id("web-vm"), a);
        assert_eq!(st.host_label(a), "web-vm");
        assert_eq!(st.host_label(b), "mysql-vm");
    }

    #[test]
    fn record_row_matches_per_metric_record() {
        let start = SimTime::from_secs(2);
        let dt = SimDuration::from_secs(2);
        let mut row = SampleRow::new();
        row.push(mid(1), 10.0);
        row.push(mid(4), 40.0);

        let mut columnar = SeriesStore::new();
        let id = columnar.host_id("h");
        columnar.record_row(id, start, dt, &row);
        columnar.record_row(id, start, dt, &row);

        let mut keyed = SeriesStore::new();
        for _ in 0..2 {
            for &(m, v) in row.entries() {
                keyed.record("h", m, start, dt, v);
            }
        }
        for m in [mid(1), mid(4)] {
            assert_eq!(columnar.get("h", m), keyed.get("h", m));
        }
        assert_eq!(columnar.len(), keyed.len());
    }

    #[test]
    fn sample_row_reuse_clears_entries() {
        let mut row = SampleRow::with_capacity(8);
        row.push(mid(0), 1.0);
        assert_eq!(row.len(), 1);
        row.clear();
        assert!(row.is_empty());
        assert!(row.entries().is_empty());
    }

    #[test]
    fn hosts_and_iter_are_label_sorted() {
        let mut st = SeriesStore::new();
        // First-touch order is deliberately not sorted.
        for h in ["web-vm", "mysql-vm", "dom0"] {
            st.record(h, mid(2), SimTime::ZERO, SimDuration::from_secs(2), 1.0);
            st.record(h, mid(0), SimTime::ZERO, SimDuration::from_secs(2), 2.0);
        }
        assert_eq!(st.hosts(), vec!["dom0", "mysql-vm", "web-vm"]);
        let keys: Vec<(String, u16)> = st.iter().map(|(h, m, _)| (h.to_string(), m.0)).collect();
        assert_eq!(
            keys,
            vec![
                ("dom0".to_string(), 0),
                ("dom0".to_string(), 2),
                ("mysql-vm".to_string(), 0),
                ("mysql-vm".to_string(), 2),
                ("web-vm".to_string(), 0),
                ("web-vm".to_string(), 2),
            ]
        );
    }

    #[test]
    fn merge_renamed_prefixes_and_keeps_series() {
        let start = SimTime::ZERO;
        let dt = SimDuration::from_secs(2);
        let mut pod = SeriesStore::new();
        pod.record("web-vm", mid(1), start, dt, 3.0);
        pod.record("dom0", mid(0), start, dt, 5.0);
        let mut fleet = SeriesStore::new();
        fleet.record("gen", mid(0), start, dt, 1.0);
        fleet.merge_renamed(pod, "pod00/");
        assert_eq!(fleet.get("pod00/web-vm", mid(1)).unwrap().values, vec![3.0]);
        assert_eq!(fleet.get("pod00/dom0", mid(0)).unwrap().values, vec![5.0]);
        assert_eq!(fleet.get("gen", mid(0)).unwrap().values, vec![1.0]);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.hosts(), vec!["gen", "pod00/dom0", "pod00/web-vm"]);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn merge_renamed_rejects_collisions() {
        let start = SimTime::ZERO;
        let dt = SimDuration::from_secs(2);
        let mut a = SeriesStore::new();
        a.record("p/web-vm", mid(1), start, dt, 1.0);
        let mut b = SeriesStore::new();
        b.record("web-vm", mid(1), start, dt, 2.0);
        a.merge_renamed(b, "p/");
    }

    #[test]
    fn rows_use_timestamps() {
        let mut st = SeriesStore::new();
        st.record(
            "h",
            mid(0),
            SimTime::from_secs(4),
            SimDuration::from_secs(2),
            7.0,
        );
        st.record(
            "h",
            mid(0),
            SimTime::from_secs(4),
            SimDuration::from_secs(2),
            9.0,
        );
        let rows = st.to_rows("h", mid(0));
        assert_eq!(rows, vec![(4.0, 7.0), (6.0, 9.0)]);
        assert!(st.to_rows("h", mid(9)).is_empty());
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut st = SeriesStore::new();
        for v in [1.0, 2.0] {
            st.record("a", mid(0), SimTime::ZERO, SimDuration::from_secs(2), v);
            st.record(
                "b",
                mid(0),
                SimTime::ZERO,
                SimDuration::from_secs(2),
                v * 10.0,
            );
        }
        let csv = st.to_csv(&[("a", mid(0), "alpha"), ("b", mid(0), "beta")]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,alpha,beta");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0.0,1.000,10.000"));
    }

    #[test]
    fn serde_round_trip() {
        let mut st = SeriesStore::new();
        st.record("h", mid(1), SimTime::ZERO, SimDuration::from_secs(2), 3.5);
        let json = serde_json::to_string(&st).unwrap();
        let back: SeriesStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("h", mid(1)).unwrap().values, vec![3.5]);
    }

    #[test]
    fn serde_bytes_are_host_sorted_regardless_of_touch_order() {
        let start = SimTime::ZERO;
        let dt = SimDuration::from_secs(2);
        let mut a = SeriesStore::new();
        for h in ["web-vm", "mysql-vm", "dom0"] {
            a.record(h, mid(1), start, dt, 1.5);
        }
        let mut b = SeriesStore::new();
        for h in ["dom0", "mysql-vm", "web-vm"] {
            b.record(h, mid(1), start, dt, 1.5);
        }
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
