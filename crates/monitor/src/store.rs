//! Time-series storage for sampled metrics.
//!
//! The paper samples every 2 seconds for ~20 minutes, giving ~600 points
//! per metric per host. [`SeriesStore`] holds one [`TimeSeries`] per
//! `(host, metric)` pair and can export figure-ready columns.

use crate::metric::MetricId;
use cloudchar_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A regularly sampled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Time of the first sample.
    pub start: SimTime,
    /// Sampling interval.
    pub interval: SimDuration,
    /// Sample values.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series with the given timing.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        TimeSeries {
            start,
            interval,
            values: Vec::new(),
        }
    }

    /// Append one sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of sample `i`.
    pub fn time_of(&self, i: usize) -> SimTime {
        self.start + SimDuration::from_nanos(self.interval.as_nanos() * i as u64)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population variance (0 when < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64
    }

    /// Sum of all samples (aggregate demand over the run).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) if v > m => v,
                Some(m) => m,
            })
        })
    }
}

/// Label identifying a monitored host (e.g. `"web-vm"`, `"dom0"`).
pub type HostLabel = String;

/// Store of all sampled series, keyed by `(host, metric)`.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SeriesStore {
    // Serialized as an entry list: JSON map keys must be strings.
    #[serde(with = "series_entries")]
    series: BTreeMap<(HostLabel, MetricId), TimeSeries>,
}

mod series_entries {
    use super::*;
    use serde::Value;

    pub fn serialize(map: &BTreeMap<(HostLabel, MetricId), TimeSeries>) -> Value {
        Value::Seq(
            map.iter()
                .map(|((h, m), s)| {
                    Value::Seq(vec![
                        serde::Serialize::to_value(h),
                        serde::Serialize::to_value(m),
                        serde::Serialize::to_value(s),
                    ])
                })
                .collect(),
        )
    }

    pub fn deserialize(
        v: &Value,
    ) -> Result<BTreeMap<(HostLabel, MetricId), TimeSeries>, serde::Error> {
        let entries: Vec<(HostLabel, MetricId, TimeSeries)> = serde::Deserialize::from_value(v)?;
        Ok(entries.into_iter().map(|(h, m, s)| ((h, m), s)).collect())
    }
}

impl SeriesStore {
    /// Empty store.
    pub fn new() -> Self {
        SeriesStore::default()
    }

    /// Append a sample, creating the series on first touch.
    pub fn record(
        &mut self,
        host: &str,
        metric: MetricId,
        start: SimTime,
        interval: SimDuration,
        value: f64,
    ) {
        let series = self
            .series
            .entry((host.to_string(), metric))
            .or_insert_with(|| TimeSeries::new(start, interval));
        cloudchar_simcore::audit::check(
            "monitor.sample_finite",
            series.time_of(series.len()).as_nanos(),
            value.is_finite(),
            || format!("{host}/{metric:?} sample {} is {value}", series.len()),
        );
        series.push(value);
    }

    /// Fetch a series.
    pub fn get(&self, host: &str, metric: MetricId) -> Option<&TimeSeries> {
        self.series.get(&(host.to_string(), metric))
    }

    /// Iterate every `(host, metric) → series` entry, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(HostLabel, MetricId), &TimeSeries)> {
        self.series.iter()
    }

    /// All hosts present.
    pub fn hosts(&self) -> Vec<&str> {
        let mut hosts: Vec<&str> = self.series.keys().map(|(h, _)| h.as_str()).collect();
        hosts.dedup();
        hosts
    }

    /// Number of `(host, metric)` series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Export one series as `(seconds, value)` rows.
    pub fn to_rows(&self, host: &str, metric: MetricId) -> Vec<(f64, f64)> {
        match self.get(host, metric) {
            None => Vec::new(),
            Some(s) => s
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| (s.time_of(i).as_secs_f64(), v))
                .collect(),
        }
    }

    /// Export several series on a shared time axis as CSV with a header.
    pub fn to_csv(&self, columns: &[(&str, MetricId, &str)]) -> String {
        let mut out = String::from("t_s");
        for (_, _, label) in columns {
            out.push(',');
            out.push_str(label);
        }
        out.push('\n');
        let n = columns
            .iter()
            .filter_map(|(h, m, _)| self.get(h, *m).map(|s| s.len()))
            .max()
            .unwrap_or(0);
        let timing = columns
            .iter()
            .find_map(|(h, m, _)| self.get(h, *m))
            .map(|s| (s.start, s.interval))
            .unwrap_or((SimTime::ZERO, SimDuration::from_secs(2)));
        for i in 0..n {
            let t = timing.0 + SimDuration::from_nanos(timing.1.as_nanos() * i as u64);
            out.push_str(&format!("{:.1}", t.as_secs_f64()));
            for (h, m, _) in columns {
                let v = self
                    .get(h, *m)
                    .and_then(|s| s.values.get(i))
                    .copied()
                    .unwrap_or(f64::NAN);
                out.push_str(&format!(",{v:.3}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(n: u16) -> MetricId {
        MetricId(n)
    }

    #[test]
    fn series_timing_and_stats() {
        let mut s = TimeSeries::new(SimTime::from_secs(10), SimDuration::from_secs(2));
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.time_of(0), SimTime::from_secs(10));
        assert_eq!(s.time_of(3), SimTime::from_secs(16));
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.total(), 10.0);
        assert_eq!(s.max(), Some(4.0));
        assert!((s.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_series_stats() {
        let s = TimeSeries::new(SimTime::ZERO, SimDuration::from_secs(2));
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn store_records_and_retrieves() {
        let mut st = SeriesStore::new();
        for i in 0..5 {
            st.record(
                "web-vm",
                mid(3),
                SimTime::ZERO,
                SimDuration::from_secs(2),
                i as f64,
            );
        }
        let s = st.get("web-vm", mid(3)).unwrap();
        assert_eq!(s.len(), 5);
        assert!(st.get("web-vm", mid(4)).is_none());
        assert!(st.get("db-vm", mid(3)).is_none());
        assert_eq!(st.len(), 1);
        assert_eq!(st.hosts(), vec!["web-vm"]);
    }

    #[test]
    fn rows_use_timestamps() {
        let mut st = SeriesStore::new();
        st.record(
            "h",
            mid(0),
            SimTime::from_secs(4),
            SimDuration::from_secs(2),
            7.0,
        );
        st.record(
            "h",
            mid(0),
            SimTime::from_secs(4),
            SimDuration::from_secs(2),
            9.0,
        );
        let rows = st.to_rows("h", mid(0));
        assert_eq!(rows, vec![(4.0, 7.0), (6.0, 9.0)]);
        assert!(st.to_rows("h", mid(9)).is_empty());
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut st = SeriesStore::new();
        for v in [1.0, 2.0] {
            st.record("a", mid(0), SimTime::ZERO, SimDuration::from_secs(2), v);
            st.record(
                "b",
                mid(0),
                SimTime::ZERO,
                SimDuration::from_secs(2),
                v * 10.0,
            );
        }
        let csv = st.to_csv(&[("a", mid(0), "alpha"), ("b", mid(0), "beta")]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,alpha,beta");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0.0,1.000,10.000"));
    }

    #[test]
    fn serde_round_trip() {
        let mut st = SeriesStore::new();
        st.record("h", mid(1), SimTime::ZERO, SimDuration::from_secs(2), 3.5);
        let json = serde_json::to_string(&st).unwrap();
        let back: SeriesStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("h", mid(1)).unwrap().values, vec![3.5]);
    }
}
