//! Fault-visible metrics.
//!
//! The paper's 518-metric catalog describes a *healthy* system; fault
//! injection needs observables the original instrumentation never had:
//! request error rate, retry counts, availability, and per-fault
//! attribution windows. Those live here, in a [`FaultMonitor`] sampled on
//! the same cadence as the [`crate::store::SeriesStore`] but kept outside
//! the pinned catalog so fault-free runs remain byte-identical to the
//! pre-fault testbed.
//!
//! At the end of a run the monitor condenses into a serializable
//! [`FaultSummary`] carried alongside the experiment result.

use cloudchar_simcore::stats::IntervalTally;
use serde::{Deserialize, Serialize};

/// One fault's attribution window: which injected fault was active when,
/// so report readers can line degraded samples up with their cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Short fault label (e.g. `domain-crash`).
    pub label: String,
    /// Window start, seconds since simulation start.
    pub start_s: f64,
    /// Window end, seconds since simulation start.
    pub end_s: f64,
}

impl FaultWindow {
    /// Whether a sample taken at `t_s` falls inside this window.
    pub fn contains(&self, t_s: f64) -> bool {
        (self.start_s..self.end_s).contains(&t_s)
    }
}

/// End-of-run fault observability record, serialized with the experiment
/// result. `Default` is the all-zero record of a fault-free run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Name of the fault plan that ran.
    pub plan_name: String,
    /// Fingerprint of the fault plan (for round-trip checks).
    pub plan_fingerprint: u64,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests that failed with a server-side error.
    pub errors: u64,
    /// Requests abandoned by their client timeout.
    pub timeouts: u64,
    /// Retry attempts issued by clients.
    pub retries: u64,
    /// Sessions that abandoned a page after repeated failures.
    pub abandons: u64,
    /// Per-sample-interval availability: completed / attempted, with
    /// idle intervals counting as fully available.
    pub availability: Vec<f64>,
    /// Per-sample-interval error rate: failures / attempted.
    pub error_rate: Vec<f64>,
    /// Per-sample-interval retry attempts.
    pub retries_per_interval: Vec<f64>,
    /// Attribution windows of the injected faults.
    pub windows: Vec<FaultWindow>,
}

impl FaultSummary {
    /// Mean of a per-interval series over sample indices `[lo, hi)`,
    /// clamped to the series length. Returns 1.0 for an empty range (no
    /// samples = nothing was unavailable).
    fn range_mean(series: &[f64], lo: usize, hi: usize) -> f64 {
        let hi = hi.min(series.len());
        if lo >= hi {
            return 1.0;
        }
        series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
    }

    /// Mean availability over sample indices `[lo, hi)`.
    pub fn availability_over(&self, lo: usize, hi: usize) -> f64 {
        Self::range_mean(&self.availability, lo, hi)
    }

    /// Overall availability across the whole run.
    pub fn overall_availability(&self) -> f64 {
        let attempted = self.ok + self.errors + self.timeouts;
        if attempted == 0 {
            1.0
        } else {
            self.ok as f64 / attempted as f64
        }
    }
}

/// Streaming collector of fault-visible metrics.
///
/// The workload layer records request outcomes as they happen; the
/// sampling loop calls [`FaultMonitor::sample`] once per monitor
/// interval, closing an availability/error-rate bucket. Each series
/// therefore has exactly as many points as the catalog series in the
/// [`crate::store::SeriesStore`].
#[derive(Debug, Default)]
pub struct FaultMonitor {
    ok: u64,
    errors: u64,
    timeouts: u64,
    retries: u64,
    abandons: u64,
    interval: IntervalTally,
    availability: Vec<f64>,
    error_rate: Vec<f64>,
    retries_per_interval: Vec<f64>,
    windows: Vec<FaultWindow>,
}

impl FaultMonitor {
    /// A fresh monitor with empty series.
    pub fn new() -> Self {
        FaultMonitor::default()
    }

    /// Record a successfully completed request.
    pub fn record_ok(&mut self) {
        self.ok += 1;
        self.interval.record_ok();
    }

    /// Record a request failed by a server-side error.
    pub fn record_error(&mut self) {
        self.errors += 1;
        self.interval.record_fail();
    }

    /// Record a request abandoned by its client-side timeout.
    pub fn record_timeout(&mut self) {
        self.timeouts += 1;
        self.interval.record_fail();
    }

    /// Record a client retry attempt.
    pub fn record_retry(&mut self) {
        self.retries += 1;
        self.interval.record_retry();
    }

    /// Record a session abandoning its page after repeated failures.
    pub fn record_abandon(&mut self) {
        self.abandons += 1;
    }

    /// Register a fault's attribution window.
    pub fn push_window(&mut self, label: &str, start_s: f64, end_s: f64) {
        self.windows.push(FaultWindow {
            label: label.to_string(),
            start_s,
            end_s,
        });
    }

    /// Close the current sample interval: availability is the fraction of
    /// attempts that succeeded (an idle interval counts as fully
    /// available), error rate its complement over attempts.
    pub fn sample(&mut self) {
        let (avail, err, retries) = self.interval.close();
        self.availability.push(avail);
        self.error_rate.push(err);
        self.retries_per_interval.push(retries as f64);
    }

    /// Number of closed sample intervals.
    pub fn samples(&self) -> usize {
        self.availability.len()
    }

    /// Condense into the serializable end-of-run record.
    pub fn summary(&self, plan_name: &str, plan_fingerprint: u64) -> FaultSummary {
        FaultSummary {
            plan_name: plan_name.to_string(),
            plan_fingerprint,
            ok: self.ok,
            errors: self.errors,
            timeouts: self.timeouts,
            retries: self.retries,
            abandons: self.abandons,
            availability: self.availability.clone(),
            error_rate: self.error_rate.clone(),
            retries_per_interval: self.retries_per_interval.clone(),
            windows: self.windows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_interval_is_fully_available() {
        let mut m = FaultMonitor::new();
        m.sample();
        assert_eq!(m.samples(), 1);
        let s = m.summary("p", 0);
        assert_eq!(s.availability, vec![1.0]);
        assert_eq!(s.error_rate, vec![0.0]);
    }

    #[test]
    fn availability_tracks_outcomes_per_interval() {
        let mut m = FaultMonitor::new();
        for _ in 0..3 {
            m.record_ok();
        }
        m.record_error();
        m.sample();
        m.record_ok();
        m.record_timeout();
        m.record_retry();
        m.sample();
        let s = m.summary("p", 42);
        assert_eq!(s.availability, vec![0.75, 0.5]);
        assert_eq!(s.error_rate, vec![0.25, 0.5]);
        assert_eq!(s.retries_per_interval, vec![0.0, 1.0]);
        assert_eq!((s.ok, s.errors, s.timeouts, s.retries), (4, 1, 1, 1));
        assert_eq!(s.plan_fingerprint, 42);
        let overall = s.overall_availability();
        assert!((overall - 4.0 / 6.0).abs() < 1e-12, "{overall}");
    }

    #[test]
    fn windows_and_range_means() {
        let mut m = FaultMonitor::new();
        m.push_window("disk-slow", 10.0, 20.0);
        m.record_error();
        m.sample(); // availability 0.0
        m.record_ok();
        m.sample(); // availability 1.0
        let s = m.summary("p", 0);
        assert_eq!(s.windows.len(), 1);
        assert!(s.windows[0].contains(15.0));
        assert!(!s.windows[0].contains(20.0));
        assert_eq!(s.availability_over(0, 1), 0.0);
        assert_eq!(s.availability_over(0, 2), 0.5);
        // Out-of-range queries degrade to "fully available".
        assert_eq!(s.availability_over(5, 9), 1.0);
    }

    #[test]
    fn default_summary_is_healthy() {
        let s = FaultSummary::default();
        assert_eq!(s.overall_availability(), 1.0);
        assert!(s.windows.is_empty());
    }

    #[test]
    fn abandons_count() {
        let mut m = FaultMonitor::new();
        m.record_abandon();
        m.record_abandon();
        assert_eq!(m.summary("p", 0).abandons, 2);
    }
}
