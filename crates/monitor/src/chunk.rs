//! Chunked, compressed, persistent time-series trace store.
//!
//! At fleet scale (518 metrics × 100+ hosts × long runs) the in-memory
//! [`SeriesStore`](crate::store::SeriesStore) stops fitting: every
//! sample of every series stays resident until analysis runs. This
//! module spills the trace to disk as it is produced, so resident
//! memory is `O(hosts × metrics × chunk_size)` instead of
//! `O(run length)`:
//!
//! * samples accumulate per `(host, metric)` in a fixed-capacity
//!   open chunk using **delta-of-delta timestamp encoding** and
//!   **Gorilla-style XOR float compression** (regular 2 s cadence costs
//!   1 timestamp bit per sample; repeated/slow-moving values cost 1–2
//!   control bits plus a narrow mantissa window);
//! * a full chunk is **sealed**: its bit stream is length- and
//!   checksum-framed and appended to the run file, and the encoder
//!   state is reset in place (the bit buffer keeps its allocation, so
//!   the steady-state sampling tick performs zero heap allocation);
//! * [`ChunkWriter::finish`] writes a footer index (interned host
//!   labels + one entry per sealed chunk) and a fixed-size trailer, so
//!   a reader can locate any series' chunks without scanning the file;
//! * [`ChunkReader`] memory-maps nothing and materializes nothing: a
//!   [`SeriesCursor`] streams one decoded chunk at a time through a
//!   reused buffer, which is what bounded-memory (out-of-core)
//!   analysis consumes.
//!
//! A file without a valid trailer (e.g. a run that crashed before
//! `finish`, or a truncated copy) is rejected at open; a chunk whose
//! payload bytes do not match the framed checksum is rejected at read.
//! The in-memory store remains the equivalence oracle:
//! [`write_store`]/[`read_store`] convert losslessly in both
//! directions, and the codec is bit-exact for every finite `f64`.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! "CCTRACE1"                                      file header magic
//! repeat per sealed chunk:
//!   u32 payload_len | u64 fnv64(payload) | payload
//!   payload = u32 host | u16 metric | u32 seq | u32 count | bitstream
//! footer:
//!   u32 n_hosts | per host: u16 len, label bytes
//!   u32 n_chunks | per chunk: u32 host | u16 metric | u32 seq |
//!     u32 count | u64 first_t | u64 interval | u64 offset |
//!     u32 payload_len | u64 checksum
//! trailer: u64 footer_offset | u64 fnv64(footer) | "CCTRIDX1"
//! ```

use crate::metric::MetricId;
use crate::store::{HostLabel, SampleRow, SeriesStore};
use cloudchar_simcore::bits::{unzigzag, zigzag, BitReader, BitWriter};
use cloudchar_simcore::{SimDuration, SimTime};
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default samples per chunk: the paper's 20-minute runs (600 samples)
/// seal 2–3 chunks per series; week-long runs stay bounded.
pub const CHUNK_SAMPLES: usize = 256;

const MAGIC_HEADER: &[u8; 8] = b"CCTRACE1";
const MAGIC_TRAILER: &[u8; 8] = b"CCTRIDX1";
const TRAILER_LEN: u64 = 24;
const PAYLOAD_HEADER_LEN: usize = 14;

/// FNV-1a over a byte slice — the framing checksum for chunk payloads
/// and the footer.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Per-series encoder state. Lives for the whole run and is reset in
/// place at each seal, so steady-state appends never allocate.
#[derive(Debug, Default)]
struct OpenChunk {
    /// Sequence number of the chunk currently being filled.
    seq: u32,
    /// Samples in the open chunk.
    count: u32,
    /// Timestamp (ns) of the open chunk's first sample.
    first_t: u64,
    /// Sampling interval (ns), fixed at series creation.
    interval: u64,
    /// Timestamp (ns) the next appended sample will carry.
    t: u64,
    /// Timestamp of the last appended sample.
    prev_t: u64,
    /// Last timestamp delta (delta-of-delta chain).
    prev_delta: i64,
    /// Bits of the last value (XOR chain).
    prev_bits: u64,
    /// Current XOR window: leading zero count.
    prev_lead: u32,
    /// Current XOR window: trailing zero count.
    prev_trail: u32,
    /// Whether an XOR window has been established in this chunk.
    window_valid: bool,
    /// The chunk's encoded bit stream.
    bits: BitWriter,
}

impl OpenChunk {
    fn append(&mut self, value: f64) {
        let t = self.t;
        let vbits = value.to_bits();
        if self.count == 0 {
            self.first_t = t;
            self.prev_delta = 0;
            self.window_valid = false;
            self.bits.write_bits(t, 64);
            self.bits.write_bits(vbits, 64);
        } else {
            let delta = t.wrapping_sub(self.prev_t) as i64;
            let dod = delta.wrapping_sub(self.prev_delta);
            if dod == 0 {
                self.bits.write_bit(false);
            } else {
                let z = zigzag(dod);
                if z < (1 << 7) {
                    self.bits.write_bits(0b10, 2);
                    self.bits.write_bits(z, 7);
                } else if z < (1 << 9) {
                    self.bits.write_bits(0b110, 3);
                    self.bits.write_bits(z, 9);
                } else if z < (1 << 12) {
                    self.bits.write_bits(0b1110, 4);
                    self.bits.write_bits(z, 12);
                } else {
                    self.bits.write_bits(0b1111, 4);
                    self.bits.write_bits(z, 64);
                }
            }
            self.prev_delta = delta;
            let x = vbits ^ self.prev_bits;
            if x == 0 {
                self.bits.write_bit(false);
            } else {
                let lead = x.leading_zeros().min(31);
                let trail = x.trailing_zeros();
                if self.window_valid && lead >= self.prev_lead && trail >= self.prev_trail {
                    let meaningful = 64 - self.prev_lead - self.prev_trail;
                    self.bits.write_bits(0b10, 2);
                    self.bits.write_bits(x >> self.prev_trail, meaningful);
                } else {
                    let meaningful = 64 - lead - trail;
                    self.bits.write_bits(0b11, 2);
                    self.bits.write_bits(lead as u64, 5);
                    self.bits.write_bits((meaningful - 1) as u64, 6);
                    self.bits.write_bits(x >> trail, meaningful);
                    self.prev_lead = lead;
                    self.prev_trail = trail;
                    self.window_valid = true;
                }
            }
        }
        self.prev_bits = vbits;
        self.prev_t = t;
        self.t = t.saturating_add(self.interval);
        self.count = self.count.saturating_add(1);
    }

    /// Reset for the next chunk, keeping allocations and the timestamp
    /// chain (`t` already points at the next sample).
    fn reset_sealed(&mut self) {
        self.seq = self.seq.saturating_add(1);
        self.count = 0;
        self.bits.clear();
    }
}

/// One sealed chunk's entry in the footer index.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    host: u32,
    metric: u16,
    seq: u32,
    count: u32,
    first_t: u64,
    interval: u64,
    offset: u64,
    payload_len: u32,
    checksum: u64,
}

/// Streaming writer: appends samples on the sampling tick, spills
/// sealed chunks to disk, and writes the footer index on
/// [`finish`](ChunkWriter::finish).
#[derive(Debug)]
pub struct ChunkWriter {
    file: BufWriter<File>,
    /// Bytes written so far (next chunk's offset).
    pos: u64,
    /// Labels are stored with this prefix applied (fleet pods write
    /// `"podNN/"`-prefixed hosts so merged reads need no renaming).
    prefix: String,
    hosts: Vec<HostLabel>,
    open: Vec<Vec<Option<OpenChunk>>>,
    index: Vec<IndexEntry>,
    chunk_samples: usize,
    scratch: Vec<u8>,
    finished: bool,
}

impl ChunkWriter {
    /// Create a trace file at `path` (truncating any existing file).
    /// Host labels recorded through this writer get `label_prefix`
    /// prepended; chunks seal every `chunk_samples` samples.
    pub fn create(path: &Path, label_prefix: &str, chunk_samples: usize) -> io::Result<Self> {
        assert!(chunk_samples >= 2, "chunk_samples must be at least 2");
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(MAGIC_HEADER)?;
        Ok(ChunkWriter {
            file,
            pos: MAGIC_HEADER.len() as u64,
            prefix: label_prefix.to_string(),
            hosts: Vec::new(),
            open: Vec::new(),
            index: Vec::new(),
            chunk_samples,
            scratch: Vec::new(),
            finished: false,
        })
    }

    /// Create with the default [`CHUNK_SAMPLES`] capacity and no prefix.
    pub fn create_default(path: &Path) -> io::Result<Self> {
        ChunkWriter::create(path, "", CHUNK_SAMPLES)
    }

    /// Intern a host label (prefix applied), returning its dense id.
    /// The scan compares against `prefix + host` without allocating.
    pub fn host_id(&mut self, host: &str) -> u32 {
        let total = self.prefix.len().saturating_add(host.len());
        if let Some(i) = self.hosts.iter().position(|h| {
            h.len() == total && h.starts_with(self.prefix.as_str()) && h.ends_with(host)
        }) {
            return i as u32;
        }
        self.hosts.push(format!("{}{host}", self.prefix));
        self.open
            .push(Vec::with_capacity(crate::catalog::TOTAL_METRICS));
        (self.hosts.len() - 1) as u32
    }

    /// Sum of encoder-buffer capacities: the writer's resident series
    /// memory (the on-disk spill is what keeps this bounded).
    pub fn resident_bytes(&self) -> usize {
        let open: usize = self
            .open
            .iter()
            .flatten()
            .flatten()
            .map(|c| c.bits.capacity_bytes())
            .sum();
        open + self.scratch.capacity()
    }

    /// Append one sample to `(host, metric)`, sealing the chunk to disk
    /// when it reaches capacity. `start`/`interval` time the series on
    /// first touch; later samples advance by `interval`.
    pub fn record_value(
        &mut self,
        host: u32,
        metric: MetricId,
        start: SimTime,
        interval: SimDuration,
        value: f64,
    ) -> io::Result<()> {
        let block = &mut self.open[host as usize];
        let idx = metric.0 as usize;
        if idx >= block.len() {
            block.resize_with(idx + 1, || None);
        }
        if block[idx].is_none() {
            let mut c = OpenChunk::default();
            c.t = start.as_nanos();
            c.interval = interval.as_nanos();
            block[idx] = Some(c);
        }
        let full = {
            let Some(chunk) = block[idx].as_mut() else {
                return Err(bad("open chunk vanished".to_string()));
            };
            chunk.append(value);
            chunk.count as usize >= self.chunk_samples
        };
        if full {
            self.seal(host, metric)?;
        }
        Ok(())
    }

    /// Commit one host's whole sampling row — the tick-path mirror of
    /// [`SeriesStore::record_row`].
    pub fn record_row(
        &mut self,
        host: u32,
        start: SimTime,
        interval: SimDuration,
        row: &SampleRow,
    ) -> io::Result<()> {
        for &(metric, value) in row.entries() {
            self.record_value(host, metric, start, interval, value)?;
        }
        Ok(())
    }

    fn seal(&mut self, host: u32, metric: MetricId) -> io::Result<()> {
        let Some(chunk) = self.open[host as usize]
            .get_mut(metric.0 as usize)
            .and_then(Option::as_mut)
        else {
            return Ok(());
        };
        if chunk.count == 0 {
            return Ok(());
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(&host.to_le_bytes());
        self.scratch.extend_from_slice(&metric.0.to_le_bytes());
        self.scratch.extend_from_slice(&chunk.seq.to_le_bytes());
        self.scratch.extend_from_slice(&chunk.count.to_le_bytes());
        self.scratch.extend_from_slice(chunk.bits.as_bytes());
        let checksum = fnv64(&self.scratch);
        let payload_len = self.scratch.len() as u32;
        self.file.write_all(&payload_len.to_le_bytes())?;
        self.file.write_all(&checksum.to_le_bytes())?;
        self.file.write_all(&self.scratch)?;
        self.index.push(IndexEntry {
            host,
            metric: metric.0,
            seq: chunk.seq,
            count: chunk.count,
            first_t: chunk.first_t,
            interval: chunk.interval,
            offset: self.pos,
            payload_len,
            checksum,
        });
        self.pos = self
            .pos
            .saturating_add(12)
            .saturating_add(payload_len as u64);
        chunk.reset_sealed();
        Ok(())
    }

    /// Seal every open chunk, write the footer index and trailer, and
    /// flush. Returns the final file size in bytes. The writer is
    /// unusable afterwards.
    pub fn finish(&mut self) -> io::Result<u64> {
        if self.finished {
            return Err(bad("ChunkWriter::finish called twice".to_string()));
        }
        for hi in 0..self.open.len() {
            for mi in 0..self.open[hi].len() {
                if self.open[hi][mi].as_ref().is_some_and(|c| c.count > 0) {
                    self.seal(hi as u32, MetricId(mi as u16))?;
                }
            }
        }
        self.finished = true;
        let mut footer = Vec::new();
        footer.extend_from_slice(&(self.hosts.len() as u32).to_le_bytes());
        for h in &self.hosts {
            footer.extend_from_slice(&(h.len() as u16).to_le_bytes());
            footer.extend_from_slice(h.as_bytes());
        }
        footer.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            footer.extend_from_slice(&e.host.to_le_bytes());
            footer.extend_from_slice(&e.metric.to_le_bytes());
            footer.extend_from_slice(&e.seq.to_le_bytes());
            footer.extend_from_slice(&e.count.to_le_bytes());
            footer.extend_from_slice(&e.first_t.to_le_bytes());
            footer.extend_from_slice(&e.interval.to_le_bytes());
            footer.extend_from_slice(&e.offset.to_le_bytes());
            footer.extend_from_slice(&e.payload_len.to_le_bytes());
            footer.extend_from_slice(&e.checksum.to_le_bytes());
        }
        let footer_offset = self.pos;
        self.file.write_all(&footer)?;
        self.file.write_all(&footer_offset.to_le_bytes())?;
        self.file.write_all(&fnv64(&footer).to_le_bytes())?;
        self.file.write_all(MAGIC_TRAILER)?;
        self.file.flush()?;
        Ok(footer_offset
            .saturating_add(footer.len() as u64)
            .saturating_add(TRAILER_LEN))
    }
}

struct ByteCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("trace footer truncated".to_string()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> io::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Bounded-memory reader over a finished trace file: the footer index
/// lives in memory, sample data stays on disk until a [`SeriesCursor`]
/// streams it chunk by chunk.
#[derive(Debug)]
pub struct ChunkReader {
    path: PathBuf,
    hosts: Vec<HostLabel>,
    index: Vec<IndexEntry>,
}

impl ChunkReader {
    /// Open and validate a trace file: header magic, trailer magic, and
    /// footer checksum must all hold — a truncated or unfinished file
    /// is rejected here rather than silently decoded.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < MAGIC_HEADER.len() as u64 + TRAILER_LEN {
            return Err(bad(format!(
                "{}: too short to be a trace file ({len} bytes)",
                path.display()
            )));
        }
        let mut head = [0u8; 8];
        file.read_exact(&mut head)?;
        if &head != MAGIC_HEADER {
            return Err(bad(format!("{}: not a trace file", path.display())));
        }
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact(&mut trailer)?;
        if &trailer[16..24] != MAGIC_TRAILER {
            return Err(bad(format!(
                "{}: missing trailer magic — file is truncated or the run never finished",
                path.display()
            )));
        }
        let mut c = ByteCursor {
            buf: &trailer,
            pos: 0,
        };
        let footer_offset = c.u64()?;
        let footer_checksum = c.u64()?;
        let footer_end = len.saturating_sub(TRAILER_LEN);
        if footer_offset >= footer_end {
            return Err(bad(format!(
                "{}: footer offset {footer_offset} out of bounds",
                path.display()
            )));
        }
        file.seek(SeekFrom::Start(footer_offset))?;
        let mut footer = vec![0u8; (footer_end - footer_offset) as usize];
        file.read_exact(&mut footer)?;
        if fnv64(&footer) != footer_checksum {
            return Err(bad(format!(
                "{}: footer checksum mismatch — file is corrupt or truncated",
                path.display()
            )));
        }
        let mut c = ByteCursor {
            buf: &footer,
            pos: 0,
        };
        let n_hosts = c.u32()? as usize;
        let mut hosts = Vec::with_capacity(n_hosts);
        for _ in 0..n_hosts {
            let n = c.u16()? as usize;
            let raw = c.take(n)?;
            let label = std::str::from_utf8(raw)
                .map_err(|_| bad("non-UTF-8 host label in footer".to_string()))?;
            hosts.push(label.to_string());
        }
        let n_chunks = c.u32()? as usize;
        let mut index = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            index.push(IndexEntry {
                host: c.u32()?,
                metric: c.u16()?,
                seq: c.u32()?,
                count: c.u32()?,
                first_t: c.u64()?,
                interval: c.u64()?,
                offset: c.u64()?,
                payload_len: c.u32()?,
                checksum: c.u64()?,
            });
        }
        for e in &index {
            if e.host as usize >= hosts.len() {
                return Err(bad(format!(
                    "{}: index entry references unknown host {}",
                    path.display(),
                    e.host
                )));
            }
        }
        Ok(ChunkReader {
            path: path.to_path_buf(),
            hosts,
            index,
        })
    }

    /// Interned host labels, in first-touch order.
    pub fn hosts(&self) -> &[HostLabel] {
        &self.hosts
    }

    fn find_host(&self, host: &str) -> Option<u32> {
        self.hosts.iter().position(|h| h == host).map(|i| i as u32)
    }

    /// Whether any chunk exists for `(host, metric)`.
    pub fn has_series(&self, host: &str, metric: MetricId) -> bool {
        let Some(h) = self.find_host(host) else {
            return false;
        };
        self.index
            .iter()
            .any(|e| e.host == h && e.metric == metric.0)
    }

    /// Total samples stored for `(host, metric)`.
    pub fn sample_count(&self, host: &str, metric: MetricId) -> u64 {
        let Some(h) = self.find_host(host) else {
            return 0;
        };
        self.index
            .iter()
            .filter(|e| e.host == h && e.metric == metric.0)
            .map(|e| e.count as u64)
            .sum()
    }

    /// Start time and sampling interval of `(host, metric)`, from its
    /// first chunk.
    pub fn timing(&self, host: &str, metric: MetricId) -> Option<(SimTime, SimDuration)> {
        let h = self.find_host(host)?;
        self.index
            .iter()
            .filter(|e| e.host == h && e.metric == metric.0)
            .min_by_key(|e| e.seq)
            .map(|e| {
                (
                    SimTime::from_nanos(e.first_t),
                    SimDuration::from_nanos(e.interval),
                )
            })
    }

    /// Every `(host, metric)` series present, sorted by
    /// `(host label, metric id)` — the iteration order of
    /// [`SeriesStore::iter`].
    pub fn series_ids(&self) -> Vec<(HostLabel, MetricId)> {
        let mut ids: Vec<(HostLabel, MetricId)> = Vec::new();
        for e in &self.index {
            let key = (self.hosts[e.host as usize].clone(), MetricId(e.metric));
            if !ids.contains(&key) {
                ids.push(key);
            }
        }
        ids.sort();
        ids
    }

    /// Open a streaming cursor over one series. The cursor owns its own
    /// file handle, so cursors can run in parallel pool workers.
    pub fn cursor(&self, host: &str, metric: MetricId) -> io::Result<SeriesCursor> {
        let h = self
            .find_host(host)
            .ok_or_else(|| bad(format!("host {host:?} not present in trace")))?;
        let mut entries: Vec<IndexEntry> = self
            .index
            .iter()
            .filter(|e| e.host == h && e.metric == metric.0)
            .cloned()
            .collect();
        entries.sort_by_key(|e| e.seq);
        for (i, e) in entries.iter().enumerate() {
            if e.seq != i as u32 {
                return Err(bad(format!(
                    "{}: {host}/{} chunk sequence has a gap at {i}",
                    self.path.display(),
                    metric.0
                )));
            }
        }
        Ok(SeriesCursor {
            file: File::open(&self.path)?,
            path: self.path.clone(),
            entries,
            next: 0,
            payload: Vec::new(),
            values: Vec::new(),
        })
    }
}

/// Streaming cursor over one series' chunks: each call to
/// [`next_chunk`](SeriesCursor::next_chunk) decodes one chunk into a
/// reused buffer, so peak resident series memory is one chunk.
#[derive(Debug)]
pub struct SeriesCursor {
    file: File,
    path: PathBuf,
    entries: Vec<IndexEntry>,
    next: usize,
    payload: Vec<u8>,
    values: Vec<f64>,
}

impl SeriesCursor {
    /// Total samples across all chunks of this series.
    pub fn total_samples(&self) -> u64 {
        self.entries.iter().map(|e| e.count as u64).sum()
    }

    /// Start time and sampling interval (from the first chunk).
    pub fn timing(&self) -> Option<(SimTime, SimDuration)> {
        self.entries.first().map(|e| {
            (
                SimTime::from_nanos(e.first_t),
                SimDuration::from_nanos(e.interval),
            )
        })
    }

    /// Rewind to the first chunk.
    pub fn rewind(&mut self) {
        self.next = 0;
    }

    /// Decode the next chunk, verifying its framed checksum. Returns
    /// `None` after the last chunk. The returned slice is valid until
    /// the next call.
    pub fn next_chunk(&mut self) -> io::Result<Option<&[f64]>> {
        let Some(e) = self.entries.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        self.file.seek(SeekFrom::Start(e.offset))?;
        let mut frame = [0u8; 12];
        self.file.read_exact(&mut frame)?;
        let payload_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let checksum = u64::from_le_bytes([
            frame[4], frame[5], frame[6], frame[7], frame[8], frame[9], frame[10], frame[11],
        ]);
        if payload_len != e.payload_len || checksum != e.checksum {
            return Err(bad(format!(
                "{}: chunk frame at offset {} disagrees with the footer index",
                self.path.display(),
                e.offset
            )));
        }
        self.payload.resize(payload_len as usize, 0);
        self.file.read_exact(&mut self.payload)?;
        if fnv64(&self.payload) != checksum {
            return Err(bad(format!(
                "{}: chunk checksum mismatch at offset {} — payload is corrupt",
                self.path.display(),
                e.offset
            )));
        }
        if self.payload.len() < PAYLOAD_HEADER_LEN {
            return Err(bad("chunk payload shorter than its header".to_string()));
        }
        let mut c = ByteCursor {
            buf: &self.payload,
            pos: 0,
        };
        let (host, metric, seq, count) = (c.u32()?, c.u16()?, c.u32()?, c.u32()?);
        if host != e.host || metric != e.metric || seq != e.seq || count != e.count {
            return Err(bad(format!(
                "{}: chunk payload header disagrees with the footer index at offset {}",
                self.path.display(),
                e.offset
            )));
        }
        decode_bitstream(&self.payload[PAYLOAD_HEADER_LEN..], count, &mut self.values)?;
        Ok(Some(&self.values))
    }
}

/// Decode `count` samples from a chunk bit stream into `out` (cleared
/// first; allocation reused across chunks).
fn decode_bitstream(stream: &[u8], count: u32, out: &mut Vec<f64>) -> io::Result<()> {
    out.clear();
    let mut r = BitReader::new(stream);
    let short = || bad("chunk bit stream truncated".to_string());
    if count == 0 {
        return Ok(());
    }
    let mut prev_t = r.read_bits(64).ok_or_else(short)?;
    let mut prev_bits = r.read_bits(64).ok_or_else(short)?;
    out.push(f64::from_bits(prev_bits));
    let mut prev_delta = 0i64;
    let mut lead = 0u32;
    let mut trail = 0u32;
    let mut window_valid = false;
    for _ in 1..count {
        // Timestamp: delta-of-delta buckets.
        let dod = if !r.read_bit().ok_or_else(short)? {
            0
        } else if !r.read_bit().ok_or_else(short)? {
            unzigzag(r.read_bits(7).ok_or_else(short)?)
        } else if !r.read_bit().ok_or_else(short)? {
            unzigzag(r.read_bits(9).ok_or_else(short)?)
        } else if !r.read_bit().ok_or_else(short)? {
            unzigzag(r.read_bits(12).ok_or_else(short)?)
        } else {
            unzigzag(r.read_bits(64).ok_or_else(short)?)
        };
        prev_delta = prev_delta.wrapping_add(dod);
        prev_t = prev_t.wrapping_add(prev_delta as u64);
        // Value: XOR against the previous value's bits.
        if !r.read_bit().ok_or_else(short)? {
            out.push(f64::from_bits(prev_bits));
            continue;
        }
        let x = if !r.read_bit().ok_or_else(short)? {
            if !window_valid {
                return Err(bad(
                    "chunk reuses an XOR window before establishing one".to_string()
                ));
            }
            let meaningful = 64 - lead - trail;
            r.read_bits(meaningful).ok_or_else(short)? << trail
        } else {
            lead = r.read_bits(5).ok_or_else(short)? as u32;
            let meaningful = r.read_bits(6).ok_or_else(short)? as u32 + 1;
            if lead + meaningful > 64 {
                return Err(bad("chunk XOR window exceeds 64 bits".to_string()));
            }
            trail = 64 - lead - meaningful;
            window_valid = true;
            r.read_bits(meaningful).ok_or_else(short)? << trail
        };
        prev_bits ^= x;
        out.push(f64::from_bits(prev_bits));
    }
    let _ = prev_t;
    Ok(())
}

/// Oracle conversion: spill an in-memory store to a trace file.
/// Returns the file size in bytes.
pub fn write_store(store: &SeriesStore, path: &Path, chunk_samples: usize) -> io::Result<u64> {
    let mut w = ChunkWriter::create(path, "", chunk_samples)?;
    for (host, metric, series) in store.iter() {
        let h = w.host_id(host);
        for &v in &series.values {
            w.record_value(h, metric, series.start, series.interval, v)?;
        }
    }
    w.finish()
}

/// Oracle conversion: materialize a trace file back into an in-memory
/// store. Only for small runs and equivalence tests — streaming
/// consumers use [`ChunkReader::cursor`] instead.
pub fn read_store(path: &Path) -> io::Result<SeriesStore> {
    let reader = ChunkReader::open(path)?;
    let mut store = SeriesStore::new();
    for (host, metric) in reader.series_ids() {
        let mut cur = reader.cursor(&host, metric)?;
        let Some((start, interval)) = cur.timing() else {
            continue;
        };
        let id = store.host_id(&host);
        while let Some(values) = cur.next_chunk()? {
            for i in 0..values.len() {
                store.record_by_id(id, metric, start, interval, values[i]);
            }
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cloudchar-chunk-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn t0() -> SimTime {
        SimTime::from_secs(2)
    }

    fn dt() -> SimDuration {
        SimDuration::from_secs(2)
    }

    #[test]
    fn round_trips_across_chunk_boundaries() {
        let path = tmp("roundtrip.cctr");
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 120.0 + (i % 7) as f64)
            .collect();
        let mut w = ChunkWriter::create(&path, "", 256).unwrap();
        let h = w.host_id("web-vm");
        for &v in &values {
            w.record_value(h, MetricId(3), t0(), dt(), v).unwrap();
        }
        let size = w.finish().unwrap();
        assert_eq!(size, fs::metadata(&path).unwrap().len());

        let r = ChunkReader::open(&path).unwrap();
        assert_eq!(r.hosts(), ["web-vm".to_string()]);
        assert!(r.has_series("web-vm", MetricId(3)));
        assert_eq!(r.sample_count("web-vm", MetricId(3)), 1000);
        assert_eq!(r.timing("web-vm", MetricId(3)), Some((t0(), dt())));
        let mut cur = r.cursor("web-vm", MetricId(3)).unwrap();
        let mut got = Vec::new();
        while let Some(chunk) = cur.next_chunk().unwrap() {
            assert!(chunk.len() <= 256);
            got.extend_from_slice(chunk);
        }
        assert_eq!(got.len(), values.len());
        for (a, b) in got.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn constant_series_compresses_hard() {
        let path = tmp("constant.cctr");
        let mut w = ChunkWriter::create(&path, "", 256).unwrap();
        let h = w.host_id("h");
        for _ in 0..4096 {
            w.record_value(h, MetricId(0), t0(), dt(), 42.5).unwrap();
        }
        let size = w.finish().unwrap();
        // 4096 samples × 8 bytes raw = 32 KiB; constant series spend
        // ~2 bits/sample, so the whole file is ~1.3 KiB.
        assert!(
            size * 8 < 4096 * 8,
            "constant series should beat 1 byte/sample, got {size} bytes"
        );
        let store = read_store(&path).unwrap();
        let s = store.get("h", MetricId(0)).unwrap();
        assert_eq!(s.len(), 4096);
        assert!(s.values.iter().all(|&v| v == 42.5));
    }

    #[test]
    fn store_oracle_round_trip_is_exact() {
        let path = tmp("oracle.cctr");
        let mut store = SeriesStore::new();
        for host in ["web-vm", "mysql-vm", "dom0"] {
            for m in [0u16, 7, 200] {
                for i in 0..300 {
                    let v = match m {
                        0 => (i as f64).sqrt() * 3.25,
                        7 => {
                            if i % 2 == 0 {
                                0.0
                            } else {
                                97.5
                            }
                        }
                        _ => 1e9 + i as f64,
                    };
                    store.record(host, MetricId(m), t0(), dt(), v);
                }
            }
        }
        write_store(&store, &path, 128).unwrap();
        let back = read_store(&path).unwrap();
        let a: Vec<_> = store
            .iter()
            .map(|(h, m, s)| (h.to_string(), m, s.clone()))
            .collect();
        let b: Vec<_> = back
            .iter()
            .map(|(h, m, s)| (h.to_string(), m, s.clone()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("truncated.cctr");
        let mut w = ChunkWriter::create(&path, "", 16).unwrap();
        let h = w.host_id("h");
        for i in 0..100 {
            w.record_value(h, MetricId(1), t0(), dt(), i as f64)
                .unwrap();
        }
        w.finish().unwrap();
        let full = fs::read(&path).unwrap();
        // Chop the trailer (and a bit more) off: open must fail loudly.
        fs::write(&path, &full[..full.len() - 30]).unwrap();
        let err = ChunkReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("checksum"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let path = tmp("unfinished.cctr");
        let mut w = ChunkWriter::create(&path, "", 4).unwrap();
        let h = w.host_id("h");
        for i in 0..10 {
            w.record_value(h, MetricId(1), t0(), dt(), i as f64)
                .unwrap();
        }
        drop(w); // no finish(): sealed chunks on disk, no trailer
        let err = ChunkReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_chunk_payload_is_reported() {
        let path = tmp("corrupt.cctr");
        let mut w = ChunkWriter::create(&path, "", 16).unwrap();
        let h = w.host_id("h");
        for i in 0..64 {
            w.record_value(h, MetricId(1), t0(), dt(), (i * i) as f64)
                .unwrap();
        }
        w.finish().unwrap();
        // Flip one byte inside the first chunk's payload (after the
        // 8-byte header magic and 12-byte frame).
        let mut bytes = fs::read(&path).unwrap();
        bytes[8 + 12 + PAYLOAD_HEADER_LEN + 3] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let r = ChunkReader::open(&path).unwrap();
        let mut cur = r.cursor("h", MetricId(1)).unwrap();
        let err = loop {
            match cur.next_chunk() {
                Err(e) => break e,
                Ok(None) => panic!("corruption went undetected"),
                Ok(Some(_)) => {}
            }
        };
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn prefixed_labels_and_multiple_series_interleave() {
        let path = tmp("prefixed.cctr");
        let mut w = ChunkWriter::create(&path, "pod03/", 8).unwrap();
        let a = w.host_id("web-vm");
        let b = w.host_id("dom0");
        assert_eq!(w.host_id("web-vm"), a);
        for i in 0..20 {
            w.record_value(a, MetricId(0), t0(), dt(), i as f64)
                .unwrap();
            w.record_value(b, MetricId(5), t0(), dt(), -(i as f64))
                .unwrap();
        }
        w.finish().unwrap();
        let store = read_store(&path).unwrap();
        assert_eq!(store.hosts(), vec!["pod03/dom0", "pod03/web-vm"]);
        assert_eq!(store.get("pod03/web-vm", MetricId(0)).unwrap().len(), 20);
        assert_eq!(store.get("pod03/dom0", MetricId(5)).unwrap().len(), 20);
    }

    #[test]
    fn writer_resident_memory_is_bounded_by_open_chunks() {
        let path = tmp("resident.cctr");
        let mut w = ChunkWriter::create(&path, "", 64).unwrap();
        let h = w.host_id("h");
        for i in 0..64 {
            w.record_value(h, MetricId(0), t0(), dt(), (i as f64).cos())
                .unwrap();
        }
        let after_one_chunk = w.resident_bytes();
        for i in 0..64 * 40 {
            w.record_value(h, MetricId(0), t0(), dt(), (i as f64).cos())
                .unwrap();
        }
        // 40 more sealed chunks later, the encoder buffers have not
        // grown: memory is O(open chunks), not O(run length).
        assert!(
            w.resident_bytes() <= after_one_chunk.max(1) * 2,
            "resident grew from {after_one_chunk} to {}",
            w.resident_bytes()
        );
        w.finish().unwrap();
    }
}
