//! Property-based tests for the monitoring substrate.

use cloudchar_monitor::{
    catalog, synthesize_perf, synthesize_sysstat, RawHostSample, SampleRow, SeriesStore, Source,
};
use cloudchar_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_raw() -> impl Strategy<Value = RawHostSample> {
    (
        (0.0f64..1e10, 1.0f64..1e11, 0.0f64..1.0),
        (1.0f64..1e8, 0.0f64..1e8, 0.0f64..1e8),
        (0.0f64..1e8, 0.0f64..1e8, 0.0f64..1e4, 0.0f64..1e4),
        (0.0f64..1e8, 0.0f64..1e8, 0.0f64..1e5, 0.0f64..1e5),
        (0.0f64..1e5, 0.0f64..1e5, 1u32..9),
    )
        .prop_map(
            |(
                (cpu_cycles, cap, user_frac),
                (mem_total_kb, mem_used_raw, mem_cached_raw),
                (disk_r, disk_w, reads, writes),
                (net_rx, net_tx, rx_p, tx_p),
                (cswch, intr, cores),
            )| {
                RawHostSample {
                    dt_s: 2.0,
                    cpu_cycles,
                    cpu_capacity_cycles: cap,
                    user_frac,
                    steal_frac: 0.1,
                    iowait_frac: 0.05,
                    mem_total_kb,
                    mem_used_kb: mem_used_raw.min(mem_total_kb),
                    mem_cached_kb: mem_cached_raw.min(mem_total_kb),
                    mem_dirty_kb: 0.0,
                    disk_read_bytes: disk_r,
                    disk_write_bytes: disk_w,
                    disk_reads: reads,
                    disk_writes: writes,
                    disk_busy_s: 0.5,
                    net_rx_bytes: net_rx,
                    net_tx_bytes: net_tx,
                    net_rx_pkts: rx_p,
                    net_tx_pkts: tx_p,
                    cswch,
                    intr,
                    forks: 1.0,
                    page_faults: 100.0,
                    runq: 2.0,
                    nproc: 100.0,
                    blocked: 1.0,
                    tcp_active: 10.0,
                    tcp_sockets: 50.0,
                    cores,
                    core_hz: 2.8e9,
                }
            },
        )
}

proptest! {
    /// Any raw sample synthesizes complete, finite, unique metric
    /// vectors for all three sources.
    #[test]
    fn synthesis_total_and_finite(raw in arb_raw()) {
        for source in [Source::HypervisorSysstat, Source::VmSysstat] {
            let v = synthesize_sysstat(&raw, source);
            prop_assert_eq!(v.len(), 182);
            let mut ids: Vec<_> = v.iter().map(|(id, _)| *id).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), 182);
            for (id, x) in &v {
                prop_assert!(x.is_finite(), "{:?} = {x}", catalog().def(*id).name);
            }
        }
        let p = synthesize_perf(&raw);
        prop_assert_eq!(p.len(), 154);
        prop_assert!(p.iter().all(|(_, x)| x.is_finite() && *x >= 0.0));
    }

    /// CPU percentages are bounded and sum to ≤ 100 + ε.
    #[test]
    fn cpu_percentages_bounded(raw in arb_raw()) {
        let v = synthesize_sysstat(&raw, Source::VmSysstat);
        let c = catalog();
        let get = |name: &str| {
            let id = c.find(name, Source::VmSysstat).unwrap();
            v.iter().find(|(i, _)| *i == id).unwrap().1
        };
        for name in ["%user", "%system", "%idle", "%steal", "%iowait"] {
            let x = get(name);
            prop_assert!((0.0..=100.0 + 1e-9).contains(&x), "{name} = {x}");
        }
        let total = get("%user") + get("%system") + get("%idle") + get("%steal") + get("%iowait");
        prop_assert!(total <= 100.0 + 1e-6, "sum {total}");
    }

    /// Figure metrics are exact transcriptions of the raw sample.
    #[test]
    fn figure_metrics_exact(raw in arb_raw()) {
        let v = synthesize_sysstat(&raw, Source::HypervisorSysstat);
        let c = catalog();
        let get = |name: &str| {
            let id = c.find(name, Source::HypervisorSysstat).unwrap();
            v.iter().find(|(i, _)| *i == id).unwrap().1
        };
        prop_assert!((get("kbmemused") - raw.mem_used_kb).abs() < 1e-6);
        prop_assert!(
            (get("bread/s") - raw.disk_read_bytes / 512.0 / 2.0).abs() < 1e-6
        );
        prop_assert!(
            (get("eth0-txkB/s") - raw.net_tx_bytes / 1024.0 / 2.0).abs() < 1e-6
        );
        prop_assert!((get("cswch/s") - raw.cswch / 2.0).abs() < 1e-6);
    }

    /// Perf counters are monotone in CPU activity.
    #[test]
    fn perf_monotone_in_cycles(raw in arb_raw(), k in 1.1f64..10.0) {
        let p1 = synthesize_perf(&raw);
        let mut scaled = raw;
        scaled.cpu_cycles *= k;
        let p2 = synthesize_perf(&scaled);
        let c = catalog();
        for name in ["cycles", "instructions", "cache-misses", "branches", "UOPS_RETIRED.ANY"] {
            let id = c.find(name, Source::PerfCounter).unwrap();
            let a = p1.iter().find(|(i, _)| *i == id).unwrap().1;
            let b = p2.iter().find(|(i, _)| *i == id).unwrap().1;
            prop_assert!(b >= a, "{name} not monotone: {a} -> {b}");
        }
    }

    /// The series store holds what was recorded, in order.
    #[test]
    fn store_roundtrip(values in proptest::collection::vec(-1e12f64..1e12, 1..200)) {
        let mut st = SeriesStore::new();
        let id = catalog().find("cycles", Source::PerfCounter).unwrap();
        for &v in &values {
            st.record("h", id, SimTime::ZERO, SimDuration::from_secs(2), v);
        }
        let s = st.get("h", id).unwrap();
        prop_assert_eq!(&s.values, &values);
        let rows = st.to_rows("h", id);
        prop_assert_eq!(rows.len(), values.len());
        for (i, (t, v)) in rows.iter().enumerate() {
            prop_assert_eq!(*t, i as f64 * 2.0);
            prop_assert_eq!(*v, values[i]);
        }
    }

    /// Recording a whole tick through `record_row` is indistinguishable
    /// from recording each metric individually through the keyed
    /// compatibility path: same series, same lengths, same bytes.
    #[test]
    fn record_row_equivalent_to_per_metric_record(
        ticks in proptest::collection::vec(
            proptest::collection::vec(
                (0u16..cloudchar_monitor::TOTAL_METRICS as u16, -1e12f64..1e12),
                1..40,
            ),
            1..8,
        ),
        nhosts in 1usize..4,
    ) {
        use cloudchar_monitor::MetricId;
        let hosts = &["web-vm", "mysql-vm", "dom0"][..nhosts];
        let start = SimTime::ZERO;
        let dt = SimDuration::from_secs(2);

        let mut columnar = SeriesStore::new();
        let mut keyed = SeriesStore::new();
        let mut row = SampleRow::new();
        for tick in &ticks {
            for host in hosts {
                row.clear();
                for &(m, v) in tick {
                    row.push(MetricId(m), v);
                }
                let id = columnar.host_id(host);
                columnar.record_row(id, start, dt, &row);
                for &(m, v) in tick {
                    keyed.record(host, MetricId(m), start, dt, v);
                }
            }
        }

        prop_assert_eq!(columnar.len(), keyed.len());
        for host in hosts {
            for id in catalog().ids() {
                let a = columnar.get(host, id);
                let b = keyed.get(host, id);
                prop_assert_eq!(a, b, "host {} metric {:?}", host, id);
            }
        }
        let bytes_a = serde_json::to_vec(&columnar).unwrap();
        let bytes_b = serde_json::to_vec(&keyed).unwrap();
        prop_assert_eq!(bytes_a, bytes_b);
    }
}
