//! Rule evaluation: CL001–CL007 and CL013–CL015 line rules over
//! masked source, and the cross-file rules CL008–CL012 over the parsed
//! workspace + call graph.
//!
//! Per-rule rationale lives in `DESIGN.md §12`; the registry of rule IDs
//! is [`crate::RULES`].

use crate::callgraph::{call_sites_in, resolve, CallGraph};
use crate::lexer::{mask_source, TokKind};
use crate::parse::{FileAst, FileClass};
use crate::symbols::Workspace;
use crate::{
    Diagnostic, COHORT_PATH_FILES, ONLINE_PATH_FILES, ORACLE_DEF_FILES, SAMPLING_PATH_FILES,
    SHARD_LOGIC_FILES, SIM_CRATES, SORTED_OUTPUT_FILES, STREAMING_PATH_FILES,
};
use std::collections::BTreeSet;

/// Files holding the audited raw-nanosecond boundary math, exempt from
/// CL010: the `SimTime`/`SimDuration` newtypes themselves and the event
/// queue's rung arithmetic (both carry their own overflow contracts and
/// regression tests).
pub const TIME_BOUNDARY_FILES: [&str; 2] =
    ["crates/simcore/src/time.rs", "crates/simcore/src/queue.rs"];

/// Enums that CL011 requires exhaustive (`_`-free) matches over in
/// library code: the fault vocabulary and the MetricId-producing catalog
/// axes. A new variant in any of these must force every consumer to
/// handle it at compile time.
pub const EXHAUSTIVE_ENUMS: [&str; 3] = ["FaultKind", "Source", "Family"];

/// Run every rule over the workspace. Diagnostics are unsorted and
/// unsuppresed; the caller sorts and applies the suppressions file.
pub fn run_all(ws: &Workspace, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for ast in &ws.files {
        line_rules(ast, &mut out);
        cl009_rng_discipline(ast, &mut out);
        cl010_time_arithmetic(ast, &mut out);
        cl011_exhaustive_matches(ast, &mut out);
        cl012_audit_coverage(ast, &mut out);
    }
    cl008_worker_purity(ws, graph, &mut out);
    out
}

fn push_diag(out: &mut Vec<Diagnostic>, rule: &str, ast: &FileAst, line: usize, msg: String) {
    out.push(Diagnostic {
        rule: rule.to_string(),
        path: ast.rel.clone(),
        line,
        message: msg,
        snippet: ast.raw_line(line).to_string(),
    });
}

/// Whether `hay` contains `pat` at an identifier boundary: when the
/// pattern starts or ends with an identifier character, the neighbouring
/// character must not extend it (`MyHashMap` does not contain `HashMap`,
/// `thread_rng_free` does not contain `thread_rng`).
fn line_has(hay: &str, pat: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let first_is_ident = pat.chars().next().map(ident).unwrap_or(false);
    let last_is_ident = pat.chars().next_back().map(ident).unwrap_or(false);
    for (idx, _) in hay.match_indices(pat) {
        let before_ok =
            !first_is_ident || !hay[..idx].chars().next_back().map(ident).unwrap_or(false);
        let after_ok = !last_is_ident
            || !hay[idx + pat.len()..]
                .chars()
                .next()
                .map(ident)
                .unwrap_or(false);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// CL001–CL007: per-line pattern rules over the masked source.
fn line_rules(ast: &FileAst, out: &mut Vec<Diagnostic>) {
    let rel = ast.rel.as_str();
    let class = ast.class;
    let krate = ast.krate.as_str();
    let masked = mask_source(&ast.src);

    let sim_lib = class == FileClass::Lib && SIM_CRATES.contains(&krate);
    let lib = class == FileClass::Lib;
    let sorted_output = SORTED_OUTPUT_FILES.contains(&rel);
    let analysis_lib = lib && krate == "analysis";
    let fault_lib = lib && rel.contains("fault");
    let sampling_path = lib && SAMPLING_PATH_FILES.contains(&rel);
    let cohort_path = lib && COHORT_PATH_FILES.contains(&rel);
    let shard_logic = lib && SHARD_LOGIC_FILES.contains(&rel);
    let streaming_path = lib && STREAMING_PATH_FILES.contains(&rel);
    let online_path = lib && ONLINE_PATH_FILES.contains(&rel);
    let oracle_banned =
        matches!(class, FileClass::Lib | FileClass::Bin) && !ORACLE_DEF_FILES.contains(&rel);

    for (l, m) in masked.split('\n').enumerate() {
        let lineno = l + 1;
        if ast.is_test_line(lineno) {
            continue;
        }
        if sim_lib {
            for pat in ["Instant::now", "SystemTime::now", "thread_rng"] {
                if line_has(m, pat) {
                    push_diag(out, "CL001", ast, lineno, format!(
                        "`{pat}` in simulation crate `{krate}` breaks replay determinism; derive all time/randomness from the simulation clock and seeded SimRng"
                    ));
                }
            }
        }
        if lib {
            for pat in [".unwrap()", ".expect(", "panic!"] {
                if line_has(m, pat) {
                    push_diag(out, "CL002", ast, lineno, format!(
                        "`{pat}` in library code; return Result/Option or add an audited entry to crates/lint/suppressions.txt"
                    ));
                }
            }
        }
        if sorted_output {
            for pat in ["HashMap", "HashSet"] {
                if line_has(m, pat) {
                    push_diag(out, "CL003", ast, lineno, format!(
                        "`{pat}` in report-producing file; iteration order feeds output — use BTreeMap/BTreeSet or sort explicitly"
                    ));
                }
            }
        }
        if analysis_lib && has_float_eq(m) {
            push_diag(
                out,
                "CL004",
                ast,
                lineno,
                "bare f64 equality against a float literal; use an epsilon or is_normal()/is_finite() guards".to_string(),
            );
        }
        if fault_lib {
            for pat in [".schedule_at(", ".schedule_in(", ".schedule_periodic("] {
                if line_has(m, pat) {
                    push_diag(out, "CL005", ast, lineno, format!(
                        "`{pat}` in fault code bypasses the FaultPlan path; route fault timing through fault::install so plans stay replayable"
                    ));
                }
            }
        }
        if sampling_path {
            for pat in ["BTreeMap<(String", "BTreeMap<(HostLabel"] {
                if line_has(m, pat) {
                    push_diag(out, "CL006", ast, lineno, format!(
                        "`{pat}` host-keyed map on the sampling path; record through interned HostId + dense metric columns (SeriesStore::record_row)"
                    ));
                }
            }
        }
        if cohort_path {
            for pat in ["Box::new(", "Vec<Session>", "VecDeque<"] {
                if line_has(m, pat) {
                    push_diag(out, "CL006", ast, lineno, format!(
                        "`{pat}` allocates per-client heap state on the cohort hot path; keep client state in dense parallel columns and inline wheel-bucket entries"
                    ));
                }
            }
        }
        if shard_logic {
            for pat in [
                "Arc<",
                "Rc<",
                "Mutex",
                "RwLock",
                "RefCell",
                "Cell<",
                "static mut",
                "thread_local!",
                "AtomicBool",
                "AtomicUsize",
                "AtomicU64",
                "AtomicU32",
            ] {
                if line_has(m, pat) {
                    push_diag(out, "CL013", ast, lineno, format!(
                        "`{pat}` shares state across shards; a shard owns its queue/clock/RNG exclusively — cross-shard traffic must be typed channel messages (ShardCtx::send)"
                    ));
                }
            }
        }
        if streaming_path {
            for pat in [
                ".to_vec()",
                "collect::<Vec<f64>>",
                "Vec::with_capacity(series_len",
            ] {
                if line_has(m, pat) {
                    push_diag(out, "CL014", ast, lineno, format!(
                        "`{pat}` materializes a whole series on the streaming path; decode one chunk at a time (SeriesCursor::next_chunk) so memory stays bounded by the chunk size"
                    ));
                }
            }
        }
        if online_path {
            for pat in ["SeriesScratch::", "full_characterize", "periodogram("] {
                if line_has(m, pat) {
                    push_diag(out, "CL015", ast, lineno, format!(
                        "`{pat}` recomputes a whole window on the live profiling tick; push through the incremental kernels (OnlineProfiler) and keep the batch engine as the test-only parity oracle"
                    ));
                }
            }
        }
        if oracle_banned {
            for pat in [
                "goertzel_power(",
                "goertzel_periodogram(",
                "find_lag_naive(",
                "cross_correlation(",
            ] {
                if line_has(m, pat) {
                    push_diag(out, "CL007", ast, lineno, format!(
                        "`{pat}` is the O(n²) test oracle; production code must use the FFT periodogram / prefix-sum lag scan (SeriesScratch, find_lag, cross_correlation_scan)"
                    ));
                }
            }
        }
    }
}

/// CL008: nothing reachable from a `par_map_ordered_with` worker region
/// may hold shared mutable state or relaxed atomics. The worker region
/// is the call's argument list (the `init`/`f` closures live there);
/// every call site inside it seeds a BFS over the conservative call
/// graph, and each reached function body is scanned for banned tokens.
fn cl008_worker_purity(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    for (fi, ast) in ws.files.iter().enumerate() {
        if ast.class != FileClass::Lib {
            continue;
        }
        for i in 0..ast.ctoks.len() {
            if ast.ctoks[i].kind != TokKind::Ident
                || ast.text(i) != "par_map_ordered_with"
                || ast.text(i + 1) != "("
                || (i > 0 && ast.text(i - 1) == "fn")
                || ast.is_test_line(ast.line(i))
            {
                continue;
            }
            let close = skip_balanced(ast, i + 1);
            let root = format!("{}:{}", ast.rel, ast.line(i));
            // Banned constructs written directly in the worker region.
            scan_banned(ast, i, close, &root, true, &mut seen, out);
            // Everything the region can call, transitively.
            let mut seeds = Vec::new();
            for site in call_sites_in(ast, i, close) {
                for target in resolve(ws, fi, &site) {
                    if let Some(&node) = graph.node_of.get(&target) {
                        seeds.push(node);
                    }
                }
            }
            for &node in graph.reachable(&seeds).keys() {
                let r = graph.fn_of[node];
                let f = ws.item(r);
                if f.is_test {
                    continue;
                }
                scan_banned(ws.file(r), f.body.0, f.body.1, &root, false, &mut seen, out);
            }
        }
    }
}

/// Scan code tokens `[lo, hi]` of `ast` for CL008-banned constructs.
fn scan_banned(
    ast: &FileAst,
    lo: usize,
    hi: usize,
    root: &str,
    direct: bool,
    seen: &mut BTreeSet<(String, usize, &'static str)>,
    out: &mut Vec<Diagnostic>,
) {
    let hi = hi.min(ast.ctoks.len().saturating_sub(1));
    for i in lo..=hi {
        if ast.ctoks[i].kind != TokKind::Ident {
            continue;
        }
        let what = match ast.text(i) {
            "Mutex" | "RwLock" | "RefCell" => "shared interior mutability",
            "Relaxed" => "Ordering::Relaxed atomics",
            "static" if ast.text(i + 1) == "mut" => "static mut state",
            _ => continue,
        };
        let line = ast.line(i);
        if !seen.insert((ast.rel.clone(), line, what)) {
            continue;
        }
        let via = if direct {
            "inside the worker region of".to_string()
        } else {
            "reachable from the worker region of".to_string()
        };
        push_diag(out, "CL008", ast, line, format!(
            "`{}` is {what} {via} par_map_ordered_with at {root}; pool workers must stay free of shared mutable state and relaxed atomics for byte-identical parallel replay",
            ast.text(i),
        ));
    }
}

/// CL009: RNG-stream discipline in simulation crates. Streams are forked
/// only through `SimRng::derive`; cloning a generator duplicates a
/// stream (two consumers see correlated draws), and fresh-entropy
/// constructors break seeded replay outright.
fn cl009_rng_discipline(ast: &FileAst, out: &mut Vec<Diagnostic>) {
    if ast.class != FileClass::Lib
        || !SIM_CRATES.contains(&ast.krate.as_str())
        || ast.rel == "crates/simcore/src/rng.rs"
    {
        return;
    }
    for i in 0..ast.ctoks.len() {
        if ast.ctoks[i].kind != TokKind::Ident || ast.is_test_line(ast.line(i)) {
            continue;
        }
        let name = ast.text(i);
        if matches!(name, "from_entropy" | "from_os_rng" | "OsRng" | "getrandom") {
            push_diag(out, "CL009", ast, ast.line(i), format!(
                "`{name}` constructs an unseeded RNG in a simulation crate; every stream must derive from the experiment's master seed (SimRng::new / SimRng::derive)"
            ));
        }
        if name.to_ascii_lowercase().contains("rng")
            && ast.text(i + 1) == "."
            && ast.text(i + 2) == "clone"
            && ast.text(i + 3) == "("
        {
            push_diag(out, "CL009", ast, ast.line(i), format!(
                "`{name}.clone()` duplicates an RNG stream across a component boundary; derive an independent named child stream instead (SimRng::derive)"
            ));
        }
    }
}

/// Identifier that names a raw nanosecond quantity.
fn ns_ident(name: &str) -> bool {
    name == "ns" || name.ends_with("_ns") || (name.contains("nanos") && name != "from_nanos")
}

/// CL010: unchecked `+`/`-`/`*` on raw simulated-time integers. Checked
/// arithmetic lives behind the `SimTime`/`SimDuration` newtypes; any
/// other site doing `.as_nanos()`-result or `*_ns` arithmetic with bare
/// operators is the PR 2 rung-overshoot bug class and must spell out
/// `checked_*`/`saturating_*`.
fn cl010_time_arithmetic(ast: &FileAst, out: &mut Vec<Diagnostic>) {
    if ast.class != FileClass::Lib
        || !SIM_CRATES.contains(&ast.krate.as_str())
        || TIME_BOUNDARY_FILES.contains(&ast.rel.as_str())
    {
        return;
    }
    for i in 1..ast.ctoks.len() {
        let op = ast.text(i);
        if ast.ctoks[i].kind != TokKind::Punct || !matches!(op, "+" | "-" | "*") {
            continue;
        }
        if ast.is_test_line(ast.line(i)) {
            continue;
        }
        // Binary position: something value-like on the left.
        let prev = &ast.ctoks[i - 1];
        let binary = matches!(prev.kind, TokKind::Ident | TokKind::Num) || ast.text(i - 1) == ")";
        if !binary {
            continue;
        }
        if operand_is_raw_ns_back(ast, i - 1) || operand_is_raw_ns_fwd(ast, i + 1) {
            push_diag(out, "CL010", ast, ast.line(i), format!(
                "unchecked `{op}` on raw nanosecond arithmetic; use checked_*/saturating_* (or SimTime/SimDuration ops) — only the audited boundary math in {} may use bare operators",
                TIME_BOUNDARY_FILES.join(" and "),
            ));
        }
    }
}

/// Whether the operand ending at token `end` is a raw-ns value: a
/// `…as_nanos()` call result, or an ident chain containing a `*_ns`
/// name.
fn operand_is_raw_ns_back(ast: &FileAst, end: usize) -> bool {
    if ast.text(end) == ")" {
        // Walk back to the matching `(`; a call result is raw only for
        // `as_nanos` (e.g. `from_nanos(...)` returns the checked newtype).
        let mut depth = 0usize;
        let mut j = end;
        loop {
            match ast.text(j) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        return j > 0 && ast.text(j - 1) == "as_nanos";
                    }
                }
                _ => {}
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
    }
    // Ident chain `a.b_ns`, `self.t_ns`, …
    let mut j = end;
    loop {
        if ast.ctoks.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
            return false;
        }
        if ns_ident(ast.text(j)) {
            return true;
        }
        if j >= 2 && matches!(ast.text(j - 1), "." | "::") {
            j -= 2;
        } else {
            return false;
        }
    }
}

/// Whether the operand starting at token `start` is a raw-ns value.
fn operand_is_raw_ns_fwd(ast: &FileAst, start: usize) -> bool {
    let mut j = start;
    // Skip a leading borrow or deref.
    while matches!(ast.text(j), "&" | "*") {
        j += 1;
    }
    loop {
        if ast.ctoks.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
            return false;
        }
        if ns_ident(ast.text(j)) {
            return true;
        }
        if matches!(ast.text(j + 1), "." | "::") {
            j += 2;
        } else {
            return false;
        }
    }
}

/// CL011: matches whose arm patterns name a watched enum must be
/// exhaustive — no `_` arm — in library code, so adding a variant forces
/// every consumer to handle it. String-keyed matches that merely
/// *construct* enum values in arm bodies are not the rule's business:
/// detection keys on `Enum::` paths in arm *patterns*.
fn cl011_exhaustive_matches(ast: &FileAst, out: &mut Vec<Diagnostic>) {
    if ast.class != FileClass::Lib {
        return;
    }
    for i in 0..ast.ctoks.len() {
        if ast.ctoks[i].kind != TokKind::Ident || ast.text(i) != "match" {
            continue;
        }
        if ast.is_test_line(ast.line(i)) {
            continue;
        }
        // Scrutinee runs to the body `{` at bracket depth 0 (struct
        // literals in scrutinee position require parentheses in Rust, so
        // the first depth-0 `{` is the body).
        let mut j = i + 1;
        let mut depth = 0usize;
        let body_open = loop {
            match ast.ctoks.get(j).map(|_| ast.text(j)) {
                None => break None,
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth = depth.saturating_sub(1),
                Some("{") if depth == 0 => break Some(j),
                Some(";") if depth == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else { continue };
        let close = skip_balanced(ast, open);
        let mut watched: BTreeSet<&str> = BTreeSet::new();
        let mut wildcard_line: Option<usize> = None;
        let mut pos = open + 1;
        while pos < close {
            // Pattern: tokens up to `=>` at arm depth 0.
            let pat_start = pos;
            let mut depth = 0usize;
            let arrow = loop {
                if pos >= close {
                    break None;
                }
                match ast.text(pos) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "=>" if depth == 0 => break Some(pos),
                    _ => {}
                }
                pos += 1;
            };
            let Some(arrow) = arrow else { break };
            for p in pat_start..arrow {
                let txt = ast.text(p);
                if ast.ctoks[p].kind == TokKind::Ident
                    && ast.text(p + 1) == "::"
                    && EXHAUSTIVE_ENUMS.contains(&txt)
                {
                    watched.insert(
                        EXHAUSTIVE_ENUMS
                            [EXHAUSTIVE_ENUMS.iter().position(|e| *e == txt).unwrap_or(0)],
                    );
                }
            }
            let is_wildcard = ast.text(pat_start) == "_"
                && (arrow == pat_start + 1 || ast.text(pat_start + 1) == "if");
            if is_wildcard && wildcard_line.is_none() {
                wildcard_line = Some(ast.line(pat_start));
            }
            // Arm body: a balanced block, or an expression up to the
            // depth-0 comma.
            pos = arrow + 1;
            if ast.text(pos) == "{" {
                pos = skip_balanced(ast, pos) + 1;
                if ast.text(pos) == "," {
                    pos += 1;
                }
            } else {
                let mut depth = 0usize;
                while pos < close {
                    match ast.text(pos) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => {
                            pos += 1;
                            break;
                        }
                        _ => {}
                    }
                    pos += 1;
                }
            }
        }
        if let (false, Some(line)) = (watched.is_empty(), wildcard_line) {
            let enums: Vec<&str> = watched.into_iter().collect();
            push_diag(out, "CL011", ast, line, format!(
                "wildcard `_` arm in a match over {} in library code; spell out every variant so a new variant forces handling at compile time",
                enums.join("/"),
            ));
        }
    }
}

/// CL012: a library file that mutates engine/hw/xen state (has non-test
/// `&mut self` methods in those layers) must carry at least one
/// `audit::` invariant check, or a registered suppression explaining why
/// its invariants are audited elsewhere.
fn cl012_audit_coverage(ast: &FileAst, out: &mut Vec<Diagnostic>) {
    let in_scope = ast.class == FileClass::Lib
        && (ast.krate == "hw" || ast.krate == "xen" || ast.rel == "crates/simcore/src/engine.rs");
    if !in_scope {
        return;
    }
    let mutators = ast.fns.iter().filter(|f| !f.is_test && f.mut_self).count();
    if mutators == 0 {
        return;
    }
    let has_audit = (0..ast.ctoks.len()).any(|i| {
        ast.ctoks[i].kind == TokKind::Ident
            && ast.text(i) == "audit"
            && ast.text(i + 1) == "::"
            && !ast.is_test_line(ast.line(i))
    });
    if !has_audit {
        out.push(Diagnostic {
            rule: "CL012".to_string(),
            path: ast.rel.clone(),
            line: 1,
            message: format!(
                "file mutates simulated hardware/hypervisor state ({mutators} `&mut self` method(s)) but contains no audit:: invariant check; add an audit::check at a mutation site or register a suppression with the rationale"
            ),
            snippet: "<file-level audit coverage>".to_string(),
        });
    }
}

/// Index of the bracket that closes the one at `open` (any of `(`/`[`/
/// `{`), tracking all three kinds. Returns the last token on
/// malformed input.
fn skip_balanced(ast: &FileAst, open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < ast.ctoks.len() {
        match ast.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    ast.ctoks.len().saturating_sub(1)
}

/// Last token before byte `pos` in `s` (identifier/number chars plus `.`).
fn token_before(s: &str, pos: usize) -> &str {
    let b = s.as_bytes();
    let mut end = pos;
    while end > 0 && b[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 {
        let c = b[start - 1];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
            start -= 1;
        } else if (c == b'-' || c == b'+')
            && start >= 2
            && (b[start - 2] == b'e' || b[start - 2] == b'E')
        {
            // Exponent sign of a float literal like `1e-9`.
            start -= 1;
        } else {
            break;
        }
    }
    &s[start..end]
}

/// First token after byte `pos` in `s`.
fn token_after(s: &str, pos: usize) -> &str {
    let b = s.as_bytes();
    let mut start = pos;
    while start < b.len() && b[start] == b' ' {
        start += 1;
    }
    let mut end = start;
    while end < b.len() {
        let c = b[end];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
            end += 1;
        } else if (c == b'-' || c == b'+')
            && end > start
            && (b[end - 1] == b'e' || b[end - 1] == b'E')
        {
            end += 1;
        } else {
            break;
        }
    }
    &s[start..end]
}

/// Whether a token is a float literal (`0.0`, `1.`, `1e-9`, `2.5f64`).
fn is_float_literal(tok: &str) -> bool {
    let tok = tok
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    if tok.is_empty() || !tok.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    (tok.contains('.') || tok.contains('e') || tok.contains('E')) && tok.parse::<f64>().is_ok()
}

/// Whether a masked line contains an `==`/`!=` whose operand is a float
/// literal.
fn has_float_eq(masked_line: &str) -> bool {
    for (idx, _) in masked_line.match_indices("==") {
        let before_op = if idx > 0 && masked_line.as_bytes()[idx - 1] == b'!' {
            idx - 1
        } else {
            idx
        };
        if is_float_literal(token_before(masked_line, before_op))
            || is_float_literal(token_after(masked_line, idx + 2))
        {
            return true;
        }
    }
    // `!=` has a single `=` so it is not covered by the `==` search.
    for (idx, _) in masked_line.match_indices("!=") {
        if masked_line.as_bytes().get(idx + 2) == Some(&b'=') {
            continue;
        }
        if is_float_literal(token_before(masked_line, idx))
            || is_float_literal(token_after(masked_line, idx + 2))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_boundary_matching() {
        assert!(line_has("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(!line_has("struct MyHashMap;", "HashMap"));
        assert!(!line_has("let x = HashMapLike::new();", "HashMap"));
        assert!(line_has("let r = thread_rng();", "thread_rng"));
        assert!(!line_has("fn thread_rng_free() {}", "thread_rng"));
        assert!(line_has("x.unwrap()", ".unwrap()"));
        assert!(!line_has("x.unwrap_or(0)", ".unwrap()"));
    }

    #[test]
    fn float_eq_detection() {
        assert!(has_float_eq("if x == 0.0 {"));
        assert!(has_float_eq("if 1e-9 != y {"));
        assert!(has_float_eq("a == 2.5f64"));
        assert!(!has_float_eq("if n == 0 {"));
        assert!(!has_float_eq("a.len() == b.len()"));
        assert!(!has_float_eq("let c = a <= 0.0;"));
    }

    #[test]
    fn ns_ident_classification() {
        assert!(ns_ident("ns"));
        assert!(ns_ident("interval_ns"));
        assert!(ns_ident("as_nanos"));
        assert!(!ns_ident("from_nanos"));
        assert!(!ns_ident("answer"));
        assert!(!ns_ident("nsec_like_but_not")); // no `_ns` suffix, no `nanos`
    }
}
