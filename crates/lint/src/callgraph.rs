//! Conservative workspace call graph and reachability.
//!
//! Call sites are token patterns (`name(`, `.name(`, `path::name(`);
//! resolution is by name, narrowed through `use` imports and path
//! qualifiers when they identify a type or module in the workspace.
//! Anything that cannot be resolved — std calls, trait-object dispatch,
//! closures held in variables — becomes an edge to the ⊤ node, which has
//! no body and no outgoing edges. The result over-approximates the real
//! call graph on workspace code (a call to `foo` reaches *every* `foo`
//! the qualifier allows), which is the right bias for the rules built on
//! it: CL008 must prove the *absence* of shared mutable state anywhere a
//! pool worker might reach.

use crate::parse::FileAst;
use crate::symbols::{FnRef, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Node id of the ⊤ node (unresolved callee).
pub const TOP: usize = usize::MAX;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` with no receiver or path.
    Bare,
    /// `.name(...)` method call.
    Method,
    /// `qual::name(...)` path call; holds the immediate qualifier.
    Path(String),
}

/// One syntactic call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Code-token index of the callee name.
    pub tok: usize,
    /// Callee name as written.
    pub name: String,
    /// Qualification shape.
    pub kind: CallKind,
}

/// The workspace call graph: one node per function item plus ⊤.
#[derive(Debug)]
pub struct CallGraph {
    /// Node id per function, addressed by [`FnRef`].
    pub node_of: BTreeMap<FnRef, usize>,
    /// Function per node id (dense, parallel to `edges`).
    pub fn_of: Vec<FnRef>,
    /// Resolved callees per node; [`TOP`] marks an unresolved callee.
    pub edges: Vec<Vec<usize>>,
}

/// Keywords and control constructs that look like `ident (` but are not
/// calls.
const NON_CALL: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "in", "move", "fn", "let",
];

/// Collect call sites in the code-token range `[lo, hi]` of one file.
pub fn call_sites_in(ast: &FileAst, lo: usize, hi: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let hi = hi.min(ast.ctoks.len().saturating_sub(1));
    for i in lo..=hi {
        if ast.ctoks[i].kind != crate::lexer::TokKind::Ident {
            continue;
        }
        if ast.text(i + 1) != "(" {
            continue;
        }
        let name = ast.text(i).to_string();
        if NON_CALL.contains(&name.as_str()) {
            continue;
        }
        let prev = if i > 0 { ast.text(i - 1) } else { "" };
        if prev == "fn" {
            continue;
        }
        let kind = match prev {
            "." => CallKind::Method,
            "::" => CallKind::Path(if i >= 2 {
                ast.text(i - 2).to_string()
            } else {
                String::new()
            }),
            _ => CallKind::Bare,
        };
        out.push(CallSite { tok: i, name, kind });
    }
    out
}

/// Resolve one call site in `file` to candidate nodes; an empty result
/// means the site resolves only to ⊤.
pub fn resolve(ws: &Workspace, graph_file: usize, site: &CallSite) -> Vec<FnRef> {
    match &site.kind {
        CallKind::Method => ws.methods.get(&site.name).cloned().unwrap_or_default(),
        CallKind::Path(qual) => resolve_qualified(ws, qual, &site.name),
        CallKind::Bare => {
            let file = &ws.files[graph_file];
            // A `use` import binding this name wins: resolve through its
            // path (the rename target may differ from the local alias).
            if let Some(u) = file.uses.iter().find(|u| u.alias == site.name) {
                let target = u.segments.last().cloned().unwrap_or_default();
                let qual = if u.segments.len() >= 2 {
                    u.segments[u.segments.len() - 2].clone()
                } else {
                    String::new()
                };
                let hits = resolve_qualified(ws, &qual, &target);
                if !hits.is_empty() {
                    return hits;
                }
            }
            // Same file next, then any function with the name.
            let same_file: Vec<FnRef> = ws
                .by_name
                .get(&site.name)
                .into_iter()
                .flatten()
                .filter(|r| r.file == graph_file)
                .copied()
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            ws.by_name.get(&site.name).cloned().unwrap_or_default()
        }
    }
}

/// Resolve `qual::name`. An uppercase qualifier is a type: only that
/// type's methods match (an unknown type is external → ⊤). A lowercase
/// qualifier is a module path segment: prefer functions whose file or
/// crate matches it, falling back to every function with the name.
fn resolve_qualified(ws: &Workspace, qual: &str, name: &str) -> Vec<FnRef> {
    let type_like = qual.chars().next().map(char::is_uppercase).unwrap_or(false);
    if type_like {
        return ws
            .typed_methods
            .get(&format!("{qual}::{name}"))
            .cloned()
            .unwrap_or_default();
    }
    let all: Vec<FnRef> = ws.by_name.get(name).cloned().unwrap_or_default();
    if qual.is_empty() {
        return all;
    }
    let scoped: Vec<FnRef> = all
        .iter()
        .filter(|&&r| ws.in_module(r, qual))
        .copied()
        .collect();
    if scoped.is_empty() {
        all
    } else {
        scoped
    }
}

impl CallGraph {
    /// Build the graph over every function body in the workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut node_of = BTreeMap::new();
        let mut fn_of = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for ii in 0..file.fns.len() {
                let r = FnRef { file: fi, item: ii };
                node_of.insert(r, fn_of.len());
                fn_of.push(r);
            }
        }
        let mut edges = vec![Vec::new(); fn_of.len()];
        for (node, &r) in fn_of.iter().enumerate() {
            let f = ws.item(r);
            let (lo, hi) = f.body;
            let mut seen = BTreeSet::new();
            for site in call_sites_in(ws.file(r), lo, hi) {
                let targets = resolve(ws, r.file, &site);
                if targets.is_empty() {
                    seen.insert(TOP);
                } else {
                    for t in targets {
                        seen.insert(node_of[&t]);
                    }
                }
            }
            edges[node] = seen.into_iter().collect();
        }
        CallGraph {
            node_of,
            fn_of,
            edges,
        }
    }

    /// BFS over the graph from `seeds`; returns, for each reached node,
    /// the node it was first reached from (seeds map to themselves).
    /// The ⊤ node is absorbing: it is never expanded.
    pub fn reachable(&self, seeds: &[usize]) -> BTreeMap<usize, usize> {
        let mut from: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if s != TOP && !from.contains_key(&s) {
                from.insert(s, s);
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if m != TOP && !from.contains_key(&m) {
                    from.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
        from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| parse_file(rel, src))
                .collect(),
        )
    }

    fn node(ws: &Workspace, g: &CallGraph, name: &str) -> usize {
        let r = ws.by_name[name][0];
        g.node_of[&r]
    }

    #[test]
    fn same_file_calls_resolve() {
        let ws = ws(&[(
            "crates/simcore/src/a.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        let reach = g.reachable(&[node(&ws, &g, "a")]);
        assert!(reach.contains_key(&node(&ws, &g, "c")));
        // And c was reached from b.
        assert_eq!(reach[&node(&ws, &g, "c")], node(&ws, &g, "b"));
    }

    #[test]
    fn cross_file_calls_resolve_via_use() {
        let ws = ws(&[
            (
                "crates/core/src/x.rs",
                "use crate::helper::work;\nfn top() { work(); }\n",
            ),
            ("crates/core/src/helper.rs", "pub fn work() {}\n"),
        ]);
        let g = CallGraph::build(&ws);
        let reach = g.reachable(&[node(&ws, &g, "top")]);
        assert!(reach.contains_key(&node(&ws, &g, "work")));
    }

    #[test]
    fn type_qualified_calls_hit_only_that_impl() {
        let ws = ws(&[
            ("crates/core/src/x.rs", "fn top() { Alpha::go(); }\n"),
            (
                "crates/core/src/y.rs",
                "impl Alpha { pub fn go() {} }\nimpl Beta { pub fn go() {} }\n",
            ),
        ]);
        let g = CallGraph::build(&ws);
        let reach = g.reachable(&[node(&ws, &g, "top")]);
        let alpha = g.node_of[&ws.typed_methods["Alpha::go"][0]];
        let beta = g.node_of[&ws.typed_methods["Beta::go"][0]];
        assert!(reach.contains_key(&alpha));
        assert!(!reach.contains_key(&beta));
    }

    #[test]
    fn method_calls_reach_all_same_named_impls() {
        let ws = ws(&[(
            "crates/core/src/x.rs",
            "fn top(s: S) { s.go(); }\nimpl S { fn go(&self) {} }\nimpl T { fn go(&self) {} }\n",
        )]);
        let g = CallGraph::build(&ws);
        let reach = g.reachable(&[node(&ws, &g, "top")]);
        assert!(reach.contains_key(&g.node_of[&ws.typed_methods["S::go"][0]]));
        assert!(reach.contains_key(&g.node_of[&ws.typed_methods["T::go"][0]]));
    }

    #[test]
    fn unknown_calls_go_to_top_and_stop() {
        let ws = ws(&[(
            "crates/core/src/x.rs",
            "fn top() { std::mem::drop(1); format_args(1); }\n",
        )]);
        let g = CallGraph::build(&ws);
        let n = node(&ws, &g, "top");
        assert!(g.edges[n].contains(&TOP));
        let reach = g.reachable(&[n]);
        assert_eq!(reach.len(), 1, "⊤ is not expanded");
    }

    #[test]
    fn macros_and_keywords_are_not_call_sites() {
        let ws = ws(&[(
            "crates/core/src/x.rs",
            "fn top() { if (a) {} while (b) {} assert!(c); vec![1]; }\n",
        )]);
        let g = CallGraph::build(&ws);
        assert!(g.edges[node(&ws, &g, "top")].is_empty());
    }
}
