//! A real Rust lexer for the lint pipeline.
//!
//! The v1 scanner masked comments/strings with an ad-hoc state machine
//! and substring-matched rules against the result. That breaks down on
//! exactly the token forms Rust makes hard: raw strings with hash fences
//! (`r#"…"#`), nested block comments (`/* /* */ */`), and the
//! char-literal / lifetime ambiguity (`'a'` vs `<'a>`). This module
//! lexes source into a proper token stream with byte spans and line
//! numbers; everything downstream — masking, item parsing, the call
//! graph, and the rules — consumes tokens instead of guessing at text.
//!
//! The lexer is lossless (every byte of input is covered by exactly one
//! token, in order) and never fails: unterminated literals extend to end
//! of input and unknown bytes become [`TokKind::Unknown`] tokens, so the
//! lint pass degrades gracefully on half-written code.

/// Token class, coarse but sufficient for lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not separate them) and raw
    /// identifiers (`r#type`).
    Ident,
    /// Lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// Numeric literal, including suffixed forms (`1_000u64`, `2.5f64`,
    /// `1e-9`, `0xFF`).
    Num,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'a'`.
    Char,
    /// `// …` comment (non-doc).
    LineComment,
    /// `/* … */` comment (non-doc), nesting handled.
    BlockComment,
    /// Doc comment: `///`, `//!`, `/** … */`, `/*! … */`.
    DocComment,
    /// Punctuation / operator, possibly multi-char (`::`, `->`, `+=`).
    Punct,
    /// Whitespace run (kept so the stream is lossless).
    Space,
    /// Anything the lexer does not recognize (stray byte).
    Unknown,
}

/// One token: kind plus byte span into the source and 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

impl Tok {
    /// The token's text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.lo..self.hi).unwrap_or("")
    }

    /// Whether this token is lexically code (not a comment or space).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment | TokKind::Space
        )
    }
}

/// Multi-char punctuation recognized as single tokens. `<<`/`>>` are
/// deliberately left as two tokens so angle-bracket matching in the
/// parser stays trivial; no rule needs shift operators.
const PUNCT2: [&str; 16] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "..",
];

struct Cursor<'s> {
    src: &'s str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars
            .get(idx)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    /// Advance `n` chars, counting newlines.
    fn bump(&mut self, n: usize) {
        for _ in 0..n {
            if let Some(&(_, c)) = self.chars.get(self.pos) {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let lo = cur.byte_at(cur.pos);
        let line = cur.line;
        let kind = lex_one(&mut cur, c);
        let hi = cur.byte_at(cur.pos);
        out.push(Tok { kind, lo, hi, line });
    }
    out
}

/// Lex one token starting at `c`; advances the cursor past it.
fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokKind {
    if c.is_whitespace() {
        let mut n = 0;
        while cur.peek(n).is_some_and(char::is_whitespace) {
            n += 1;
        }
        cur.bump(n);
        return TokKind::Space;
    }
    if c == '/' {
        match cur.peek(1) {
            Some('/') => return lex_line_comment(cur),
            Some('*') => return lex_block_comment(cur),
            _ => {}
        }
    }
    // Raw strings / byte strings: r"…", r#"…"#, b"…", br#"…"#, b'…'.
    if c == 'r' || c == 'b' {
        if let Some(kind) = lex_prefixed_literal(cur) {
            return kind;
        }
    }
    if c == '"' {
        lex_string(cur, 0);
        return TokKind::Str;
    }
    if c == '\'' {
        return lex_quote(cur);
    }
    if is_ident_start(c) {
        let mut n = 1;
        while cur.peek(n).is_some_and(is_ident_continue) {
            n += 1;
        }
        cur.bump(n);
        return TokKind::Ident;
    }
    if c.is_ascii_digit() {
        return lex_number(cur);
    }
    // Multi-char punctuation (longest match first via the fixed table;
    // all entries are 2 chars, `..=` is handled as `..` then `=`, which
    // no rule distinguishes).
    if let Some(d) = cur.peek(1) {
        let pair: String = [c, d].iter().collect();
        if PUNCT2.contains(&pair.as_str()) {
            cur.bump(2);
            return TokKind::Punct;
        }
    }
    if c.is_ascii_punctuation() {
        cur.bump(1);
        return TokKind::Punct;
    }
    cur.bump(1);
    TokKind::Unknown
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokKind {
    // Doc line comments: `///` (but not `////…`) and `//!`.
    let doc = matches!(
        (cur.peek(2), cur.peek(3)),
        (Some('/'), Some(c)) if c != '/'
    ) || cur.peek(2) == Some('!')
        || (cur.peek(2) == Some('/') && cur.peek(3).is_none());
    let mut n = 2;
    while cur.peek(n).is_some_and(|c| c != '\n') {
        n += 1;
    }
    cur.bump(n);
    if doc {
        TokKind::DocComment
    } else {
        TokKind::LineComment
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokKind {
    // Doc block comments: `/**` (but not `/***` or the empty `/**/`)
    // and `/*!`.
    let doc = (cur.peek(2) == Some('*') && !matches!(cur.peek(3), Some('*') | Some('/') | None))
        || cur.peek(2) == Some('!');
    let mut depth = 0usize;
    let mut n = 0;
    loop {
        match (cur.peek(n), cur.peek(n + 1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                n += 2;
            }
            (Some('*'), Some('/')) => {
                depth = depth.saturating_sub(1);
                n += 2;
                if depth == 0 {
                    break;
                }
            }
            (Some(_), _) => n += 1,
            // Unterminated comment: swallow to end of input.
            (None, _) => break,
        }
    }
    cur.bump(n);
    if doc {
        TokKind::DocComment
    } else {
        TokKind::BlockComment
    }
}

/// Try to lex a prefixed literal at the cursor (`r"…"`, `r#"…"#`,
/// `b"…"`, `br#"…"#`, `b'…'`). Returns `None` (cursor untouched) when
/// the prefix is actually an identifier (`raw`, `br`, `r#ident`, plain
/// `b`), otherwise consumes the literal and returns its kind.
fn lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokKind> {
    let c0 = cur.peek(0)?;
    let mut n = 1; // chars of prefix seen so far (c0)
    let raw = c0 == 'r' || {
        // c0 == 'b': optional raw marker next.
        if cur.peek(n) == Some('r') {
            n += 1;
            true
        } else {
            false
        }
    };
    if raw {
        let mut hashes = 0;
        while cur.peek(n + hashes) == Some('#') {
            hashes += 1;
        }
        match cur.peek(n + hashes) {
            Some('"') => {
                cur.bump(n + hashes + 1);
                lex_raw_string_tail(cur, hashes);
                Some(TokKind::Str)
            }
            // `r#ident` raw identifier, or plain ident like `rate`.
            _ => None,
        }
    } else {
        // b"…" byte string or b'…' byte char.
        match cur.peek(n) {
            Some('"') => {
                cur.bump(n);
                lex_string(cur, 0);
                Some(TokKind::Str)
            }
            Some('\'') => {
                cur.bump(n);
                lex_char(cur);
                Some(TokKind::Char)
            }
            _ => None,
        }
    }
}

/// Consume a raw-string body after the opening quote, honoring the hash
/// fence: the string ends at `"` followed by `hashes` `#`s. No escapes.
fn lex_raw_string_tail(cur: &mut Cursor<'_>, hashes: usize) {
    loop {
        match cur.peek(0) {
            Some('"') => {
                let mut h = 0;
                while h < hashes && cur.peek(1 + h) == Some('#') {
                    h += 1;
                }
                if h == hashes {
                    cur.bump(1 + hashes);
                    return;
                }
                cur.bump(1);
            }
            Some(_) => cur.bump(1),
            None => return, // unterminated
        }
    }
}

/// Consume a normal (escaped) string body; cursor sits on the opening
/// quote. `_hashes` is unused but kept for signature symmetry.
fn lex_string(cur: &mut Cursor<'_>, _hashes: usize) {
    cur.bump(1); // opening quote
    loop {
        match cur.peek(0) {
            Some('\\') => cur.bump(2),
            Some('"') => {
                cur.bump(1);
                return;
            }
            Some(_) => cur.bump(1),
            None => return, // unterminated
        }
    }
}

/// Consume a char literal body; cursor sits on the opening `'`.
fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(1); // opening quote
    loop {
        match cur.peek(0) {
            Some('\\') => cur.bump(2),
            Some('\'') => {
                cur.bump(1);
                return;
            }
            Some('\n') | None => return, // unterminated; don't eat lines
            Some(_) => cur.bump(1),
        }
    }
}

/// Disambiguate `'` into a char literal or a lifetime/label.
///
/// Rules (mirroring rustc's lexer):
/// * `'\…'` — char literal with escape.
/// * `'X'` where X is any single char — char literal.
/// * `'ident` not followed by a closing quote — lifetime/label.
/// * anything else (`'('`, `'é'`, stray quote) — char literal attempt.
fn lex_quote(cur: &mut Cursor<'_>) -> TokKind {
    match (cur.peek(1), cur.peek(2)) {
        (Some('\\'), _) => {
            lex_char(cur);
            TokKind::Char
        }
        (Some(c1), Some('\'')) if c1 != '\'' => {
            // 'X' — always a char literal, even when X is ident-ish.
            cur.bump(3);
            TokKind::Char
        }
        (Some(c1), _) if is_ident_start(c1) => {
            // Lifetime or label: consume the identifier.
            let mut n = 2;
            while cur.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            cur.bump(n);
            TokKind::Lifetime
        }
        (Some(_), _) => {
            lex_char(cur);
            TokKind::Char
        }
        (None, _) => {
            cur.bump(1);
            TokKind::Unknown
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokKind {
    // Integer part. Hex letters (incl. `e`) count as digits only after
    // an explicit `0x` prefix, so decimal `1e-9` keeps its exponent.
    let mut n = 0;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x') | Some('o') | Some('b')) {
        n = 2;
        while cur
            .peek(n)
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            n += 1;
        }
    } else {
        while cur.peek(n).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            n += 1;
        }
    }
    // Fractional part: `.` followed by a digit (so `1..2` ranges and
    // `1.method()` stay separate tokens).
    if cur.peek(n) == Some('.') && cur.peek(n + 1).is_some_and(|c| c.is_ascii_digit()) {
        n += 1;
        while cur.peek(n).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            n += 1;
        }
    }
    // Exponent: `e`/`E` with optional sign — only when followed by a digit.
    if matches!(cur.peek(n), Some('e') | Some('E')) {
        let (sign, digit_at) = match cur.peek(n + 1) {
            Some('+') | Some('-') => (1, n + 2),
            _ => (0, n + 1),
        };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            n += 1 + sign;
            while cur.peek(n).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                n += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`).
    while cur.peek(n).is_some_and(is_ident_continue) {
        n += 1;
    }
    cur.bump(n);
    TokKind::Num
}

/// Replace comments, string literals and char literals with spaces,
/// preserving newlines and the char positions of everything else — the
/// token-accurate replacement for the v1 mask-and-match pass. Lifetimes
/// survive (rules may need `'static`), doc comments are blanked like any
/// other comment.
pub fn mask_source(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    for tok in lex(src) {
        let text = tok.text(src);
        match tok.kind {
            TokKind::Str
            | TokKind::Char
            | TokKind::LineComment
            | TokKind::BlockComment
            | TokKind::DocComment => {
                for c in text.chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            _ => out.push_str(text),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Space)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn lexes_idents_and_puncts() {
        let ks = kinds("fn foo() -> u64 { a::b(x) }");
        assert_eq!(ks[0], (TokKind::Ident, "fn"));
        assert_eq!(ks[1], (TokKind::Ident, "foo"));
        assert!(ks.contains(&(TokKind::Punct, "->")));
        assert!(ks.contains(&(TokKind::Punct, "::")));
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let src = r###"let s = r#"panic! "quoted" inner"#; let t = 1;"###;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("panic!")));
        assert!(ks.contains(&(TokKind::Ident, "t")));
        // Everything after the raw string is still lexed as code.
        assert!(ks.contains(&(TokKind::Num, "1")));
    }

    #[test]
    fn raw_string_with_backslash_before_close() {
        // In raw strings `\` is literal: r"\" is a complete string.
        let src = "let s = r\"\\\"; x.f();";
        let ks = kinds(src);
        assert!(ks.contains(&(TokKind::Ident, "x")));
        assert!(ks.contains(&(TokKind::Str, "r\"\\\"")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ks = kinds(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert!(ks.contains(&(TokKind::Str, "b\"bytes\"")));
        assert!(ks.contains(&(TokKind::Char, "b'x'")));
        assert!(ks.contains(&(TokKind::Str, "br#\"raw\"#")));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let ks = kinds("let r#type = 1; let rate = r#type;");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "r"));
        assert!(ks.contains(&(TokKind::Ident, "rate")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0], (TokKind::Ident, "a"));
        assert_eq!(ks[1].0, TokKind::BlockComment);
        assert_eq!(ks[2], (TokKind::Ident, "b"));
    }

    #[test]
    fn doc_comments_are_separate_kind() {
        let ks = kinds("/// docs\n//! inner\n// plain\n/** block */\nfn f() {}");
        let docs = ks.iter().filter(|(k, _)| *k == TokKind::DocComment).count();
        let plain = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::LineComment | TokKind::BlockComment))
            .count();
        assert_eq!(docs, 3);
        assert_eq!(plain, 1);
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("let c = 'a'; fn f<'a>(x: &'a str) -> &'static str { x } let d = '\\n';");
        assert!(ks.contains(&(TokKind::Char, "'a'")));
        assert!(ks.contains(&(TokKind::Lifetime, "'a")));
        assert!(ks.contains(&(TokKind::Lifetime, "'static")));
        assert!(ks.contains(&(TokKind::Char, "'\\n'")));
    }

    #[test]
    fn lifetime_then_string_is_not_raw_string() {
        // `&'r "x"` — the `r` belongs to the lifetime, not a raw-string
        // prefix.
        let ks = kinds("fn f<'r>(x: &'r str) { g(\"s\") }");
        assert!(ks.contains(&(TokKind::Lifetime, "'r")));
        assert!(ks.contains(&(TokKind::Str, "\"s\"")));
    }

    #[test]
    fn punct_chars_in_char_literals() {
        let ks = kinds("let a = '('; let b = '{'; let c = '\"';");
        assert!(ks.contains(&(TokKind::Char, "'('")));
        assert!(ks.contains(&(TokKind::Char, "'{'")));
        assert!(ks.contains(&(TokKind::Char, "'\"'")));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let ks = kinds("1_000u64 + 2.5f64 - 1e-9 * 0xFF / 3..4");
        assert!(ks.contains(&(TokKind::Num, "1_000u64")));
        assert!(ks.contains(&(TokKind::Num, "2.5f64")));
        assert!(ks.contains(&(TokKind::Num, "1e-9")));
        assert!(ks.contains(&(TokKind::Num, "0xFF")));
        // Range stays two numbers and a `..` punct.
        assert!(ks.contains(&(TokKind::Punct, "..")));
    }

    #[test]
    fn lossless_and_line_numbers() {
        let src = "a\n  b /* x\n y */ c\n\"s\n t\"\nd";
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.text(src) == name)
                .map(|t| t.line)
                .unwrap_or(0)
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 3);
        assert_eq!(line_of("d"), 6);
    }

    #[test]
    fn mask_preserves_positions() {
        let src = "let x = \"Instant::now\"; // Instant::now\nlet c = 'a'; /* panic! */ let l: &'static str = y;";
        let m = mask_source(src);
        assert!(!m.contains("Instant::now"));
        assert!(!m.contains("panic!"));
        assert!(m.contains("'static"));
        assert_eq!(m.split('\n').count(), 2);
        assert_eq!(m.chars().count(), src.chars().count());
    }

    #[test]
    fn unterminated_forms_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "let x = 'a"] {
            let toks = lex(src);
            let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
            assert_eq!(rebuilt, src, "lossless on {src:?}");
        }
    }
}
