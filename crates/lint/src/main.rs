//! Command-line front end for the cloudchar lint pass.
//!
//! ```sh
//! cargo run -p cloudchar-lint            # human-readable diagnostics
//! cargo run -p cloudchar-lint -- --json  # machine-readable summary
//! cargo run -p cloudchar-lint -- --fixture crates/lint/fixtures/violations.rs
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when violations are found,
//! 2 on I/O errors. `--fixture FILE` scans one file *as if* it were
//! simulation-library code (self-test: it must exit non-zero on the
//! checked-in fixture).

use cloudchar_lint::{scan_source, scan_workspace, workspace_root, LintReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let fixture = args
        .iter()
        .position(|a| a == "--fixture")
        .and_then(|i| args.get(i + 1));

    let report = match fixture {
        Some(path) => {
            let root = workspace_root();
            match std::fs::read_to_string(root.join(path)) {
                Ok(text) => {
                    // Scan the fixture under paths that activate every
                    // rule: a sim-crate report file, an analysis file,
                    // and a fault library file.
                    let mut violations = scan_source("crates/monitor/src/store.rs", &text);
                    violations.extend(scan_source("crates/analysis/src/fixture.rs", &text));
                    violations.extend(scan_source("crates/core/src/faults.rs", &text));
                    violations.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
                    LintReport {
                        files_scanned: 1,
                        suppressed: 0,
                        violations,
                    }
                }
                Err(e) => {
                    eprintln!("cloudchar-lint: cannot read fixture {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => match scan_workspace(&workspace_root()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cloudchar-lint: scan failed: {e}");
                std::process::exit(2);
            }
        },
    };

    if json {
        match serde_json::to_string(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("cloudchar-lint: serialization failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        for d in &report.violations {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
            println!("    {}", d.snippet);
        }
        println!("cloudchar-lint: {}", report.summary());
    }
    if !report.is_clean() {
        std::process::exit(1);
    }
}
