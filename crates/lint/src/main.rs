//! Command-line front end for the cloudchar lint pass.
//!
//! ```sh
//! cargo run -p cloudchar-lint                # human-readable diagnostics
//! cargo run -p cloudchar-lint -- --json      # machine-readable summary (schema v2)
//! cargo run -p cloudchar-lint -- --allow-stale  # tolerate stale suppressions
//! cargo run -p cloudchar-lint -- --fixture crates/lint/tests/fixtures/cl001_bad.rs
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when violations (or stale
//! suppression entries, unless `--allow-stale`) are found, 2 on I/O
//! errors. `--fixture FILE` scans one file under a set of virtual paths
//! that activate every rule (self-test: it must exit non-zero on each
//! checked-in `*_bad.rs` fixture).

use cloudchar_lint::{scan_files, scan_workspace, workspace_root, LintReport};

/// Virtual workspace paths a `--fixture` file is scanned under, chosen so
/// every rule's file/crate gate is open for at least one of them.
const FIXTURE_PATHS: [&str; 9] = [
    "crates/monitor/src/store.rs",    // CL003 + CL006 + sim crate
    "crates/rubis/src/cohort.rs",     // CL006 cohort half
    "crates/analysis/src/fixture.rs", // CL004
    "crates/core/src/faults.rs",      // CL005 + fault file
    "crates/simcore/src/fixture.rs",  // CL001/2/8/9/10 sim-lib
    "crates/hw/src/fixture.rs",       // CL012 audit scope
    "crates/core/src/fleet.rs",       // CL013 shard-logic scope
    "crates/core/src/trace.rs",       // CL014 streaming path
    "crates/analysis/src/online.rs",  // CL015 online path
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let allow_stale = args.iter().any(|a| a == "--allow-stale");
    let fixture = args
        .iter()
        .position(|a| a == "--fixture")
        .and_then(|i| args.get(i + 1));

    let report = match fixture {
        Some(path) => {
            let root = workspace_root();
            match std::fs::read_to_string(root.join(path)) {
                Ok(text) => {
                    let inputs: Vec<(String, String)> = FIXTURE_PATHS
                        .iter()
                        .map(|p| (p.to_string(), text.clone()))
                        .collect();
                    let mut report = LintReport {
                        files_scanned: 1,
                        ..LintReport::default()
                    };
                    report.violations = scan_files(&inputs);
                    report
                }
                Err(e) => {
                    eprintln!("cloudchar-lint: cannot read fixture {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => match scan_workspace(&workspace_root()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cloudchar-lint: scan failed: {e}");
                std::process::exit(2);
            }
        },
    };

    if json {
        match serde_json::to_string(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("cloudchar-lint: serialization failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        for d in &report.violations {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
            println!("    {}", d.snippet);
        }
        for s in &report.stale_suppressions {
            println!("stale suppression (matches nothing): {s}");
        }
        println!("cloudchar-lint: {}", report.summary());
    }
    let stale_fails = !report.stale_suppressions.is_empty() && !allow_stale;
    if !report.violations.is_empty() || stale_fails {
        std::process::exit(1);
    }
}
