//! Item-level parser: per-file `fn` / `impl` / `use` extraction.
//!
//! Works on the [`crate::lexer`] token stream and extracts exactly what
//! the workspace rules need:
//!
//! * every function item with its name, enclosing `impl` type, module
//!   path, signature line, body token range, and whether it lives under
//!   `#[cfg(test)]` / `#[test]`;
//! * every `use` declaration flattened into `alias → path segments`
//!   pairs (groups, globs and renames included);
//! * per-line test flags, replacing the v1 brace-matching heuristic
//!   (which only recognized the literal attribute `#[cfg(test)]` and
//!   missed forms like `#[cfg(all(test, feature = "x"))]`).
//!
//! The parser is forgiving: it never fails on malformed input, it just
//! extracts fewer items. Contexts (mod/impl/fn) are tracked on a stack
//! keyed by brace depth, so stray braces in expressions (struct
//! literals, blocks, closures) cannot desynchronize item boundaries.

use crate::lexer::{lex, Tok, TokKind};

/// How a file participates in the build, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code — all rules apply.
    Lib,
    /// Binary target (`src/main.rs`, `src/bin/*`) — CL002 allowlisted.
    Bin,
    /// Integration/unit test file — CL002 allowlisted.
    Test,
    /// Example — CL002 allowlisted.
    Example,
    /// Bench target — CL001/CL002 allowlisted (wall-clock timing lives here).
    Bench,
}

/// Classify a workspace-relative path into `(crate dir name, class)`.
/// Paths outside `crates/` (top-level `tests/`, `examples/`) get an
/// empty crate name.
pub fn classify(rel: &str) -> (String, FileClass) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest): (&str, &[&str]) = if parts.first() == Some(&"crates") && parts.len() > 1 {
        (parts[1], &parts[2..])
    } else {
        ("", &parts[..])
    };
    let class = if rest.contains(&"tests") {
        FileClass::Test
    } else if rest.contains(&"examples") {
        FileClass::Example
    } else if rest.contains(&"benches") {
        FileClass::Bench
    } else if rest.contains(&"bin") || rest.last() == Some(&"main.rs") {
        FileClass::Bin
    } else {
        FileClass::Lib
    };
    (krate.to_string(), class)
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, when declared inside an impl block.
    pub self_ty: Option<String>,
    /// Module path inside the file (inline `mod` names, outermost first).
    pub mods: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Range of *code-token* indices covering the body, including both
    /// braces: `ctoks[body.0] == "{"`, `ctoks[body.1] == "}"`.
    pub body: (usize, usize),
    /// Whether the function is test-only (`#[cfg(test)]` region,
    /// `#[test]` attribute, or a file of test class).
    pub is_test: bool,
    /// Whether the signature takes `&mut self`.
    pub mut_self: bool,
}

/// One flattened `use` import: `alias` is the name visible in this file.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// Local binding name (last segment, or the `as` rename).
    pub alias: String,
    /// Full path segments as written (e.g. `["cloudchar_simcore", "fault", "install"]`).
    pub segments: Vec<String>,
}

/// Parse result for one file.
#[derive(Debug)]
pub struct FileAst {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate directory name (`simcore`, `core`, …; empty outside `crates/`).
    pub krate: String,
    /// File class from [`classify`].
    pub class: FileClass,
    /// Source text (owned so diagnostics can quote lines).
    pub src: String,
    /// Code tokens only (comments and whitespace stripped).
    pub ctoks: Vec<Tok>,
    /// Extracted function items.
    pub fns: Vec<FnItem>,
    /// Flattened `use` imports.
    pub uses: Vec<UseImport>,
    /// 0-based per-line flags: line belongs to a test item/region.
    pub test_lines: Vec<bool>,
}

impl FileAst {
    /// Token text helper.
    pub fn text(&self, i: usize) -> &str {
        self.ctoks.get(i).map(|t| t.text(&self.src)).unwrap_or("")
    }

    /// 1-based line of code token `i`.
    pub fn line(&self, i: usize) -> usize {
        self.ctoks.get(i).map(|t| t.line).unwrap_or(1)
    }

    /// The raw source line (1-based), trimmed.
    pub fn raw_line(&self, line: usize) -> &str {
        self.src
            .split('\n')
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
    }

    /// Whether 1-based `line` is inside a test item/region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.class == FileClass::Test
            || self
                .test_lines
                .get(line.saturating_sub(1))
                .copied()
                .unwrap_or(false)
    }
}

/// Context kinds tracked on the parse stack.
#[derive(Debug)]
enum Ctx {
    /// Inline module `mod name { … }`.
    Mod(String),
    /// `impl Type { … }` (type name) — `impl Trait for Type` records `Type`.
    Impl(String),
    /// Function body; index into `fns` to patch the end when it closes.
    Fn(usize),
    /// Any other brace-entered region (match body, struct literal, …).
    Other,
}

struct Frame {
    ctx: Ctx,
    /// Whether this context is test-only (inherited).
    is_test: bool,
    /// 1-based line the region starts on (attribute line when the item
    /// carries a test attribute) — with the closing-brace line, this
    /// delimits the test-line flag range.
    open_line: usize,
}

/// Parse one file into a [`FileAst`].
pub fn parse_file(rel: &str, text: &str) -> FileAst {
    let (krate, class) = classify(rel);
    let toks = lex(text);
    let ctoks: Vec<Tok> = toks.into_iter().filter(|t| t.is_code()).collect();
    let n_lines = text.split('\n').count();

    let mut fns: Vec<FnItem> = Vec::new();
    let mut uses: Vec<UseImport> = Vec::new();
    let mut test_lines = vec![false; n_lines];

    let mut stack: Vec<Frame> = Vec::new();
    // Attribute state for the *next* item at the current level.
    let mut pending_test_attr = false;
    // Byte line where the pending test attribute started (to flag the
    // attribute lines themselves).
    let mut pending_attr_line: Option<usize> = None;

    let src = text;
    let tok_text = |i: usize| -> &str { ctoks.get(i).map(|t| t.text(src)).unwrap_or("") };

    let mut i = 0;
    while i < ctoks.len() {
        let t = ctoks[i];
        let in_test = stack.last().map(|f| f.is_test).unwrap_or(false);
        match t.kind {
            TokKind::Punct => {
                match t.text(src) {
                    "#" => {
                        // Attribute: `#[ … ]` or `#![ … ]`. Scan the
                        // balanced bracket group for a test marker.
                        let mut j = i + 1;
                        if tok_text(j) == "!" {
                            j += 1;
                        }
                        if tok_text(j) == "[" {
                            let (end, is_testish) = scan_attr(&ctoks, src, j);
                            if is_testish {
                                pending_test_attr = true;
                                pending_attr_line.get_or_insert(t.line);
                            }
                            i = end + 1;
                            continue;
                        }
                        i += 1;
                    }
                    "{" => {
                        stack.push(Frame {
                            ctx: Ctx::Other,
                            is_test: in_test || pending_test_attr,
                            open_line: pending_attr_line.unwrap_or(t.line),
                        });
                        pending_test_attr = false;
                        pending_attr_line = None;
                        i += 1;
                    }
                    "}" => {
                        if let Some(frame) = stack.pop() {
                            if let Ctx::Fn(fi) = frame.ctx {
                                if let Some(f) = fns.get_mut(fi) {
                                    f.body.1 = i;
                                }
                            }
                            if frame.is_test {
                                flag_range(&mut test_lines, frame.open_line, t.line);
                            }
                        }
                        i += 1;
                    }
                    ";" => {
                        // An item ended without a body; a pending test
                        // attribute covers it through this semicolon
                        // (e.g. `#[cfg(test)] use …;`).
                        if pending_test_attr {
                            let lo = pending_attr_line.unwrap_or(t.line);
                            flag_range(&mut test_lines, lo, t.line);
                        }
                        pending_test_attr = false;
                        pending_attr_line = None;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            TokKind::Ident => match t.text(src) {
                "use" => {
                    let (end, mut imports) = parse_use(&ctoks, src, i + 1);
                    uses.append(&mut imports);
                    i = end;
                }
                "mod" => {
                    let name = tok_text(i + 1).to_string();
                    // `mod name;` is an out-of-line module: nothing to track.
                    if tok_text(i + 2) == "{" {
                        stack.push(Frame {
                            ctx: Ctx::Mod(name),
                            is_test: in_test || pending_test_attr,
                            open_line: pending_attr_line.unwrap_or(t.line),
                        });
                        pending_test_attr = false;
                        pending_attr_line = None;
                        i += 3;
                    } else {
                        if pending_test_attr {
                            let lo = pending_attr_line.unwrap_or(t.line);
                            flag_range(&mut test_lines, lo, t.line);
                        }
                        pending_test_attr = false;
                        pending_attr_line = None;
                        i += 2;
                    }
                }
                "impl" => {
                    let (body_open, ty) = parse_impl_header(&ctoks, src, i + 1);
                    if let Some(open) = body_open {
                        stack.push(Frame {
                            ctx: Ctx::Impl(ty),
                            is_test: in_test || pending_test_attr,
                            open_line: pending_attr_line.unwrap_or(t.line),
                        });
                        pending_test_attr = false;
                        pending_attr_line = None;
                        i = open + 1;
                    } else {
                        i += 1;
                    }
                }
                "fn" => {
                    let name = tok_text(i + 1).to_string();
                    let (body_open, mut_self) = parse_fn_header(&ctoks, src, i + 2);
                    let test = in_test || pending_test_attr || class == FileClass::Test;
                    if let Some(open) = body_open {
                        let self_ty = stack.iter().rev().find_map(|f| match &f.ctx {
                            Ctx::Impl(ty) => Some(ty.clone()),
                            _ => None,
                        });
                        let mods = stack
                            .iter()
                            .filter_map(|f| match &f.ctx {
                                Ctx::Mod(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        fns.push(FnItem {
                            name,
                            self_ty,
                            mods,
                            line: t.line,
                            body: (open, open),
                            is_test: test,
                            mut_self,
                        });
                        stack.push(Frame {
                            ctx: Ctx::Fn(fns.len() - 1),
                            is_test: test && class != FileClass::Test,
                            open_line: pending_attr_line.unwrap_or(t.line),
                        });
                        pending_test_attr = false;
                        pending_attr_line = None;
                        i = open + 1;
                    } else {
                        // Trait method declaration or extern fn: no body.
                        pending_test_attr = false;
                        pending_attr_line = None;
                        i += 2;
                    }
                }
                _ => i += 1,
            },
            _ => i += 1,
        }
    }

    // Any unterminated test frame flags through end of file.
    for f in &stack {
        if f.is_test {
            flag_range(&mut test_lines, f.open_line, n_lines);
        }
    }

    FileAst {
        rel: rel.to_string(),
        krate,
        class,
        src: text.to_string(),
        ctoks,
        fns,
        uses,
        test_lines,
    }
}

/// Flag the 1-based inclusive line range `[lo, hi]` as test lines.
fn flag_range(flags: &mut [bool], lo: usize, hi: usize) {
    for l in lo..=hi {
        if let Some(f) = flags.get_mut(l.saturating_sub(1)) {
            *f = true;
        }
    }
}

/// Scan an attribute starting at the `[` token; returns (index of the
/// closing `]`, whether the attribute marks test-only code). Test
/// markers: a `test` path segment anywhere in the attribute (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[tokio::test]`).
fn scan_attr(ctoks: &[Tok], src: &str, open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut testish = false;
    let mut j = open;
    while j < ctoks.len() {
        let txt = ctoks[j].text(src);
        match txt {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return (j, testish);
                }
            }
            "test" if ctoks[j].kind == TokKind::Ident => testish = true,
            _ => {}
        }
        j += 1;
    }
    (ctoks.len().saturating_sub(1), testish)
}

/// Parse a `use` declaration starting after the `use` keyword; returns
/// (index one past the terminating `;`, flattened imports).
fn parse_use(ctoks: &[Tok], src: &str, start: usize) -> (usize, Vec<UseImport>) {
    // Collect the raw token texts up to `;`, then flatten groups.
    let mut j = start;
    let mut texts: Vec<&str> = Vec::new();
    while j < ctoks.len() {
        let txt = ctoks[j].text(src);
        if txt == ";" {
            j += 1;
            break;
        }
        texts.push(txt);
        j += 1;
    }
    let mut out = Vec::new();
    flatten_use(&texts, &mut 0, &mut Vec::new(), &mut out);
    (j, out)
}

/// Recursive-descent flattening of a use tree: `a::b::{c, d as e, f::*}`.
fn flatten_use(
    texts: &[&str],
    pos: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseImport>,
) {
    let base_len = prefix.len();
    loop {
        match texts.get(*pos) {
            Some(&"{") => {
                *pos += 1;
                // Group: flatten each comma-separated subtree.
                loop {
                    match texts.get(*pos) {
                        Some(&"}") => {
                            *pos += 1;
                            break;
                        }
                        Some(&",") => {
                            *pos += 1;
                        }
                        Some(_) => flatten_use(texts, pos, prefix, out),
                        None => break,
                    }
                }
                break;
            }
            Some(&"::") => {
                *pos += 1;
            }
            Some(&"*") => {
                *pos += 1;
                // Glob: record with a `*` alias; resolution treats it
                // as "anything under this prefix".
                out.push(UseImport {
                    alias: "*".to_string(),
                    segments: prefix.clone(),
                });
                break;
            }
            Some(&"as") => {
                let alias = texts.get(*pos + 1).copied().unwrap_or("_").to_string();
                *pos += 2;
                out.push(UseImport {
                    alias,
                    segments: prefix.clone(),
                });
                prefix.truncate(base_len);
                return;
            }
            Some(&seg)
                if seg
                    .chars()
                    .next()
                    .map(|c| c.is_alphanumeric() || c == '_')
                    .unwrap_or(false) =>
            {
                prefix.push(seg.to_string());
                *pos += 1;
                // End of a leaf if the next token is not `::`; a
                // trailing `as` renames the leaf.
                match texts.get(*pos) {
                    Some(&"::") => {}
                    Some(&"as") => {
                        let alias = texts.get(*pos + 1).copied().unwrap_or("_").to_string();
                        *pos += 2;
                        out.push(UseImport {
                            alias,
                            segments: prefix.clone(),
                        });
                        prefix.truncate(base_len);
                        return;
                    }
                    _ => {
                        out.push(UseImport {
                            alias: prefix.last().cloned().unwrap_or_default(),
                            segments: prefix.clone(),
                        });
                        prefix.truncate(base_len);
                        return;
                    }
                }
            }
            _ => break,
        }
    }
    prefix.truncate(base_len);
}

/// Parse an impl header after the `impl` keyword; returns (index of the
/// body `{` if found, implemented type name). For `impl Trait for Type`
/// the type after `for` wins; generic parameters are skipped.
fn parse_impl_header(ctoks: &[Tok], src: &str, start: usize) -> (Option<usize>, String) {
    let mut j = start;
    // Skip `<…>` generics.
    if ctoks.get(j).map(|t| t.text(src)) == Some("<") {
        let mut angle = 0usize;
        while j < ctoks.len() {
            match ctoks[j].text(src) {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut ty = String::new();
    let mut after_for = false;
    while j < ctoks.len() {
        let txt = ctoks[j].text(src);
        match txt {
            "{" => return (Some(j), ty),
            ";" => return (None, ty),
            "for" => {
                after_for = true;
                ty.clear();
                j += 1;
            }
            "where" => {
                // Skip the where clause up to the body brace.
                while j < ctoks.len() && ctoks[j].text(src) != "{" {
                    j += 1;
                }
            }
            _ => {
                if ty.is_empty() && ctoks[j].kind == TokKind::Ident && txt != "dyn" {
                    let _ = after_for;
                    ty = txt.to_string();
                }
                j += 1;
            }
        }
    }
    (None, ty)
}

/// Parse a fn header starting at the token after the fn name; returns
/// (index of the body `{` if any, whether the params contain `&mut self`).
fn parse_fn_header(ctoks: &[Tok], src: &str, start: usize) -> (Option<usize>, bool) {
    let mut j = start;
    // Skip `<…>` generics before the parameter list.
    if ctoks.get(j).map(|t| t.text(src)) == Some("<") {
        let mut angle = 0usize;
        while j < ctoks.len() {
            match ctoks[j].text(src) {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                // A stray `(`/`{` means we mis-lexed; bail out safely.
                "{" | ";" => return (None, false),
                _ => {}
            }
            j += 1;
        }
    }
    // Parameter list.
    let mut mut_self = false;
    if ctoks.get(j).map(|t| t.text(src)) == Some("(") {
        let mut paren = 0usize;
        let open = j;
        while j < ctoks.len() {
            match ctoks[j].text(src) {
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // `&mut self` (possibly `&'a mut self`) in the first params.
        let mut k = open + 1;
        while k < j && k < open + 6 {
            if ctoks[k].text(src) == "mut" && ctoks[k + 1].text(src) == "self" {
                mut_self = true;
                break;
            }
            k += 1;
        }
        j += 1;
    }
    // Scan to the body `{` or a `;` at bracket depth 0 (return types and
    // where clauses may contain parens/brackets but not braces).
    let mut depth = 0usize;
    while j < ctoks.len() {
        match ctoks[j].text(src) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => return (Some(j), mut_self),
            ";" if depth == 0 => return (None, mut_self),
            _ => {}
        }
        j += 1;
    }
    (None, mut_self)
}

/// Per-line `#[cfg(test)]`-style flags for arbitrary source text — the
/// v2 replacement for the v1 brace matcher, kept as a plain function for
/// the line-rule scanner and back-compat tests.
pub fn test_line_flags(src: &str) -> Vec<bool> {
    parse_file("crates/unknown/src/x.rs", src).test_lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_by_path() {
        assert_eq!(
            classify("crates/simcore/src/engine.rs"),
            ("simcore".to_string(), FileClass::Lib)
        );
        assert_eq!(classify("crates/bench/src/bin/repro.rs").1, FileClass::Bin);
        assert_eq!(classify("crates/hw/benches/b.rs").1, FileClass::Bench);
        assert_eq!(classify("tests/audit.rs").1, FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs").1, FileClass::Example);
        assert_eq!(classify("crates/lint/tests/x.rs").1, FileClass::Test);
    }

    #[test]
    fn extracts_fns_with_bodies() {
        let src = "fn a() { b(); }\npub fn b() -> u64 { 1 }\n";
        let ast = parse_file("crates/simcore/src/x.rs", src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].name, "a");
        assert_eq!(ast.fns[1].name, "b");
        assert_eq!(ast.fns[0].line, 1);
        assert_eq!(ast.fns[1].line, 2);
        // Body ranges cover the braces.
        let (lo, hi) = ast.fns[0].body;
        assert_eq!(ast.text(lo), "{");
        assert_eq!(ast.text(hi), "}");
    }

    #[test]
    fn impl_methods_get_self_type() {
        let src = "struct S;\nimpl S {\n    pub fn m(&mut self) {}\n    fn h(&self) {}\n}\nimpl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n";
        let ast = parse_file("crates/hw/src/x.rs", src);
        let m = ast.fns.iter().find(|f| f.name == "m").unwrap();
        assert_eq!(m.self_ty.as_deref(), Some("S"));
        assert!(m.mut_self);
        let h = ast.fns.iter().find(|f| f.name == "h").unwrap();
        assert!(!h.mut_self);
        let fmt = ast.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.self_ty.as_deref(), Some("S"));
    }

    #[test]
    fn generic_fn_and_impl_headers() {
        let src = "impl<'a, T: Clone> Foo<'a, T> {\n    fn g<W: Send>(x: &'a W) -> Vec<T> { Vec::new() }\n}\n";
        let ast = parse_file("crates/core/src/x.rs", src);
        let g = ast.fns.iter().find(|f| f.name == "g").unwrap();
        assert_eq!(g.self_ty.as_deref(), Some("Foo"));
    }

    #[test]
    fn use_trees_flatten() {
        let src = "use a::b::c;\nuse x::{y, z as w, g::*};\nuse crate::experiment::{run, ExperimentResult};\n";
        let ast = parse_file("crates/core/src/x.rs", src);
        let find = |alias: &str| ast.uses.iter().find(|u| u.alias == alias);
        assert_eq!(find("c").unwrap().segments, vec!["a", "b", "c"]);
        assert_eq!(find("y").unwrap().segments, vec!["x", "y"]);
        assert_eq!(find("w").unwrap().segments, vec!["x", "z"]);
        assert_eq!(
            find("run").unwrap().segments,
            vec!["crate", "experiment", "run"]
        );
        // Glob import records the prefix with a `*` alias.
        assert!(ast
            .uses
            .iter()
            .any(|u| u.alias == "*" && u.segments == vec!["x", "g"]));
    }

    #[test]
    fn cfg_test_regions_flag_lines() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.f(); }\n}\nfn lib2() {}\n";
        let ast = parse_file("crates/simcore/src/x.rs", src);
        assert_eq!(
            ast.test_lines,
            vec![false, true, true, true, true, false, false]
        );
        let t = ast.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        assert!(!ast.fns.iter().find(|f| f.name == "lib").unwrap().is_test);
    }

    #[test]
    fn cfg_all_test_is_recognized() {
        // The v1 scanner only matched the literal `#[cfg(test)]` and
        // missed composite cfg predicates.
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests {\n    fn t() {}\n}\n";
        let ast = parse_file("crates/simcore/src/x.rs", src);
        assert!(ast.fns[0].is_test);
        assert!(ast.test_lines[..3].iter().all(|&f| f));
    }

    #[test]
    fn test_mod_preamble_lines_are_flagged() {
        // Lines between the mod's opening brace and its first item (use
        // declarations, blanks) are part of the test region too.
        let src = "#[cfg(test)]\nmod tests {\n    use super::*;\n\n    fn t() {}\n}\nfn lib() {}\n";
        let ast = parse_file("crates/simcore/src/x.rs", src);
        assert!(
            ast.test_lines[..6].iter().all(|&f| f),
            "flags: {:?}",
            ast.test_lines
        );
        assert!(!ast.test_lines[6]);
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn lib() {}\n";
        let ast = parse_file("crates/simcore/src/x.rs", src);
        assert!(ast.fns.iter().find(|f| f.name == "check").unwrap().is_test);
        assert!(!ast.fns.iter().find(|f| f.name == "lib").unwrap().is_test);
    }

    #[test]
    fn struct_literals_do_not_desync_items() {
        let src =
            "static X: P = P { a: 1 };\nfn f() { let p = P { a: 2 }; g(p); }\nfn g(_: P) {}\n";
        let ast = parse_file("crates/simcore/src/x.rs", src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[1].name, "g");
        assert_eq!(ast.fns[1].line, 3);
    }

    #[test]
    fn nested_mods_record_path() {
        let src = "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n}\n";
        let ast = parse_file("crates/simcore/src/x.rs", src);
        assert_eq!(ast.fns[0].mods, vec!["outer", "inner"]);
    }

    #[test]
    fn malformed_input_is_safe() {
        for src in ["fn", "fn (", "impl {", "use ;", "fn f() {", "}}}", "#["] {
            let ast = parse_file("crates/simcore/src/x.rs", src);
            let _ = ast.fns.len();
        }
    }
}
