//! cloudchar-lint: determinism/correctness lint pass over the workspace.
//!
//! The simulation's headline guarantee is *reproducibility*: the same
//! master seed must give byte-identical results, and figure/table output
//! must not depend on hash-map iteration order or wall-clock reads.
//! This crate enforces that guarantee statically with a small,
//! dependency-free scanner (line/token level — no full parser needed):
//!
//! * **CL001** — no `Instant::now` / `SystemTime::now` / `thread_rng`
//!   inside simulation crates (`simcore`, `hw`, `xen`, `rubis`,
//!   `monitor`, `core`). Wall-clock reads belong only in the `bench`
//!   harness.
//! * **CL002** — no `.unwrap()` / `.expect(` / `panic!` in library code
//!   paths. Tests, benches, examples and binaries are allowlisted;
//!   audited exceptions live in `crates/lint/suppressions.txt`.
//! * **CL003** — no `HashMap` / `HashSet` in the report-producing files
//!   (`monitor::store`, `core::report`, `core::compare`): anything that
//!   feeds CSV/markdown output must iterate in a deterministic order
//!   (`BTreeMap` or explicitly sorted).
//! * **CL004** — no bare `f64` `==`/`!=` against float literals in the
//!   `analysis` crate; use epsilon comparisons or `is_normal()` guards.
//! * **CL005** — no direct `.schedule_at(`/`.schedule_in(`/
//!   `.schedule_periodic(` calls in fault-related library files: fault
//!   timing must flow through `fault::install` so a `FaultPlan` stays
//!   the single replayable source of truth. The sanctioned scheduling
//!   site inside `fault::install` itself is suppressed.
//! * **CL006** — no host-keyed `BTreeMap<(String, …)>` /
//!   `BTreeMap<(HostLabel, …)>` maps in sampling-path files
//!   (`monitor::store`, `monitor::synth`, `core::workload`,
//!   `core::batch`): the per-tick record path is columnar (interned
//!   `HostId` + dense metric columns) and must never reintroduce a
//!   string-keyed map lookup per sample. Benches keep the keyed
//!   baseline for comparison and are exempt by file class.
//! * **CL007** — no `goertzel_power(` / `goertzel_periodogram(` /
//!   `find_lag_naive(` / `cross_correlation(` calls in library or
//!   binary code: the O(n²) per-bin Goertzel spectrum and per-shift
//!   naive Pearson scan are kept in-tree *only* as test oracles for the
//!   FFT + prefix-sum fast path. Their defining files
//!   (`analysis::spectrum`, `analysis::lag`) and all tests/benches are
//!   exempt.
//!
//! The scanner masks comments, strings and char literals before
//! matching, tracks `#[cfg(test)]` regions by brace matching, and
//! reports `file:line` diagnostics with rule IDs. A machine-readable
//! JSON summary is available from the binary via `--json`.
//!
//! Run it as `cargo run -p cloudchar-lint`; the integration test
//! `crates/lint/tests/lint_workspace.rs` runs the same pass so plain
//! `cargo test` gates it.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crate directory names whose library code models the simulation and
/// therefore must be free of wall-clock / ambient-randomness reads.
pub const SIM_CRATES: [&str; 6] = ["simcore", "hw", "xen", "rubis", "monitor", "core"];

/// Files whose output feeds reports/CSVs and therefore must iterate
/// deterministically (CL003).
pub const SORTED_OUTPUT_FILES: [&str; 3] = [
    "crates/monitor/src/store.rs",
    "crates/core/src/report.rs",
    "crates/core/src/compare.rs",
];

/// Files on the per-tick sampling hot path, which must stay columnar
/// (no host-keyed map lookups per sample — CL006).
pub const SAMPLING_PATH_FILES: [&str; 4] = [
    "crates/monitor/src/store.rs",
    "crates/monitor/src/synth.rs",
    "crates/core/src/workload.rs",
    "crates/core/src/batch.rs",
];

/// Files that *define* the naive analysis oracles and are therefore
/// exempt from CL007.
pub const ORACLE_DEF_FILES: [&str; 2] = [
    "crates/analysis/src/spectrum.rs",
    "crates/analysis/src/lag.rs",
];

/// Rule registry: `(id, summary)` for every rule the scanner knows.
pub const RULES: [(&str, &str); 7] = [
    (
        "CL001",
        "no Instant::now/SystemTime::now/thread_rng in simulation crates",
    ),
    (
        "CL002",
        "no .unwrap()/.expect(/panic! in library code paths",
    ),
    (
        "CL003",
        "no HashMap/HashSet in report-producing files (use BTreeMap/sorted)",
    ),
    (
        "CL004",
        "no bare f64 ==/!= against float literals in analysis",
    ),
    (
        "CL005",
        "no direct engine schedule_* calls in fault code (use fault::install)",
    ),
    (
        "CL006",
        "no host-keyed BTreeMap<(String/HostLabel, ..)> on the sampling path (use interned HostId columns)",
    ),
    (
        "CL007",
        "no Goertzel/naive-Pearson oracle calls outside their defining files and tests (use the FFT + prefix-sum fast path)",
    ),
];

/// How a file participates in the build, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code — all rules apply.
    Lib,
    /// Binary target (`src/main.rs`, `src/bin/*`) — CL002 allowlisted.
    Bin,
    /// Integration/unit test file — CL002 allowlisted.
    Test,
    /// Example — CL002 allowlisted.
    Example,
    /// Bench target — CL001/CL002 allowlisted (wall-clock timing lives here).
    Bench,
}

/// One `file:line` finding.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule ID, e.g. `"CL002"`.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Result of a full workspace pass.
#[derive(Debug, Default, Serialize)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings silenced by `crates/lint/suppressions.txt`.
    pub suppressed: usize,
    /// Unsuppressed findings, sorted by `(path, line, rule)`.
    pub violations: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether the pass found nothing (after suppressions).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} files scanned, {} violations, {} suppressed",
            self.files_scanned,
            self.violations.len(),
            self.suppressed
        )
    }
}

/// An audited exception: silences `rule` findings in `path` on source
/// lines containing `needle`.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ID the exception applies to.
    pub rule: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Substring of the raw source line that identifies the audited site.
    pub needle: String,
}

/// Parse a suppressions file: one `RULE PATH NEEDLE...` triple per line,
/// `#` comments and blank lines ignored. The needle is everything after
/// the second field and may contain spaces.
pub fn parse_suppressions(text: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path), Some(needle)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        out.push(Suppression {
            rule: rule.to_string(),
            path: path.to_string(),
            needle: needle.trim().to_string(),
        });
    }
    out
}

/// Replace comments, string literals and char literals with spaces,
/// preserving newlines and byte positions of the remaining code, so
/// substring rules never fire inside text.
pub fn mask_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // True when the previously emitted char could continue an identifier,
    // so an `r"` here is the tail of `var"` (invalid anyway), not a raw string.
    let mut prev_ident = false;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw (byte) strings: r"..", r#".."#, br#".."#.
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    for idx in i..=k {
                        out.push(blank(b[idx]));
                    }
                    i = k + 1;
                    while i < n {
                        if b[i] == '"' {
                            let mut h = 0;
                            while h < hashes && i + 1 + h < n && b[i + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                }
            }
            // Not a raw string start (e.g. raw identifier `r#type`):
            // fall through and emit the char.
        }
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        if c == '\'' {
            // Distinguish char literals from lifetimes: '\x..' and 'x'
            // are literals; 'a (no closing quote after one char) is a
            // lifetime and is kept verbatim.
            if i + 1 < n && b[i + 1] == '\\' {
                out.push_str("  ");
                i += 2;
                while i < n && b[i] != '\'' {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
                prev_ident = false;
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                out.push_str("   ");
                i += 3;
                prev_ident = false;
                continue;
            }
            out.push('\'');
            i += 1;
            prev_ident = false;
            continue;
        }
        out.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    out
}

/// Per-line flags marking `#[cfg(test)]` regions (attribute line through
/// the closing brace of the following item), found by brace matching on
/// the masked source.
pub fn test_line_flags(masked: &str) -> Vec<bool> {
    let n_lines = masked.split('\n').count();
    let mut flags = vec![false; n_lines];
    let b = masked.as_bytes();
    let line_of = |pos: usize| -> usize {
        b[..pos.min(b.len())]
            .iter()
            .filter(|&&c| c == b'\n')
            .count()
    };
    for (start, _) in masked.match_indices("#[cfg(test)]") {
        let mut i = start + "#[cfg(test)]".len();
        while i < b.len() && b[i] != b'{' && b[i] != b';' {
            i += 1;
        }
        let end = if i < b.len() && b[i] == b'{' {
            let mut depth = 0usize;
            let mut j = i;
            loop {
                if j >= b.len() {
                    break j;
                }
                match b[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break j;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        } else {
            i
        };
        let (ls, le) = (line_of(start), line_of(end));
        for flag in flags.iter_mut().take(le + 1).skip(ls) {
            *flag = true;
        }
    }
    flags
}

/// Classify a workspace-relative path into `(crate dir name, class)`.
/// Paths outside `crates/` (top-level `tests/`, `examples/`) get an
/// empty crate name.
pub fn classify(rel: &str) -> (String, FileClass) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest): (&str, &[&str]) = if parts.first() == Some(&"crates") && parts.len() > 1 {
        (parts[1], &parts[2..])
    } else {
        ("", &parts[..])
    };
    let class = if rest.contains(&"tests") {
        FileClass::Test
    } else if rest.contains(&"examples") {
        FileClass::Example
    } else if rest.contains(&"benches") {
        FileClass::Bench
    } else if rest.contains(&"bin") || rest.last() == Some(&"main.rs") {
        FileClass::Bin
    } else {
        FileClass::Lib
    };
    (krate.to_string(), class)
}

fn push_diag(out: &mut Vec<Diagnostic>, rule: &str, rel: &str, line: usize, msg: &str, raw: &str) {
    out.push(Diagnostic {
        rule: rule.to_string(),
        path: rel.to_string(),
        line,
        message: msg.to_string(),
        snippet: raw.trim().to_string(),
    });
}

/// Last token before byte `pos` in `s` (identifier/number chars plus `.`).
fn token_before(s: &str, pos: usize) -> &str {
    let b = s.as_bytes();
    let mut end = pos;
    while end > 0 && b[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 {
        let c = b[start - 1];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
            start -= 1;
        } else if (c == b'-' || c == b'+')
            && start >= 2
            && (b[start - 2] == b'e' || b[start - 2] == b'E')
        {
            // Exponent sign of a float literal like `1e-9`.
            start -= 1;
        } else {
            break;
        }
    }
    &s[start..end]
}

/// First token after byte `pos` in `s`.
fn token_after(s: &str, pos: usize) -> &str {
    let b = s.as_bytes();
    let mut start = pos;
    while start < b.len() && b[start] == b' ' {
        start += 1;
    }
    let mut end = start;
    while end < b.len() {
        let c = b[end];
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
            end += 1;
        } else if (c == b'-' || c == b'+')
            && end > start
            && (b[end - 1] == b'e' || b[end - 1] == b'E')
        {
            end += 1;
        } else {
            break;
        }
    }
    &s[start..end]
}

/// Whether a token is a float literal (`0.0`, `1.`, `1e-9`, `2.5f64`).
fn is_float_literal(tok: &str) -> bool {
    let tok = tok
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    if tok.is_empty() || !tok.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    (tok.contains('.') || tok.contains('e') || tok.contains('E')) && tok.parse::<f64>().is_ok()
}

/// Whether a masked line contains an `==`/`!=` whose operand is a float
/// literal.
fn has_float_eq(masked_line: &str) -> bool {
    for (idx, _) in masked_line.match_indices("==") {
        let before_op = if idx > 0 && masked_line.as_bytes()[idx - 1] == b'!' {
            idx - 1
        } else {
            idx
        };
        if is_float_literal(token_before(masked_line, before_op))
            || is_float_literal(token_after(masked_line, idx + 2))
        {
            return true;
        }
    }
    // `!=` has a single `=` so it is not covered by the `==` search.
    for (idx, _) in masked_line.match_indices("!=") {
        if masked_line.as_bytes().get(idx + 2) == Some(&b'=') {
            continue;
        }
        if is_float_literal(token_before(masked_line, idx))
            || is_float_literal(token_after(masked_line, idx + 2))
        {
            return true;
        }
    }
    false
}

/// Run every rule against one file's source, given its workspace-relative
/// path (which decides crate and class). Returns unsuppressed findings.
pub fn scan_source(rel: &str, text: &str) -> Vec<Diagnostic> {
    let (krate, class) = classify(rel);
    let masked = mask_source(text);
    let in_test = test_line_flags(&masked);
    let raw_lines: Vec<&str> = text.split('\n').collect();
    let masked_lines: Vec<&str> = masked.split('\n').collect();
    let mut out = Vec::new();

    let sim_lib = class == FileClass::Lib && SIM_CRATES.contains(&krate.as_str());
    let lib = class == FileClass::Lib;
    let sorted_output = SORTED_OUTPUT_FILES.contains(&rel);
    let analysis_lib = class == FileClass::Lib && krate == "analysis";
    let fault_lib = lib && rel.contains("fault");
    let sampling_path = lib && SAMPLING_PATH_FILES.contains(&rel);
    let oracle_banned =
        matches!(class, FileClass::Lib | FileClass::Bin) && !ORACLE_DEF_FILES.contains(&rel);

    for (l, m) in masked_lines.iter().enumerate() {
        if in_test.get(l).copied().unwrap_or(false) {
            continue;
        }
        let raw = raw_lines.get(l).copied().unwrap_or("");
        let lineno = l + 1;
        if sim_lib {
            for pat in ["Instant::now", "SystemTime::now", "thread_rng"] {
                if m.contains(pat) {
                    push_diag(
                        &mut out,
                        "CL001",
                        rel,
                        lineno,
                        &format!("`{pat}` in simulation crate `{krate}` breaks replay determinism; derive all time/randomness from the simulation clock and seeded SimRng"),
                        raw,
                    );
                }
            }
        }
        if lib {
            for pat in [".unwrap()", ".expect(", "panic!"] {
                if m.contains(pat) {
                    push_diag(
                        &mut out,
                        "CL002",
                        rel,
                        lineno,
                        &format!("`{pat}` in library code; return Result/Option or add an audited entry to crates/lint/suppressions.txt"),
                        raw,
                    );
                }
            }
        }
        if sorted_output {
            for pat in ["HashMap", "HashSet"] {
                if m.contains(pat) {
                    push_diag(
                        &mut out,
                        "CL003",
                        rel,
                        lineno,
                        &format!("`{pat}` in report-producing file; iteration order feeds output — use BTreeMap/BTreeSet or sort explicitly"),
                        raw,
                    );
                }
            }
        }
        if fault_lib {
            for pat in [".schedule_at(", ".schedule_in(", ".schedule_periodic("] {
                if m.contains(pat) {
                    push_diag(
                        &mut out,
                        "CL005",
                        rel,
                        lineno,
                        &format!("`{pat}` in fault code bypasses the FaultPlan path; route fault timing through fault::install so plans stay replayable"),
                        raw,
                    );
                }
            }
        }
        if sampling_path {
            for pat in ["BTreeMap<(String", "BTreeMap<(HostLabel"] {
                if m.contains(pat) {
                    push_diag(
                        &mut out,
                        "CL006",
                        rel,
                        lineno,
                        &format!("`{pat}` host-keyed map on the sampling path; record through interned HostId + dense metric columns (SeriesStore::record_row)"),
                        raw,
                    );
                }
            }
        }
        if oracle_banned {
            for pat in [
                "goertzel_power(",
                "goertzel_periodogram(",
                "find_lag_naive(",
                "cross_correlation(",
            ] {
                if m.contains(pat) {
                    push_diag(
                        &mut out,
                        "CL007",
                        rel,
                        lineno,
                        &format!("`{pat}` is the O(n²) test oracle; production code must use the FFT periodogram / prefix-sum lag scan (SeriesScratch, find_lag, cross_correlation_scan)"),
                        raw,
                    );
                }
            }
        }
        if analysis_lib && has_float_eq(m) {
            push_diag(
                &mut out,
                "CL004",
                rel,
                lineno,
                "bare f64 equality against a float literal; use an epsilon or is_normal()/is_finite() guards",
                raw,
            );
        }
    }
    out
}

/// Recursively collect `.rs` files under `crates/`, `tests/` and
/// `examples/`, skipping `target/`, `fixtures/` and `vendor/`. Returns
/// `(absolute, workspace-relative)` pairs sorted by relative path.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | "fixtures" | "vendor" | ".git") {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Workspace root as seen from this crate at compile time.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Run the full pass over the workspace, applying the checked-in
/// suppressions file.
pub fn scan_workspace(root: &Path) -> io::Result<LintReport> {
    let sup_path = root.join("crates/lint/suppressions.txt");
    let sups = if sup_path.is_file() {
        parse_suppressions(&fs::read_to_string(&sup_path)?)
    } else {
        Vec::new()
    };
    let mut report = LintReport::default();
    for (abs, rel) in collect_rust_files(root)? {
        let text = fs::read_to_string(&abs)?;
        report.files_scanned += 1;
        for d in scan_source(&rel, &text) {
            let suppressed = sups
                .iter()
                .any(|s| s.rule == d.rule && s.path == d.path && d.snippet.contains(&s.needle));
            if suppressed {
                report.suppressed += 1;
            } else {
                report.violations.push(d);
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_strings_chars() {
        let src = "let x = \"Instant::now\"; // Instant::now\nlet c = 'a'; /* panic! */ let l: &'static str = y;";
        let m = mask_source(src);
        assert!(!m.contains("Instant::now"));
        assert!(!m.contains("panic!"));
        assert!(m.contains("'static"), "lifetimes survive: {m}");
        assert_eq!(m.split('\n').count(), 2);
    }

    #[test]
    fn masking_handles_raw_strings() {
        let src = "let s = r#\"panic! .unwrap() \"inner\" \"#; let t = 1;";
        let m = mask_source(src);
        assert!(!m.contains("panic!"));
        assert!(!m.contains(".unwrap()"));
        assert!(m.contains("let t = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_flagged() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let flags = test_line_flags(&mask_source(src));
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn classify_by_path() {
        assert_eq!(
            classify("crates/simcore/src/engine.rs"),
            ("simcore".to_string(), FileClass::Lib)
        );
        assert_eq!(classify("crates/bench/src/bin/repro.rs").1, FileClass::Bin);
        assert_eq!(classify("crates/hw/benches/b.rs").1, FileClass::Bench);
        assert_eq!(classify("tests/audit.rs").1, FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs").1, FileClass::Example);
        assert_eq!(classify("crates/lint/tests/x.rs").1, FileClass::Test);
    }

    #[test]
    fn float_eq_detection() {
        assert!(has_float_eq("if x == 0.0 {"));
        assert!(has_float_eq("if 1e-9 != y {"));
        assert!(has_float_eq("a == 2.5f64"));
        assert!(!has_float_eq("if n == 0 {"));
        assert!(!has_float_eq("a.len() == b.len()"));
        assert!(!has_float_eq("let c = a <= 0.0;"));
    }

    #[test]
    fn suppression_matching() {
        let sups = parse_suppressions(
            "# comment\nCL002 crates/x/src/a.rs contract panic here\n\nbadline\n",
        );
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "CL002");
        assert_eq!(sups[0].needle, "contract panic here");
    }

    #[test]
    fn scan_source_fires_each_rule() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); x.unwrap(); }\n";
        let d = scan_source("crates/simcore/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "CL001"));
        assert!(d.iter().any(|d| d.rule == "CL002"));
        let d = scan_source(
            "crates/monitor/src/store.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(d.iter().any(|d| d.rule == "CL003"));
        let d = scan_source(
            "crates/analysis/src/x.rs",
            "fn f(x: f64) -> bool { x == 0.0 }\n",
        );
        assert!(d.iter().any(|d| d.rule == "CL004"));
        // Same patterns in a test file are allowlisted for CL002.
        let d = scan_source("crates/simcore/tests/x.rs", "fn f() { x.unwrap(); }\n");
        assert!(d.is_empty());
        // CL005: fault library code scheduling engine events directly.
        let src = "fn arm(e: &mut Engine<W>) { e.schedule_at(t, cb); e.schedule_in(d, cb); }\n";
        let d = scan_source("crates/core/src/faults.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "CL005").count(), 2);
        // The same calls outside fault files are not CL005's business.
        let d = scan_source("crates/core/src/workload.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL005"));
        // Nor in fault *test* code, which may drive engines directly.
        let d = scan_source("crates/simcore/tests/prop_fault.rs", src);
        assert!(d.is_empty());
        // CL006: host-keyed maps on the sampling path.
        let src = "struct S { m: BTreeMap<(String, MetricId), TimeSeries> }\n";
        let d = scan_source("crates/monitor/src/store.rs", src);
        assert!(d.iter().any(|d| d.rule == "CL006"));
        let d = scan_source("crates/core/src/batch.rs", src);
        assert!(d.iter().any(|d| d.rule == "CL006"));
        // The keyed baseline in benches is exempt by file class...
        let d = scan_source("crates/bench/benches/store.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL006"));
        // ...and off-path library files are not CL006's business.
        let d = scan_source("crates/core/src/report.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL006"));
        // CL007: oracle calls in library/binary code.
        let src = "fn f(xs: &[f64]) { let p = goertzel_periodogram(xs); let l = find_lag_naive(xs, xs, 5); }\n";
        let d = scan_source("crates/core/src/characterize.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "CL007").count(), 2);
        let d = scan_source("crates/bench/src/bin/repro.rs", src);
        assert!(d.iter().any(|d| d.rule == "CL007"));
        // The defining files are exempt (they hold the oracles)...
        let d = scan_source("crates/analysis/src/spectrum.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL007"));
        let d = scan_source("crates/analysis/src/lag.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL007"));
        // ...as are tests and benches, which race oracle vs fast path.
        let d = scan_source("crates/analysis/tests/prop.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL007"));
        let d = scan_source("crates/bench/benches/analysis.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL007"));
        // The scan-based fast path does not trip the oracle pattern.
        let d = scan_source(
            "crates/analysis/src/summary.rs",
            "fn f(xs: &[f64]) { let s = cross_correlation_scan(xs, xs, 5); }\n",
        );
        assert!(!d.iter().any(|d| d.rule == "CL007"));
    }
}
