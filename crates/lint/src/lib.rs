//! cloudchar-lint: determinism/correctness lint pass over the workspace.
//!
//! The simulation's headline guarantee is *reproducibility*: the same
//! master seed must give byte-identical results, and figure/table output
//! must not depend on hash-map iteration order or wall-clock reads.
//! This crate enforces that guarantee statically with a dependency-free
//! pipeline: a lossless Rust [`lexer`], an item-level [`parse`]r, a
//! workspace [`symbols`] table, a conservative [`callgraph`], and the
//! [`rules`] that run over all of it.
//!
//! Line rules (pattern matching over masked source):
//!
//! * **CL001** — no `Instant::now` / `SystemTime::now` / `thread_rng`
//!   inside simulation crates (`simcore`, `hw`, `xen`, `rubis`,
//!   `monitor`, `core`). Wall-clock reads belong only in the `bench`
//!   harness.
//! * **CL002** — no `.unwrap()` / `.expect(` / `panic!` in library code
//!   paths. Tests, benches, examples and binaries are allowlisted;
//!   audited exceptions live in `crates/lint/suppressions.txt`.
//! * **CL003** — no `HashMap` / `HashSet` in the report-producing files
//!   (`monitor::store`, `core::report`, `core::compare`): anything that
//!   feeds CSV/markdown output must iterate in a deterministic order
//!   (`BTreeMap` or explicitly sorted).
//! * **CL004** — no bare `f64` `==`/`!=` against float literals in the
//!   `analysis` crate; use epsilon comparisons or `is_normal()` guards.
//! * **CL005** — no direct `.schedule_at(`/`.schedule_in(`/
//!   `.schedule_periodic(` calls in fault-related library files: fault
//!   timing must flow through `fault::install` so a `FaultPlan` stays
//!   the single replayable source of truth.
//! * **CL006** — no host-keyed `BTreeMap<(String, …)>` /
//!   `BTreeMap<(HostLabel, …)>` maps in sampling-path files: the
//!   per-tick record path is columnar (interned `HostId` + dense metric
//!   columns). On cohort-path files the same rule forbids per-client
//!   heap allocation (`Box::new(` / `Vec<Session>` / `VecDeque<`)
//!   inside the per-tick advance loop: client state lives in dense
//!   parallel columns and inline wheel-bucket entries.
//! * **CL007** — no `goertzel_power(` / `goertzel_periodogram(` /
//!   `find_lag_naive(` / `cross_correlation(` calls in library or
//!   binary code: the O(n²) oracles are test-only.
//! * **CL015** — no batch-recompute entry points (`SeriesScratch::`,
//!   `full_characterize`, `periodogram(`) in online-path files: the
//!   live profiling tick is O(1) amortized through the incremental
//!   kernels; the batch engine stays the test-only parity oracle.
//!
//! Workspace rules (symbol table + call graph):
//!
//! * **CL008** — every function reachable from a `par_map_ordered_with`
//!   worker region must be free of `Mutex`/`RwLock`/`RefCell`,
//!   `static mut`, and `Ordering::Relaxed` — pool workers must not share
//!   mutable state, or parallel replay stops being byte-identical.
//! * **CL009** — RNG-stream discipline in simulation crates: no
//!   `rng.clone()` (duplicated streams), no entropy-seeded constructors
//!   (`from_entropy`, `OsRng`, `getrandom`); streams fork only through
//!   `SimRng::derive`.
//! * **CL010** — no unchecked `+`/`-`/`*` on raw nanosecond integers
//!   (`.as_nanos()` results, `*_ns` variables) outside the audited
//!   boundary files (`simcore::time`, `simcore::queue`); use
//!   `checked_*`/`saturating_*` or the `SimTime`/`SimDuration` ops.
//! * **CL011** — matches whose patterns name `FaultKind`, `Source` or
//!   `Family` must be exhaustive (no `_` arm) in library code, so a new
//!   variant forces handling at compile time.
//! * **CL012** — library files that mutate simulated hardware/hypervisor
//!   state (non-test `&mut self` methods in `hw`/`xen`/the engine) must
//!   contain an `audit::` invariant check or a registered suppression.
//! * **CL013** — shard-logic files (code that runs *inside* a shard of
//!   the parallel sharded engine) must not share state across shards:
//!   no `Arc`, `Rc`, locks, cells, atomics, `static mut`, or
//!   `thread_local!`. Cross-shard communication happens only through
//!   typed channel messages, so parallel replay stays byte-identical.
//! * **CL014** — streaming-path files (the chunk codec and the
//!   out-of-core trace consumers) must not materialize a whole series:
//!   no `.to_vec()`, no `collect::<Vec<f64>>`, no
//!   `Vec::with_capacity(series_len`. The point of the on-disk store is
//!   bounded memory; one full-series copy silently voids it.
//!
//! Suppressions are audited exceptions; entries that no longer match any
//! finding are reported as *stale* and fail the run (escape hatch:
//! `--allow-stale`). A machine-readable JSON summary (versioned
//! `schema` field, per-rule counts) is available from the binary via
//! `--json`.
//!
//! Run it as `cargo run -p cloudchar-lint`; the integration test
//! `crates/lint/tests/lint_workspace.rs` runs the same pass so plain
//! `cargo test` gates it.

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;

pub use lexer::mask_source;
pub use parse::{classify, parse_file, test_line_flags, FileClass};

use crate::callgraph::CallGraph;
use crate::symbols::Workspace;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the JSON report layout emitted by `--json`. Bump when a
/// field is added/renamed so `ci.sh` can verify it consumes what it
/// expects.
pub const SCHEMA_VERSION: u32 = 2;

/// Crate directory names whose library code models the simulation and
/// therefore must be free of wall-clock / ambient-randomness reads.
pub const SIM_CRATES: [&str; 6] = ["simcore", "hw", "xen", "rubis", "monitor", "core"];

/// Files whose output feeds reports/CSVs and therefore must iterate
/// deterministically (CL003).
pub const SORTED_OUTPUT_FILES: [&str; 3] = [
    "crates/monitor/src/store.rs",
    "crates/core/src/report.rs",
    "crates/core/src/compare.rs",
];

/// Files on the per-tick sampling hot path, which must stay columnar
/// (no host-keyed map lookups per sample — CL006).
pub const SAMPLING_PATH_FILES: [&str; 4] = [
    "crates/monitor/src/store.rs",
    "crates/monitor/src/synth.rs",
    "crates/core/src/workload.rs",
    "crates/core/src/batch.rs",
];

/// Files on the per-tick client-cohort hot path, which must stay
/// columnar: no per-client heap allocation (CL006's cohort half).
pub const COHORT_PATH_FILES: [&str; 2] =
    ["crates/rubis/src/cohort.rs", "crates/simcore/src/wheel.rs"];

/// Files that *define* the naive analysis oracles and are therefore
/// exempt from CL007.
pub const ORACLE_DEF_FILES: [&str; 2] = [
    "crates/analysis/src/spectrum.rs",
    "crates/analysis/src/lag.rs",
];

/// Files whose code runs inside a shard of the parallel sharded engine
/// and must therefore own its state exclusively (CL013): no shared-state
/// primitives — cross-shard traffic is channel messages only.
pub const SHARD_LOGIC_FILES: [&str; 2] =
    ["crates/core/src/fleet.rs", "crates/core/src/experiment.rs"];

/// Files on the out-of-core streaming path, which must keep memory
/// bounded by the chunk size (CL014): no whole-series materialization.
pub const STREAMING_PATH_FILES: [&str; 2] =
    ["crates/monitor/src/chunk.rs", "crates/core/src/trace.rs"];

/// Files on the per-tick online-profiling path, which must stay
/// incremental (CL015): no batch-recompute entry points — the batch
/// kernels are the test-only parity oracle for the online state.
pub const ONLINE_PATH_FILES: [&str; 3] = [
    "crates/analysis/src/online.rs",
    "crates/monitor/src/online.rs",
    "crates/core/src/online.rs",
];

/// Rule registry: `(id, summary)` for every rule the scanner knows.
pub const RULES: [(&str, &str); 15] = [
    (
        "CL001",
        "no Instant::now/SystemTime::now/thread_rng in simulation crates",
    ),
    (
        "CL002",
        "no .unwrap()/.expect(/panic! in library code paths",
    ),
    (
        "CL003",
        "no HashMap/HashSet in report-producing files (use BTreeMap/sorted)",
    ),
    (
        "CL004",
        "no bare f64 ==/!= against float literals in analysis",
    ),
    (
        "CL005",
        "no direct engine schedule_* calls in fault code (use fault::install)",
    ),
    (
        "CL006",
        "no host-keyed BTreeMap<(String/HostLabel, ..)> on the sampling path, no per-client Box/Vec<Session>/VecDeque allocation on the cohort path (use dense columns)",
    ),
    (
        "CL007",
        "no Goertzel/naive-Pearson oracle calls outside their defining files and tests (use the FFT + prefix-sum fast path)",
    ),
    (
        "CL008",
        "no Mutex/RwLock/RefCell, static mut, or Ordering::Relaxed reachable from par_map_ordered_with workers",
    ),
    (
        "CL009",
        "no rng.clone() or entropy-seeded RNG constructors in simulation crates (fork streams via SimRng::derive)",
    ),
    (
        "CL010",
        "no unchecked +/-/* on raw nanosecond integers outside simcore::time/queue (use checked_*/saturating_*)",
    ),
    (
        "CL011",
        "no wildcard _ arm in matches over FaultKind/Source/Family in library code",
    ),
    (
        "CL012",
        "files mutating engine/hw/xen state must carry an audit:: invariant check or a registered suppression",
    ),
    (
        "CL013",
        "no Arc/Rc/locks/cells/atomics/static mut/thread_local! in shard-logic files (cross-shard state travels as channel messages)",
    ),
    (
        "CL014",
        "no whole-series materialization (.to_vec()/collect::<Vec<f64>>/with_capacity(series_len) in streaming-path files (decode one chunk at a time)",
    ),
    (
        "CL015",
        "no batch-recompute entry points (SeriesScratch::/full_characterize/periodogram() in online-path files (push through the incremental kernels; batch is the test oracle)",
    ),
];

/// One `file:line` finding.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Rule ID, e.g. `"CL002"`.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed (or a rule-specific marker for
    /// file-level findings).
    pub snippet: String,
}

/// Result of a full workspace pass.
#[derive(Debug, Serialize)]
pub struct LintReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings silenced by `crates/lint/suppressions.txt`.
    pub suppressed: usize,
    /// Per-rule unsuppressed finding counts; every known rule is present
    /// (zero included) so consumers can detect rule additions.
    pub rule_counts: BTreeMap<String, usize>,
    /// Suppression entries that silenced nothing this pass, formatted as
    /// they appear in the file (`RULE PATH NEEDLE`). Non-empty makes the
    /// run fail unless `--allow-stale` is passed.
    pub stale_suppressions: Vec<String>,
    /// Unsuppressed findings, sorted by `(path, line, rule)`.
    pub violations: Vec<Diagnostic>,
}

impl Default for LintReport {
    fn default() -> Self {
        LintReport {
            schema: SCHEMA_VERSION,
            files_scanned: 0,
            suppressed: 0,
            rule_counts: RULES.iter().map(|(id, _)| (id.to_string(), 0)).collect(),
            stale_suppressions: Vec::new(),
            violations: Vec::new(),
        }
    }
}

impl LintReport {
    /// Whether the pass found nothing (after suppressions) and every
    /// suppression entry still matches something.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_suppressions.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} files scanned, {} violations, {} suppressed, {} stale suppression(s)",
            self.files_scanned,
            self.violations.len(),
            self.suppressed,
            self.stale_suppressions.len()
        )
    }

    /// Finalize bookkeeping derived from `violations`.
    fn tally(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        for (id, _) in RULES {
            self.rule_counts.insert(id.to_string(), 0);
        }
        for d in &self.violations {
            *self.rule_counts.entry(d.rule.clone()).or_insert(0) += 1;
        }
    }
}

/// An audited exception: silences `rule` findings in `path` on source
/// lines containing `needle`.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ID the exception applies to.
    pub rule: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Substring of the raw source line that identifies the audited site.
    pub needle: String,
}

impl Suppression {
    /// Whether this entry silences the diagnostic.
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule && self.path == d.path && d.snippet.contains(&self.needle)
    }

    /// The entry as written in the suppressions file.
    pub fn display(&self) -> String {
        format!("{} {} {}", self.rule, self.path, self.needle)
    }
}

/// Parse a suppressions file: one `RULE PATH NEEDLE...` triple per line,
/// `#` comments and blank lines ignored. The needle is everything after
/// the second field and may contain spaces.
pub fn parse_suppressions(text: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path), Some(needle)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        out.push(Suppression {
            rule: rule.to_string(),
            path: path.to_string(),
            needle: needle.trim().to_string(),
        });
    }
    out
}

/// Split diagnostics into kept and suppressed, and report which
/// suppression entries silenced nothing (stale).
pub fn apply_suppressions(
    diags: Vec<Diagnostic>,
    sups: &[Suppression],
) -> (Vec<Diagnostic>, usize, Vec<String>) {
    let mut used = vec![false; sups.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for d in diags {
        let mut hit = false;
        for (si, s) in sups.iter().enumerate() {
            if s.matches(&d) {
                used[si] = true;
                hit = true;
            }
        }
        if hit {
            suppressed += 1;
        } else {
            kept.push(d);
        }
    }
    let stale = sups
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(s, _)| s.display())
        .collect();
    (kept, suppressed, stale)
}

/// Run the full rule set over a set of in-memory files (workspace-relative
/// path, source). Returns unsuppressed findings sorted by
/// `(path, line, rule)`.
pub fn scan_files(inputs: &[(String, String)]) -> Vec<Diagnostic> {
    let files = inputs
        .iter()
        .map(|(rel, text)| parse::parse_file(rel, text))
        .collect();
    let ws = Workspace::build(files);
    let graph = CallGraph::build(&ws);
    let mut out = rules::run_all(&ws, &graph);
    out.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    out
}

/// Run every rule against one file's source, given its workspace-relative
/// path (which decides crate and class). Cross-file rules see a
/// single-file workspace. Returns unsuppressed findings.
pub fn scan_source(rel: &str, text: &str) -> Vec<Diagnostic> {
    scan_files(&[(rel.to_string(), text.to_string())])
}

/// Recursively collect `.rs` files under `crates/`, `tests/` and
/// `examples/`, skipping `target/`, `fixtures/` and `vendor/`. Returns
/// `(absolute, workspace-relative)` pairs sorted by relative path.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | "fixtures" | "vendor" | ".git") {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Workspace root as seen from this crate at compile time.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Run the full pass over the workspace, applying the checked-in
/// suppressions file and flagging stale entries.
pub fn scan_workspace(root: &Path) -> io::Result<LintReport> {
    let sup_path = root.join("crates/lint/suppressions.txt");
    let sups = if sup_path.is_file() {
        parse_suppressions(&fs::read_to_string(&sup_path)?)
    } else {
        Vec::new()
    };
    let mut inputs = Vec::new();
    for (abs, rel) in collect_rust_files(root)? {
        inputs.push((rel, fs::read_to_string(&abs)?));
    }
    let mut report = LintReport {
        files_scanned: inputs.len(),
        ..LintReport::default()
    };
    let diags = scan_files(&inputs);
    let (kept, suppressed, stale) = apply_suppressions(diags, &sups);
    report.violations = kept;
    report.suppressed = suppressed;
    report.stale_suppressions = stale;
    report.tally();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_strings_chars() {
        let src = "let x = \"Instant::now\"; // Instant::now\nlet c = 'a'; /* panic! */ let l: &'static str = y;";
        let m = mask_source(src);
        assert!(!m.contains("Instant::now"));
        assert!(!m.contains("panic!"));
        assert!(m.contains("'static"), "lifetimes survive: {m}");
        assert_eq!(m.split('\n').count(), 2);
    }

    #[test]
    fn masking_handles_raw_strings() {
        let src = "let s = r#\"panic! .unwrap() \"inner\" \"#; let t = 1;";
        let m = mask_source(src);
        assert!(!m.contains("panic!"));
        assert!(!m.contains(".unwrap()"));
        assert!(m.contains("let t = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_flagged() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let flags = test_line_flags(src);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn suppression_matching() {
        let sups = parse_suppressions(
            "# comment\nCL002 crates/x/src/a.rs contract panic here\n\nbadline\n",
        );
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, "CL002");
        assert_eq!(sups[0].needle, "contract panic here");
    }

    #[test]
    fn apply_suppressions_tracks_stale() {
        let diags = vec![Diagnostic {
            rule: "CL002".to_string(),
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: String::new(),
            snippet: "x.unwrap();".to_string(),
        }];
        let sups = parse_suppressions(
            "CL002 crates/x/src/a.rs x.unwrap\nCL002 crates/x/src/a.rs no_such_site\n",
        );
        let (kept, suppressed, stale) = apply_suppressions(diags, &sups);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
        assert_eq!(stale, vec!["CL002 crates/x/src/a.rs no_such_site"]);
    }

    #[test]
    fn report_counts_every_rule() {
        let mut r = LintReport::default();
        assert_eq!(r.rule_counts.len(), RULES.len());
        r.violations.push(Diagnostic {
            rule: "CL003".to_string(),
            path: "p".to_string(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
        });
        r.tally();
        assert_eq!(r.rule_counts["CL003"], 1);
        assert_eq!(r.rule_counts["CL001"], 0);
        assert_eq!(r.schema, SCHEMA_VERSION);
    }

    #[test]
    fn scan_source_fires_each_line_rule() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); x.unwrap(); }\n";
        let d = scan_source("crates/simcore/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "CL001"));
        assert!(d.iter().any(|d| d.rule == "CL002"));
        let d = scan_source(
            "crates/monitor/src/store.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(d.iter().any(|d| d.rule == "CL003"));
        let d = scan_source(
            "crates/analysis/src/x.rs",
            "fn f(x: f64) -> bool { x == 0.0 }\n",
        );
        assert!(d.iter().any(|d| d.rule == "CL004"));
        // Same patterns in a test file are allowlisted for CL002.
        let d = scan_source("crates/simcore/tests/x.rs", "fn f() { x.unwrap(); }\n");
        assert!(d.is_empty());
        // CL005: fault library code scheduling engine events directly.
        let src = "fn arm(e: &mut Engine<W>) { e.schedule_at(t, cb); e.schedule_in(d, cb); }\n";
        let d = scan_source("crates/core/src/faults.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "CL005").count(), 2);
        // The same calls outside fault files are not CL005's business.
        let d = scan_source("crates/core/src/workload.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL005"));
        // Nor in fault *test* code, which may drive engines directly.
        let d = scan_source("crates/simcore/tests/prop_fault.rs", src);
        assert!(d.is_empty());
        // CL006: host-keyed maps on the sampling path.
        let src = "struct S { m: BTreeMap<(String, MetricId), TimeSeries> }\n";
        let d = scan_source("crates/monitor/src/store.rs", src);
        assert!(d.iter().any(|d| d.rule == "CL006"));
        let d = scan_source("crates/bench/benches/store.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL006"));
        let d = scan_source("crates/core/src/report.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL006"));
        // CL006's cohort half: per-client heap allocation on the cohort
        // hot path, but not in cohort tests or unrelated library files.
        let src = "fn spawn() { let s = Box::new(Session::default()); q: VecDeque<u32>; }\n";
        let d = scan_source("crates/rubis/src/cohort.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "CL006").count(), 2);
        let d = scan_source(
            "crates/simcore/src/wheel.rs",
            "fn f() { let b = Box::new(1); }\n",
        );
        assert!(d.iter().any(|d| d.rule == "CL006"));
        let d = scan_source("crates/rubis/src/client.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL006"));
        let d = scan_source("crates/rubis/tests/prop_cohort.rs", src);
        assert!(d.is_empty());
        // CL007: oracle calls in library/binary code.
        let src = "fn f(xs: &[f64]) { let p = goertzel_periodogram(xs); let l = find_lag_naive(xs, xs, 5); }\n";
        let d = scan_source("crates/core/src/characterize.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "CL007").count(), 2);
        let d = scan_source("crates/analysis/src/spectrum.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL007"));
        let d = scan_source("crates/analysis/tests/prop.rs", src);
        assert!(!d.iter().any(|d| d.rule == "CL007"));
        // The scan-based fast path does not trip the oracle pattern.
        let d = scan_source(
            "crates/analysis/src/summary.rs",
            "fn f(xs: &[f64]) { let s = cross_correlation_scan(xs, xs, 5); }\n",
        );
        assert!(!d.iter().any(|d| d.rule == "CL007"));
    }

    #[test]
    fn scan_files_runs_cross_file_rules() {
        // A worker closure calling a helper that locks a Mutex, across
        // files: CL008 must follow the call edge.
        let files = vec![
            (
                "crates/core/src/sweep2.rs".to_string(),
                "use crate::helper::tally;\nfn run_all(items: &[u32]) {\n    par_map_ordered_with(items, 4, || (), |(), x| tally(*x));\n}\n"
                    .to_string(),
            ),
            (
                "crates/core/src/helper.rs".to_string(),
                "pub fn tally(x: u32) -> u32 {\n    let m = std::sync::Mutex::new(x);\n    *m.lock().unwrap_or_else(|e| e.into_inner())\n}\n"
                    .to_string(),
            ),
        ];
        let d = scan_files(&files);
        assert!(
            d.iter()
                .any(|d| d.rule == "CL008" && d.path == "crates/core/src/helper.rs"),
            "diagnostics: {d:#?}"
        );
    }
}
