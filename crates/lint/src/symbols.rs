//! Workspace symbol table.
//!
//! Indexes every parsed file's function items by name so the call graph
//! can resolve call sites conservatively: a bare name maps to every
//! function with that name (narrowed by `use` imports and path
//! qualifiers when available), a method name maps to every `impl` method
//! with that name.

use crate::parse::{FileAst, FnItem};
use std::collections::BTreeMap;

/// Reference to one function item: indices into
/// [`Workspace::files`] and [`FileAst::fns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`FileAst::fns`].
    pub item: usize,
}

/// The parsed workspace plus name indexes.
#[derive(Debug)]
pub struct Workspace {
    /// Parsed files, in input order.
    pub files: Vec<FileAst>,
    /// Every function, free or method, by bare name.
    pub by_name: BTreeMap<String, Vec<FnRef>>,
    /// `impl` methods by bare name.
    pub methods: BTreeMap<String, Vec<FnRef>>,
    /// `impl` methods by `"Type::name"`.
    pub typed_methods: BTreeMap<String, Vec<FnRef>>,
}

impl Workspace {
    /// Build the indexes over a set of parsed files.
    pub fn build(files: Vec<FileAst>) -> Self {
        let mut by_name: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        let mut typed_methods: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                let r = FnRef { file: fi, item: ii };
                by_name.entry(f.name.clone()).or_default().push(r);
                if let Some(ty) = &f.self_ty {
                    methods.entry(f.name.clone()).or_default().push(r);
                    typed_methods
                        .entry(format!("{ty}::{}", f.name))
                        .or_default()
                        .push(r);
                }
            }
        }
        Workspace {
            files,
            by_name,
            methods,
            typed_methods,
        }
    }

    /// The function item a reference points at.
    pub fn item(&self, r: FnRef) -> &FnItem {
        &self.files[r.file].fns[r.item]
    }

    /// The file a reference points into.
    pub fn file(&self, r: FnRef) -> &FileAst {
        &self.files[r.file]
    }

    /// Whether `module` plausibly names the scope of `r`'s file: its file
    /// stem, one of its inline modules, or its crate directory (with or
    /// without the `cloudchar_` lib-name prefix).
    pub fn in_module(&self, r: FnRef, module: &str) -> bool {
        let file = &self.files[r.file];
        let stem = file
            .rel
            .rsplit('/')
            .next()
            .and_then(|n| n.strip_suffix(".rs"))
            .unwrap_or("");
        let krate_of = module.strip_prefix("cloudchar_").unwrap_or(module);
        stem == module
            || file.krate == krate_of
            || self.files[r.file].fns[r.item]
                .mods
                .iter()
                .any(|m| m == module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn ws() -> Workspace {
        Workspace::build(vec![
            parse_file(
                "crates/simcore/src/engine.rs",
                "pub fn run() {}\nimpl Engine {\n    pub fn step(&mut self) {}\n}\n",
            ),
            parse_file("crates/hw/src/disk.rs", "pub fn run() {}\n"),
        ])
    }

    #[test]
    fn indexes_by_name_and_type() {
        let ws = ws();
        assert_eq!(ws.by_name["run"].len(), 2);
        assert_eq!(ws.methods["step"].len(), 1);
        assert_eq!(ws.typed_methods["Engine::step"].len(), 1);
        let step = ws.typed_methods["Engine::step"][0];
        assert_eq!(ws.item(step).name, "step");
        assert!(ws.item(step).mut_self);
    }

    #[test]
    fn module_scoping() {
        let ws = ws();
        let engine_run = ws.by_name["run"][0];
        assert!(ws.in_module(engine_run, "engine"));
        assert!(ws.in_module(engine_run, "simcore"));
        assert!(ws.in_module(engine_run, "cloudchar_simcore"));
        assert!(!ws.in_module(engine_run, "disk"));
    }
}
