//! CL012 fixture: hardware-state mutation with no audit coverage.
pub struct Widget {
    count: u64,
}

impl Widget {
    pub fn bump(&mut self) {
        self.count = self.count.saturating_add(1);
    }
}
