//! CL008 fixture: workers call only pure helpers.
pub fn run_all(items: &[u64]) -> Vec<u64> {
    par_map_ordered_with(items, 4, || (), |(), x| tally(*x))
}

fn tally(x: u64) -> u64 {
    x.wrapping_mul(2654435761)
}
