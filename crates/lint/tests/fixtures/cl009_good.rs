//! CL009 fixture: streams fork through the named-derive API.
pub fn fork(rng: &mut SimRng) -> SimRng {
    rng.derive("worker")
}
