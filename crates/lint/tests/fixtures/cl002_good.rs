//! CL002 fixture: fallible accessor returns Option.
pub fn pick(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}
