//! CL010 fixture: unchecked arithmetic on raw nanosecond integers.
pub fn next_tick(start_ns: u64, interval_ns: u64, i: u64) -> u64 {
    start_ns + interval_ns * i
}
