//! CL008 fixture: pool worker reaches shared mutable state through a
//! helper call.
use std::sync::Mutex;

pub fn run_all(items: &[u64]) -> Vec<u64> {
    par_map_ordered_with(items, 4, || (), |(), x| tally(*x))
}

fn tally(x: u64) -> u64 {
    let m = Mutex::new(x);
    if let Ok(g) = m.lock() {
        *g
    } else {
        0
    }
}
