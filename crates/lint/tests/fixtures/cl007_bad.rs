//! CL007 fixture: O(n^2) oracle call in production code.
pub fn spectrum(xs: &[f64]) -> Vec<f64> {
    goertzel_periodogram(xs)
}
