//! CL012 fixture: mutation site carries an audit invariant check.
pub struct Widget {
    count: u64,
}

impl Widget {
    pub fn bump(&mut self) {
        let next = self.count.saturating_add(1);
        cloudchar_simcore::audit::check("hw.widget.monotonic", 0, next >= self.count, || {
            String::from("counter wrapped")
        });
        self.count = next;
    }
}
