//! CL015 fixture: live profiling tick that recomputes the whole window
//! with the batch engine instead of updating incremental state.

pub fn tick_profile(window: &[f64]) -> usize {
    let mut scratch = SeriesScratch::new();
    scratch.load(window);
    let peaks = periodogram(window);
    let profiles = full_characterize(window, 4);
    peaks.len() + profiles
}
