//! CL014 fixture: chunk-at-a-time streaming keeps memory bounded.

pub struct Accum {
    count: u64,
    sum: f64,
}

impl Accum {
    #[must_use]
    pub fn absorb_chunk(self, chunk: &[f64]) -> Self {
        chunk.iter().fold(self, |a, &v| Accum {
            count: a.count.saturating_add(1),
            sum: a.sum + v,
        })
    }

    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}
