//! CL005 fixture: fault timing stays inside the replayable plan.
pub fn arm(plan: &mut FaultPlan, ev: FaultEvent) {
    plan.push(ev);
}
