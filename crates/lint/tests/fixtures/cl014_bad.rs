//! CL014 fixture: out-of-core consumer materializing whole series.

pub fn materialize(chunks: &[Vec<f64>], series_len: usize) -> Vec<f64> {
    let mut all = Vec::with_capacity(series_len);
    for chunk in chunks {
        let copy = chunk.iter().copied().collect::<Vec<f64>>();
        all.extend(copy);
    }
    all
}

pub fn snapshot(tail: &[f64]) -> Vec<f64> {
    tail.to_vec()
}
