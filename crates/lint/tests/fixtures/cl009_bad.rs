//! CL009 fixture: duplicated and entropy-seeded RNG streams.
pub fn fork(rng: &SimRng) -> SimRng {
    rng.clone()
}

pub fn fresh() -> SmallRng {
    SmallRng::from_entropy()
}
