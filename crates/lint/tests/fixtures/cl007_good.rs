//! CL007 fixture: the fast scan path.
pub fn lag(xs: &[f64]) -> Vec<f64> {
    cross_correlation_scan(xs, xs, 5)
}
