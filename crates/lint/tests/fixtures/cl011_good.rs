//! CL011 fixture: every variant spelled out.
pub fn label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::CpuHog => "cpu",
        FaultKind::MemLeak => "mem",
        FaultKind::DiskSlow => "disk",
    }
}
