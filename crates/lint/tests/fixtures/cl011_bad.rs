//! CL011 fixture: wildcard arm in a match over a watched enum.
pub fn label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::CpuHog => "cpu",
        _ => "other",
    }
}
