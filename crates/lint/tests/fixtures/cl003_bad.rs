//! CL003 fixture: hash-ordered map in a report-producing file.
use std::collections::HashMap;

pub fn tally(names: &[String]) -> usize {
    let m: HashMap<&str, usize> = HashMap::new();
    m.len() + names.len()
}
