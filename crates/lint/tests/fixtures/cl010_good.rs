//! CL010 fixture: saturating arithmetic on raw nanosecond integers.
pub fn next_tick(start_ns: u64, interval_ns: u64, i: u64) -> u64 {
    start_ns.saturating_add(interval_ns.saturating_mul(i))
}
