//! CL005 fixture: fault code scheduling engine events directly.
pub fn arm<W>(e: &mut Engine<W>, t: SimTime, cb: Callback<W>) {
    e.schedule_at(t, cb);
}
