//! CL006 fixture: host-keyed map on the sampling path.
use std::collections::BTreeMap;

pub struct Keyed {
    pub series: BTreeMap<(String, MetricId), Vec<f64>>,
}
