//! CL006 fixture: host-keyed map on the sampling path, and per-client
//! heap allocation on the cohort path.
use std::collections::BTreeMap;

pub struct Keyed {
    pub series: BTreeMap<(String, MetricId), Vec<f64>>,
}

pub fn spawn_client(mix: Mix) -> Box<Session> {
    Box::new(Session::new(mix))
}
