//! CL006 fixture: interned hosts with dense metric columns; client
//! state in dense parallel columns.
pub struct Columnar {
    pub hosts: Vec<HostId>,
    pub columns: Vec<Vec<f64>>,
    pub epochs: Vec<u64>,
}
