//! CL006 fixture: interned hosts with dense metric columns.
pub struct Columnar {
    pub hosts: Vec<HostId>,
    pub columns: Vec<Vec<f64>>,
}
