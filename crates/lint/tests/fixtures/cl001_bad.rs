//! CL001 fixture: wall-clock reads inside a simulation crate.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
