//! CL015 fixture: the incremental online path — per-tick pushes update
//! sliding state in place; the batch engine stays the test-only oracle.

pub struct LiveSeries {
    profiler: OnlineProfiler,
    ticks: u64,
}

impl LiveSeries {
    pub fn observe(&mut self, x: f64) -> Option<OnlineProfile> {
        self.profiler.push(x);
        let next = self.ticks.saturating_add(1);
        cloudchar_simcore::audit::check("online.ticks.monotonic", 0, next > self.ticks, || {
            format!("tick counter wrapped: {} -> {next}", self.ticks)
        });
        self.ticks = next;
        if self.ticks % self.profiler.window() as u64 == 0 {
            Some(self.profiler.profile())
        } else {
            None
        }
    }
}
