//! CL004 fixture: bare float equality in analysis code.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}
