//! CL013 fixture: shard state owned exclusively; cross-shard data
//! travels as plain message values drained from an outbox.

pub struct Envelope {
    pub src: u32,
    pub value: u64,
}

pub struct Shard {
    total: u64,
    outbox: Vec<Envelope>,
}

impl Shard {
    pub fn on_message(&mut self, msg: Envelope) {
        let next = self.total.saturating_add(msg.value);
        cloudchar_simcore::audit::check("shard.total.monotonic", 0, next >= self.total, || {
            String::from("shard total wrapped")
        });
        self.total = next;
    }

    pub fn drain(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outbox)
    }
}
