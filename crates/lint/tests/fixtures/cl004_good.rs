//! CL004 fixture: epsilon comparison.
pub fn is_zero(x: f64) -> bool {
    x.abs() < 1e-12
}
