//! CL001 fixture: time flows from the simulation clock.
use crate::SimTime;

pub fn stamp(now: SimTime) -> SimTime {
    now
}
