//! CL003 fixture: deterministic iteration order.
use std::collections::BTreeMap;

pub fn tally(names: &[String]) -> usize {
    let m: BTreeMap<&str, usize> = BTreeMap::new();
    m.len() + names.len()
}
