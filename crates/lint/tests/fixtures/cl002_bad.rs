//! CL002 fixture: panicking accessor in library code.
pub fn pick(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
