//! CL013 fixture: shard logic sharing mutable state across shards.
use std::sync::{Arc, Mutex};

pub struct SharedShard {
    counter: Arc<Mutex<u64>>,
}

impl SharedShard {
    pub fn bump(&self) {
        if let Ok(mut n) = self.counter.lock() {
            *n = n.saturating_add(1);
        }
    }
}
