//! Gate the workspace on the lint pass: `cargo test` fails if any rule
//! regresses, every rule's fixture pair is verified (bad fires, good is
//! clean), and regression tests pin the v1 scanner bugs the v2 lexer
//! pipeline fixed.

use cloudchar_lint::{
    apply_suppressions, collect_rust_files, mask_source, parse_suppressions, scan_source,
    scan_workspace, test_line_flags, workspace_root, LintReport, RULES, SCHEMA_VERSION,
};
use std::fs;

/// Virtual workspace path each rule's fixtures are scanned under, chosen
/// so the rule's file/crate gate is open. Kept in sync with the binary's
/// `--fixture` mode.
const FIXTURE_TABLE: [(&str, &str); 16] = [
    ("CL001", "crates/simcore/src/fixture.rs"),
    ("CL002", "crates/simcore/src/fixture.rs"),
    ("CL003", "crates/monitor/src/store.rs"),
    ("CL004", "crates/analysis/src/fixture.rs"),
    ("CL005", "crates/core/src/faults.rs"),
    ("CL006", "crates/monitor/src/store.rs"),
    // CL006's cohort half: the same pair must fire (bad) / stay clean
    // (good) under a cohort-path file too.
    ("CL006", "crates/rubis/src/cohort.rs"),
    ("CL007", "crates/core/src/characterize.rs"),
    ("CL008", "crates/core/src/fixture.rs"),
    ("CL009", "crates/simcore/src/fixture.rs"),
    ("CL010", "crates/monitor/src/fixture.rs"),
    ("CL011", "crates/simcore/src/fixture.rs"),
    ("CL012", "crates/hw/src/fixture.rs"),
    ("CL013", "crates/core/src/fleet.rs"),
    ("CL014", "crates/core/src/trace.rs"),
    ("CL015", "crates/analysis/src/online.rs"),
];

#[test]
fn workspace_is_lint_clean() {
    let report = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 50, "walked too few files");
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.snippet))
        .collect();
    assert!(
        report.violations.is_empty(),
        "lint violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.stale_suppressions.is_empty(),
        "stale suppressions:\n{}",
        report.stale_suppressions.join("\n")
    );
    assert!(report.is_clean());
}

#[test]
fn every_rule_has_a_verified_failing_fixture_pair() {
    let dir = workspace_root().join("crates/lint/tests/fixtures");
    for (rule, vpath) in FIXTURE_TABLE {
        let stem = rule.to_lowercase();
        let bad = fs::read_to_string(dir.join(format!("{stem}_bad.rs")))
            .unwrap_or_else(|e| panic!("{stem}_bad.rs unreadable: {e}"));
        let good = fs::read_to_string(dir.join(format!("{stem}_good.rs")))
            .unwrap_or_else(|e| panic!("{stem}_good.rs unreadable: {e}"));
        let bad_diags = scan_source(vpath, &bad);
        assert!(
            bad_diags.iter().any(|d| d.rule == rule),
            "{stem}_bad.rs under {vpath} did not fire {rule}; got: {bad_diags:#?}"
        );
        let good_diags = scan_source(vpath, &good);
        assert!(
            good_diags.is_empty(),
            "{stem}_good.rs under {vpath} must be fully clean; got: {good_diags:#?}"
        );
    }
    // The table is the coverage contract: every registered rule appears.
    for (id, _) in RULES {
        assert!(
            FIXTURE_TABLE.iter().any(|(r, _)| *r == id),
            "rule {id} has no fixture pair"
        );
    }
}

#[test]
fn fixture_is_never_walked() {
    // The fixtures must not pollute the real pass.
    let files = collect_rust_files(&workspace_root()).expect("walk");
    assert!(files.iter().all(|(_, rel)| !rel.contains("fixtures/")));
    // But the walk does include library sources and integration tests.
    assert!(files
        .iter()
        .any(|(_, rel)| rel == "crates/simcore/src/engine.rs"));
    assert!(files.iter().any(|(_, rel)| rel == "tests/determinism.rs"));
}

#[test]
fn suppressions_are_rule_and_path_scoped() {
    let sups = parse_suppressions("CL002 crates/a/src/x.rs checked thing\n");
    assert_eq!(sups.len(), 1);
    // A suppression for one path must not hide the same pattern elsewhere:
    // scan_source never applies suppressions (only scan_workspace does),
    // so a seeded violation still surfaces here.
    let d = scan_source("crates/simcore/src/y.rs", "fn f() { x.unwrap(); }\n");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "CL002");
}

#[test]
fn stale_suppressions_are_detected() {
    let diags = scan_source("crates/simcore/src/y.rs", "fn f() { x.unwrap(); }\n");
    let sups = parse_suppressions(
        "CL002 crates/simcore/src/y.rs x.unwrap\nCL002 crates/simcore/src/y.rs long_gone_site\n",
    );
    let (kept, suppressed, stale) = apply_suppressions(diags, &sups);
    assert!(kept.is_empty());
    assert_eq!(suppressed, 1);
    assert_eq!(stale, vec!["CL002 crates/simcore/src/y.rs long_gone_site"]);
}

#[test]
fn every_checked_in_suppression_still_matches_a_finding() {
    // The same property scan_workspace enforces via stale detection,
    // re-verified here per entry against a single-file scan so a failure
    // names the exact rotted line.
    let root = workspace_root();
    let text = fs::read_to_string(root.join("crates/lint/suppressions.txt")).expect("suppressions");
    let sups = parse_suppressions(&text);
    assert!(!sups.is_empty());
    for s in &sups {
        let path = root.join(&s.path);
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("suppressed file {} unreadable: {e}", s.path));
        let hits = scan_source(&s.path, &src);
        assert!(
            hits.iter()
                .any(|d| d.rule == s.rule && d.snippet.contains(&s.needle)),
            "suppression no longer matches anything: {} {} {}",
            s.rule,
            s.path,
            s.needle
        );
    }
}

#[test]
fn json_report_schema_is_versioned() {
    let report = LintReport::default();
    let json = serde_json::to_string(&report).expect("serialize");
    assert!(
        json.contains(&format!("\"schema\":{SCHEMA_VERSION}")),
        "{json}"
    );
    for (id, _) in RULES {
        assert!(
            json.contains(&format!("\"{id}\":0")),
            "missing {id} in {json}"
        );
    }
    assert!(json.contains("\"stale_suppressions\":[]"));
    assert!(json.contains("\"violations\":[]"));
}

/// Regression tests against the v1 scanner. Each test embeds the v1
/// behaviour inline (the literal-attribute brace matcher, raw substring
/// matching) and asserts that the v2 pipeline fixes it while the legacy
/// logic demonstrably still has the bug.
mod legacy {
    use super::*;

    /// The v1 test-region tracker verbatim: finds the *literal* text
    /// `#[cfg(test)]` in the masked source and brace-matches from there.
    fn legacy_test_line_flags(masked: &str) -> Vec<bool> {
        let n_lines = masked.split('\n').count();
        let mut flags = vec![false; n_lines];
        let b = masked.as_bytes();
        let line_of = |pos: usize| -> usize {
            b[..pos.min(b.len())]
                .iter()
                .filter(|&&c| c == b'\n')
                .count()
        };
        for (start, _) in masked.match_indices("#[cfg(test)]") {
            let mut i = start + "#[cfg(test)]".len();
            while i < b.len() && b[i] != b'{' && b[i] != b';' {
                i += 1;
            }
            let end = if i < b.len() && b[i] == b'{' {
                let mut depth = 0usize;
                let mut j = i;
                loop {
                    if j >= b.len() {
                        break j;
                    }
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break j;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                i
            };
            let (ls, le) = (line_of(start), line_of(end));
            for flag in flags.iter_mut().take(le + 1).skip(ls) {
                *flag = true;
            }
        }
        flags
    }

    #[test]
    fn spaced_cfg_test_attribute_is_recognized() {
        // `#[cfg( test )]` is the same attribute after tokenization, but
        // the v1 literal matcher missed it and flagged nothing.
        let src = "#[cfg( test )]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let legacy = legacy_test_line_flags(&mask_source(src));
        assert!(legacy.iter().all(|&f| !f), "v1 missed the spaced form");
        let v2 = test_line_flags(src);
        assert!(v2[..4].iter().all(|&f| f), "v2 flags: {v2:?}");
        // End to end: the unwrap inside the test mod no longer fires.
        assert!(scan_source("crates/simcore/src/x.rs", src).is_empty());
    }

    #[test]
    fn composite_cfg_predicates_are_recognized() {
        // `#[cfg(all(test, feature = "slow"))]` is test-only code; v1
        // only knew the exact `#[cfg(test)]` spelling.
        let src =
            "#[cfg(all(test, feature = \"slow\"))]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let legacy = legacy_test_line_flags(&mask_source(src));
        assert!(legacy.iter().all(|&f| !f), "v1 missed composite cfg");
        assert!(test_line_flags(src)[..4].iter().all(|&f| f));
        assert!(scan_source("crates/simcore/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_attribute_exempts_single_functions() {
        // A `#[test]` fn outside any `#[cfg(test)]` mod (it happens in
        // doctest-ish helper layouts) is test code; v1 flagged nothing
        // and CL002 fired on its asserts.
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn lib() -> u64 { 1 }\n";
        let legacy = legacy_test_line_flags(&mask_source(src));
        assert!(legacy.iter().all(|&f| !f));
        let d = scan_source("crates/simcore/src/x.rs", src);
        assert!(d.is_empty(), "v2 must exempt #[test] fns; got {d:#?}");
    }

    #[test]
    fn substring_matches_respect_identifier_boundaries() {
        // v1 matched rule patterns with raw `contains`, so `MyHashMap`
        // tripped CL003 and `thread_rng_free` tripped CL001.
        let src = "pub struct MyHashMap;\npub fn thread_rng_free() {}\n";
        assert!(src.contains("HashMap") && src.contains("thread_rng"));
        let d = scan_source("crates/monitor/src/store.rs", src);
        assert!(
            d.is_empty(),
            "boundary-crossing matches must not fire: {d:#?}"
        );
    }

    #[test]
    fn cfg_test_use_declarations_are_exempt() {
        // `#[cfg(test)] use …;` has no braces; the v1 matcher flagged
        // only up to the `;` scan start and left the line exposed when
        // the attribute and item shared a line after masking shifts.
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() -> u64 { 1 }\n";
        let d = scan_source("crates/monitor/src/store.rs", src);
        assert!(d.is_empty(), "test-only use must not fire CL003: {d:#?}");
    }
}
