//! Gate the workspace on the lint pass: `cargo test` fails if any rule
//! regresses, and the self-test fixture proves every rule can fire.

use cloudchar_lint::{parse_suppressions, scan_source, scan_workspace, workspace_root, RULES};

#[test]
fn workspace_is_lint_clean() {
    let report = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 50, "walked too few files");
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.snippet))
        .collect();
    assert!(
        report.is_clean(),
        "lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn fixture_triggers_every_rule() {
    let fixture = workspace_root().join("crates/lint/fixtures/violations.rs");
    let text = std::fs::read_to_string(fixture).expect("fixture readable");
    // Scan under the same paths the binary's --fixture mode uses: one
    // that activates CL001/CL002/CL003, one that activates CL004, and a
    // fault library path that activates CL005.
    let mut diags = scan_source("crates/monitor/src/store.rs", &text);
    diags.extend(scan_source("crates/analysis/src/fixture.rs", &text));
    diags.extend(scan_source("crates/core/src/faults.rs", &text));
    for (rule, _) in RULES {
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "fixture did not trigger {rule}; diagnostics: {diags:?}"
        );
    }
    // Non-empty findings is what makes the binary exit non-zero.
    assert!(!diags.is_empty());
}

#[test]
fn fixture_is_never_walked() {
    // The fixture must not pollute the real pass.
    let files = cloudchar_lint::collect_rust_files(&workspace_root()).expect("walk");
    assert!(files.iter().all(|(_, rel)| !rel.contains("fixtures/")));
    // But the walk does include library sources and integration tests.
    assert!(files
        .iter()
        .any(|(_, rel)| rel == "crates/simcore/src/engine.rs"));
    assert!(files.iter().any(|(_, rel)| rel == "tests/determinism.rs"));
}

#[test]
fn suppressions_are_rule_and_path_scoped() {
    let sups = parse_suppressions("CL002 crates/a/src/x.rs checked thing\n");
    assert_eq!(sups.len(), 1);
    // A suppression for one path must not hide the same pattern elsewhere:
    // scan_source never applies suppressions (only scan_workspace does),
    // so a seeded violation still surfaces here.
    let d = scan_source("crates/simcore/src/y.rs", "fn f() { x.unwrap(); }\n");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].rule, "CL002");
}

#[test]
fn every_checked_in_suppression_still_matches_a_finding() {
    // Stale suppressions hide nothing but rot the audit trail: each
    // entry must still silence at least one real finding.
    let root = workspace_root();
    let text =
        std::fs::read_to_string(root.join("crates/lint/suppressions.txt")).expect("suppressions");
    let sups = parse_suppressions(&text);
    assert!(!sups.is_empty());
    for s in &sups {
        let path = root.join(&s.path);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("suppressed file {} unreadable: {e}", s.path));
        let hits = scan_source(&s.path, &src);
        assert!(
            hits.iter()
                .any(|d| d.rule == s.rule && d.snippet.contains(&s.needle)),
            "suppression no longer matches anything: {} {} {}",
            s.rule,
            s.path,
            s.needle
        );
    }
}
