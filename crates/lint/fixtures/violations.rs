// Seeded-violation fixture for the cloudchar-lint self-test.
//
// This file is NEVER compiled (fixtures/ is outside any target and the
// scanner's workspace walk skips it). The integration test and the
// `--fixture` CLI flag scan it as if it were simulation-library code and
// must report every rule below — proving the linter exits non-zero when
// a rule regresses.

use std::collections::HashMap; // CL003 when scanned as a report file
use std::time::Instant; // CL001

// CL006 when scanned as a sampling-path file: a host-keyed map means a
// String allocation and a map walk on every recorded sample.
pub type KeyedSamples = BTreeMap<(String, MetricId), TimeSeries>;

pub fn seeded_violations(samples: &HashMap<String, f64>) -> f64 {
    let started = Instant::now(); // CL001: wall clock in a sim crate
    let first = samples.values().next().unwrap(); // CL002
    let second = samples.get("x").expect("missing sample"); // CL002
    if *first == 0.0 {
        // CL004 when scanned as analysis code
        panic!("zero sample after {:?}", started.elapsed()); // CL002
    }
    first + second
}

pub fn rogue_fault_arm(engine: &mut Engine<W>) {
    // CL005 when scanned as a fault library file: fault timing must go
    // through fault::install, not straight onto the calendar queue.
    engine.schedule_at(SimTime::ZERO, |_, _| {});
    engine.schedule_in(SimDuration::ZERO, |_, _| {});
}

pub fn oracle_in_production(xs: &[f64]) -> usize {
    // CL007 when scanned as analysis/core library code: the Goertzel
    // spectrum and naive Pearson scan are test oracles, not the engine.
    let peaks = goertzel_periodogram(xs);
    let lag = find_lag_naive(xs, xs, 10);
    peaks.len() + usize::from(lag.is_some())
}
