//! Differential proptests for the sharded runner: for *arbitrary*
//! topologies (random channels, random latencies including zero) and
//! arbitrary cross-shard message patterns, the conservative windowed
//! executor must reproduce the single-queue oracle's execution order
//! exactly — at any worker count — and the lookahead horizons must
//! never admit a straggler (checked through the `shard.merge_order`
//! audit invariant). Zero-lookahead topologies must degrade to correct
//! serial order instead of deadlocking.

use cloudchar_simcore::shard::{RunMode, ShardCtx, ShardId, ShardLogic, ShardedEngine, Topology};
use cloudchar_simcore::{audit, SimDuration, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scripted local event: note something, or ping a neighbor with a
/// hop budget that triggers a chain of replies.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Note(u32),
    Ping {
        dst: ShardId,
        extra_ns: u64,
        hops: u32,
    },
}

/// A shard executing a scripted schedule, logging every unit it runs in
/// order. The log is the differential fingerprint.
struct ScriptShard {
    pending: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    seq: u64,
    log: Vec<(u64, String)>,
}

impl ScriptShard {
    fn new() -> Self {
        ScriptShard {
            pending: BinaryHeap::new(),
            seq: 0,
            log: Vec::new(),
        }
    }

    fn push(&mut self, t: SimTime, ev: Ev) {
        self.pending.push(Reverse((t, self.seq, ev)));
        self.seq += 1;
    }
}

impl ShardLogic for ScriptShard {
    type Msg = u32; // remaining hops

    fn next_local(&mut self) -> Option<SimTime> {
        self.pending.peek().map(|Reverse((t, _, _))| *t)
    }

    fn run_local(&mut self, ctx: &mut ShardCtx<'_, u32>) -> u64 {
        let mut ran = 0;
        loop {
            match self.pending.peek() {
                Some(Reverse((t, _, _))) if *t < ctx.limit() => {}
                _ => break,
            }
            let Some(Reverse((t, _, ev))) = self.pending.pop() else {
                break;
            };
            ran += 1;
            match ev {
                Ev::Note(tag) => self.log.push((t.as_nanos(), format!("note:{tag}"))),
                Ev::Ping {
                    dst,
                    extra_ns,
                    hops,
                } => {
                    self.log.push((t.as_nanos(), format!("ping->{dst}:{hops}")));
                    ctx.send(t, dst, SimDuration::from_nanos(extra_ns), hops);
                }
            }
        }
        ran
    }

    fn on_message(&mut self, ctx: &mut ShardCtx<'_, u32>, src: ShardId, hops: u32) {
        let t = ctx.now();
        self.log.push((t.as_nanos(), format!("recv<-{src}:{hops}")));
        if hops > 0 {
            // Reply over the reverse channel when it exists; otherwise
            // the chain ends here.
            if let Some(lat) = ctx.channel_latency(src) {
                ctx.send(t, src, lat, hops - 1);
            }
        }
    }
}

/// Raw generated plan: channel matrix plus scripted events.
#[derive(Debug, Clone)]
struct Plan {
    shards: u32,
    /// For each ordered pair `src * n + dst` (src != dst): latency in
    /// nanoseconds, or `None` for no channel.
    links: Vec<Option<u64>>,
    /// `(shard, at_ms, event)` seeds.
    events: Vec<(u32, u64, Ev)>,
}

fn build(plan: &Plan) -> ShardedEngine<ScriptShard> {
    let n = plan.shards;
    let mut topo = Topology::new(n);
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            if let Some(lat) = plan.links[(src * n + dst) as usize] {
                topo.link(src, dst, SimDuration::from_nanos(lat));
            }
        }
    }
    let mut shards: Vec<ScriptShard> = (0..n).map(|_| ScriptShard::new()).collect();
    for (shard, at_ms, ev) in &plan.events {
        shards[*shard as usize].push(SimTime::from_nanos(at_ms * 1_000_000), ev.clone());
    }
    ShardedEngine::new(topo, shards)
}

fn run_logs(plan: &Plan, mode: RunMode, audited: bool) -> (Vec<Vec<(u64, String)>>, bool) {
    if audited {
        audit::enable();
    }
    let mut engine = build(plan);
    engine.run(SimTime::from_secs(2), mode);
    let clean = if audited {
        let report = audit::take_report();
        report
            .violations
            .iter()
            .all(|v| v.invariant != "shard.merge_order" && v.invariant != "shard.lookahead")
    } else {
        true
    };
    let logs = engine.into_logics().into_iter().map(|s| s.log).collect();
    (logs, clean)
}

/// Raw event tuple: `((shard, at_ms, kind), (dst_pick, extra_ns, hops), tag)`.
type RawEvent = ((u32, u64, u8), (u32, u64, u32), u32);

/// Generator: a random plan over 2–4 shards. Channels appear with
/// random latencies (possibly zero); every scripted ping targets an
/// existing channel with a delay at or above its latency. The link grid
/// is generated at the 4×4 maximum and cut down to `n` in the map.
fn arb_plan(zero_lookahead: bool) -> impl Strategy<Value = Plan> {
    let raw = (
        2u32..5,
        proptest::collection::vec(proptest::option::of(0u64..5_000_000), 16..17),
        proptest::collection::vec(
            (
                (0u32..4, 0u64..40, 0u8..2),
                (0u32..4, 0u64..3_000_000, 0u32..3),
                any::<u32>(),
            ),
            1..24,
        ),
    );
    raw.prop_map(
        move |(n, grid, raw_events): (u32, Vec<Option<u64>>, Vec<RawEvent>)| {
            let mut links: Vec<Option<u64>> = vec![None; (n * n) as usize];
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    links[(src * n + dst) as usize] =
                        grid[(src * 4 + dst) as usize].map(|l| if zero_lookahead { 0 } else { l });
                }
            }
            let events = raw_events
                .into_iter()
                .map(|((shard, at_ms, kind), (dst_pick, extra, hops), tag)| {
                    let shard = shard % n;
                    // Find an outgoing channel for pings, scanning from the
                    // picked destination; fall back to a note.
                    let mut ev = Ev::Note(tag);
                    if kind == 1 {
                        for step in 0..n {
                            let dst = (dst_pick + step) % n;
                            if dst == shard {
                                continue;
                            }
                            if let Some(lat) = links[(shard * n + dst) as usize] {
                                let extra = if zero_lookahead { 0 } else { extra };
                                ev = Ev::Ping {
                                    dst,
                                    extra_ns: lat + extra,
                                    hops,
                                };
                                break;
                            }
                        }
                    }
                    (shard, at_ms, ev)
                })
                .collect();
            Plan {
                shards: n,
                links,
                events,
            }
        },
    )
}

proptest! {
    /// Arbitrary message patterns: the windowed runner (serial and
    /// parallel) reproduces the single-queue oracle's per-shard unit
    /// order exactly, and the audited run admits no straggler and no
    /// lookahead breach.
    #[test]
    fn windowed_matches_single_queue_oracle(plan in arb_plan(false)) {
        let (oracle, oracle_clean) = run_logs(&plan, RunMode::SingleQueue, true);
        prop_assert!(oracle_clean, "oracle run violated shard invariants");
        let (serial, serial_clean) = run_logs(&plan, RunMode::Windowed { jobs: 1 }, true);
        prop_assert!(serial_clean, "windowed jobs=1 admitted a straggler");
        prop_assert_eq!(&serial, &oracle, "jobs=1 diverged from oracle");
        let (parallel, par_clean) = run_logs(&plan, RunMode::Windowed { jobs: 3 }, true);
        prop_assert!(par_clean, "windowed jobs=3 admitted a straggler");
        prop_assert_eq!(&parallel, &oracle, "jobs=3 diverged from oracle");
    }

    /// Zero-lookahead topologies: every channel latency (and message
    /// delay) is zero, so no conservative window can open. The runner
    /// must degrade to serial fallback steps with order still identical
    /// to the oracle — and must terminate (no deadlock).
    #[test]
    fn zero_lookahead_degrades_to_serial(plan in arb_plan(true)) {
        let (oracle, _) = run_logs(&plan, RunMode::SingleQueue, false);
        let (serial, clean1) = run_logs(&plan, RunMode::Windowed { jobs: 1 }, true);
        prop_assert!(clean1, "zero-lookahead jobs=1 admitted a straggler");
        prop_assert_eq!(&serial, &oracle, "zero-lookahead jobs=1 diverged");
        let (parallel, clean2) = run_logs(&plan, RunMode::Windowed { jobs: 4 }, true);
        prop_assert!(clean2, "zero-lookahead jobs=4 admitted a straggler");
        prop_assert_eq!(&parallel, &oracle, "zero-lookahead jobs=4 diverged");
    }

    /// The global pop order — every unit tagged `(time, shard)` and
    /// merged — is preserved: concatenating per-shard logs and sorting
    /// by time must give the same multiset sequence for oracle and
    /// windowed runs. (Sharper than per-shard equality when events
    /// interleave across shards at equal times.)
    #[test]
    fn global_time_order_is_preserved(plan in arb_plan(false)) {
        let (oracle, _) = run_logs(&plan, RunMode::SingleQueue, false);
        let (parallel, _) = run_logs(&plan, RunMode::Windowed { jobs: 2 }, false);
        let flatten = |logs: &Vec<Vec<(u64, String)>>| {
            let mut all: Vec<(u64, u32, usize, String)> = Vec::new();
            for (shard, log) in logs.iter().enumerate() {
                for (pos, (t, s)) in log.iter().enumerate() {
                    all.push((*t, shard as u32, pos, s.clone()));
                }
            }
            all.sort();
            all
        };
        prop_assert_eq!(flatten(&parallel), flatten(&oracle));
    }
}
