//! Property-based tests for the simulation core.

use cloudchar_simcore::{Dist, Engine, Sample, SimDuration, SimRng, SimTime, Welford};
use proptest::prelude::*;

proptest! {
    /// Events always execute in (time, insertion) order, regardless of
    /// the order they were scheduled in.
    #[test]
    fn engine_executes_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        struct W { log: Vec<(u64, usize)> }
        let mut engine: Engine<W> = Engine::new();
        let mut world = W { log: Vec::new() };
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), move |e, w: &mut W| {
                w.log.push((e.now().as_nanos(), i));
            });
        }
        engine.run(&mut world);
        prop_assert_eq!(world.log.len(), times.len());
        // Times non-decreasing; ties broken by insertion index.
        for pair in world.log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1);
            }
        }
    }

    /// Splitting a run at an arbitrary deadline never changes the result.
    #[test]
    fn engine_run_until_split_invariant(
        times in proptest::collection::vec(0u64..1_000_000, 1..100),
        split in 0u64..1_000_000,
    ) {
        struct W { log: Vec<u64> }
        fn build(times: &[u64]) -> (Engine<W>, W) {
            let mut engine: Engine<W> = Engine::new();
            for &t in times {
                engine.schedule_at(SimTime::from_nanos(t), move |e, w: &mut W| {
                    w.log.push(e.now().as_nanos());
                });
            }
            (engine, W { log: Vec::new() })
        }
        let (mut e1, mut w1) = build(&times);
        e1.run(&mut w1);
        let (mut e2, mut w2) = build(&times);
        e2.run_until(&mut w2, SimTime::from_nanos(split));
        e2.run(&mut w2);
        prop_assert_eq!(w1.log, w2.log);
    }

    /// All distributions produce finite, non-negative samples (except
    /// lognormal which is positive but may be large).
    #[test]
    fn distributions_sample_sanely(seed in any::<u64>(), mean in 0.001f64..1e6) {
        let mut rng = SimRng::new(seed);
        let dists = [
            Dist::Constant { value: mean },
            Dist::Uniform { lo: 0.0, hi: mean },
            Dist::Exponential { mean },
            Dist::Erlang { k: 4, mean },
            Dist::Normal { mean, std_dev: mean / 3.0 },
            Dist::Pareto { x_min: mean, alpha: 2.5 },
        ];
        for d in &dists {
            prop_assert!(d.validate().is_ok());
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{d:?} gave {x}");
            }
        }
    }

    /// Same seed, same stream — for any distribution.
    #[test]
    fn sampling_is_deterministic(seed in any::<u64>(), mean in 0.01f64..100.0) {
        let d = Dist::Erlang { k: 3, mean };
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    /// `below(n)` stays in range for arbitrary bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Welford merge is equivalent to sequential accumulation for any
    /// split point.
    #[test]
    fn welford_merge_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                < 1e-5 * (1.0 + whole.variance().abs())
        );
    }

    /// Time arithmetic round-trips and never goes negative.
    #[test]
    fn time_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        let t2 = t + d;
        prop_assert_eq!(t2 - t, d);
        prop_assert_eq!(t2.duration_since(t).as_nanos(), b);
        prop_assert_eq!(t.duration_since(t2), SimDuration::ZERO);
    }

    /// Named substreams are independent of derivation order.
    #[test]
    fn derive_order_independent(seed in any::<u64>()) {
        let root = SimRng::new(seed);
        let mut a1 = root.derive("alpha");
        let _b = root.derive("beta");
        let mut a2 = root.derive("alpha");
        for _ in 0..20 {
            prop_assert_eq!(a1.next_u64_raw(), a2.next_u64_raw());
        }
    }
}
