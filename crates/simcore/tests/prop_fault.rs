//! Property-based tests for the fault-injection subsystem: any valid
//! random [`FaultPlan`] must (a) run to completion on the engine without
//! deadlock, (b) clear every fault it injects, and (c) leave the world's
//! post-clear steady state indistinguishable from a fault-free run.

use cloudchar_simcore::{
    fault, Engine, FaultEvent, FaultKind, FaultPhase, FaultPlan, FaultTier, SimTime,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Build a valid `FaultKind` from a variant selector and two unit
/// parameters, covering all seven variants.
fn kind_from(sel: u8, a: f64, b: f64) -> FaultKind {
    let tier = if a < 0.5 {
        FaultTier::Web
    } else {
        FaultTier::Db
    };
    match sel {
        0 => FaultKind::DomainCrash {
            tier,
            boot_delay_s: b * 5.0,
        },
        1 => FaultKind::VcpuCap {
            tier,
            cap_percent: 1 + (b * 98.0) as u32,
        },
        2 => FaultKind::CreditStarve {
            util: (0.01 + b * 0.99).min(1.0),
        },
        3 => FaultKind::DiskSlow {
            factor: 1.0 + b * 9.0,
        },
        4 => FaultKind::NicDegrade {
            loss: (a * 0.9).min(0.99),
            bandwidth_factor: (0.1 + b * 0.9).min(1.0),
        },
        5 => FaultKind::MemPressure {
            bytes: 1 + (b * 1e9) as u64,
        },
        _ => FaultKind::TierErrors {
            tier,
            probability: (0.01 + b * 0.99).min(1.0),
        },
    }
}

fn plan_from(raw: Vec<(f64, f64, u8, f64, f64)>) -> FaultPlan {
    FaultPlan {
        name: "prop".to_string(),
        events: raw
            .into_iter()
            .map(|(at_s, duration_s, sel, a, b)| FaultEvent {
                at_s,
                duration_s,
                kind: kind_from(sel, a, b),
            })
            .collect(),
    }
}

/// Toy world: tracks the set of active fault indices and accrues one
/// unit of "work" per tick at full speed, half speed while any fault is
/// active. Good enough to observe inject/clear pairing and steady-state
/// recovery without any platform machinery.
#[derive(Default)]
struct ChaosWorld {
    active: HashSet<usize>,
    ever_injected: usize,
    transitions: usize,
    /// `(tick_time_s, work_increment)` log.
    work: Vec<(f64, f64)>,
}

const TICKS: u64 = 200;

/// Run `plan` against a ticking `ChaosWorld`; returns the final world.
fn run_chaos(plan: &FaultPlan) -> ChaosWorld {
    let mut engine: Engine<ChaosWorld> = Engine::new();
    let mut world = ChaosWorld::default();
    fault::install(
        plan,
        &mut engine,
        |_, w: &mut ChaosWorld, idx, _kind, phase| {
            w.transitions += 1;
            match phase {
                FaultPhase::Inject => {
                    assert!(w.active.insert(idx), "double inject of event {idx}");
                    w.ever_injected += 1;
                }
                FaultPhase::Clear => {
                    assert!(w.active.remove(&idx), "clear without inject of event {idx}");
                }
            }
        },
    );
    for t in 0..TICKS {
        engine.schedule_at(SimTime::from_secs(t), |e, w: &mut ChaosWorld| {
            let rate = if w.active.is_empty() { 1.0 } else { 0.5 };
            w.work.push((e.now().as_secs_f64(), rate));
        });
    }
    engine.run(&mut world);
    world
}

proptest! {
    /// (a) The engine drains any valid plan: every inject and clear
    /// executes and `run` returns (no deadlock, no stuck events).
    #[test]
    fn random_plans_never_deadlock(
        raw in proptest::collection::vec(
            (0.0f64..100.0, 0.1f64..40.0, 0u8..7, 0.0f64..1.0, 0.0f64..1.0),
            0..12,
        )
    ) {
        let plan = plan_from(raw);
        plan.validate().expect("generated plan is valid");
        let world = run_chaos(&plan);
        prop_assert_eq!(world.transitions, 2 * plan.events.len());
        prop_assert_eq!(world.work.len(), TICKS as usize);
    }

    /// (b) Every injected fault is cleared by the end of the run: the
    /// active set drains to empty and injects arrived exactly once per
    /// event.
    #[test]
    fn every_injected_fault_clears(
        raw in proptest::collection::vec(
            (0.0f64..100.0, 0.1f64..40.0, 0u8..7, 0.0f64..1.0, 0.0f64..1.0),
            1..12,
        )
    ) {
        let plan = plan_from(raw);
        let world = run_chaos(&plan);
        prop_assert!(world.active.is_empty(), "still active: {:?}", world.active);
        prop_assert_eq!(world.ever_injected, plan.events.len());
    }

    /// (c) After the last clear, the world runs at exactly the fault-free
    /// rate: the post-clear work accrual matches a no-fault run tick for
    /// tick.
    #[test]
    fn post_clear_steady_state_matches_fault_free_run(
        raw in proptest::collection::vec(
            (0.0f64..100.0, 0.1f64..40.0, 0u8..7, 0.0f64..1.0, 0.0f64..1.0),
            1..12,
        )
    ) {
        let plan = plan_from(raw);
        let last_clear = plan
            .events
            .iter()
            .map(FaultEvent::clear_s)
            .fold(0.0_f64, f64::max);
        let faulted = run_chaos(&plan);
        let healthy = run_chaos(&FaultPlan::empty());
        let tail = |w: &ChaosWorld| -> f64 {
            w.work
                .iter()
                .filter(|(t, _)| *t > last_clear)
                .map(|(_, inc)| inc)
                .sum()
        };
        let (ft, ht) = (tail(&faulted), tail(&healthy));
        prop_assert!(
            (ft - ht).abs() < 1e-9,
            "post-clear steady state diverged: faulted {ft} vs healthy {ht}"
        );
        // And if any tick landed inside a fault window, the run as a
        // whole accrued less work than the healthy one (sanity that
        // faults were actually observed).
        let tick_in_window = (0..TICKS).any(|t| {
            let t = t as f64;
            plan.events.iter().any(|ev| ev.at_s <= t && t < ev.clear_s())
        });
        if tick_in_window {
            let total_faulted: f64 = faulted.work.iter().map(|(_, inc)| inc).sum();
            let total_healthy: f64 = healthy.work.iter().map(|(_, inc)| inc).sum();
            prop_assert!(total_faulted < total_healthy);
        }
    }

    /// JSON round trips preserve any plan exactly, fingerprint included.
    #[test]
    fn serde_round_trip_preserves_any_plan(
        raw in proptest::collection::vec(
            (0.0f64..100.0, 0.1f64..40.0, 0u8..7, 0.0f64..1.0, 0.0f64..1.0),
            0..12,
        )
    ) {
        let plan = plan_from(raw);
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(plan.fingerprint(), back.fingerprint());
        prop_assert_eq!(plan, back);
    }
}
