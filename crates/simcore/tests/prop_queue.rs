//! Equivalence proptests: the calendar queue must reproduce a reference
//! binary heap's pop order *exactly* — including ties in time, which
//! resolve FIFO by sequence number. The engine's determinism (and the
//! replay/golden tests above it) rest on this contract.

use cloudchar_simcore::CalendarQueue;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference implementation: the pre-refactor `BinaryHeap` ordering.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl HeapQueue {
    fn push(&mut self, time: u64, seq: u64, value: u32) {
        self.heap.push(Reverse((time, seq, value)));
    }
    fn pop(&mut self) -> Option<(u64, u64, u32)> {
        self.heap.pop().map(|Reverse(k)| k)
    }
}

proptest! {
    /// Bulk load then full drain: identical order for arbitrary times,
    /// with heavy collisions forced by the small time range.
    #[test]
    fn drain_matches_heap(times in proptest::collection::vec(0u64..50, 1..400)) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        for (seq, &t) in times.iter().enumerate() {
            cal.push(t, seq as u64, seq as u32);
            heap.push(t, seq as u64, seq as u32);
        }
        prop_assert_eq!(cal.len(), times.len());
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Wide, clustered time range exercising wheel rebuilds across
    /// several generations.
    #[test]
    fn drain_matches_heap_wide_times(
        times in proptest::collection::vec(0u64..2_000_000_000_000, 1..300),
        cluster in 0u64..1_000_000_000,
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        for (seq, &t) in times.iter().enumerate() {
            // Half the events cluster tightly, half spread wide — the
            // simulator's actual shape.
            let t = if seq % 2 == 0 { cluster + t % 10_000 } else { t };
            cal.push(t, seq as u64, seq as u32);
            heap.push(t, seq as u64, seq as u32);
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Interleaved pushes and pops, with pushes allowed at times earlier
    /// than the current bucket (the `run_until` push-back path) — pop
    /// order must still match the heap exactly.
    #[test]
    fn interleaved_ops_match_heap(
        ops in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 1..500),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        let mut seq = 0u64;
        for &(t, is_pop) in &ops {
            if is_pop {
                prop_assert_eq!(cal.pop(), heap.pop());
                prop_assert_eq!(cal.len(), heap.heap.len());
            } else {
                cal.push(t, seq, seq as u32);
                heap.push(t, seq, seq as u32);
                seq += 1;
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Interleaved pushes and pops over times clustered densely enough
    /// that buckets exceed the split threshold: exercises the
    /// rung-split path *while* pushes keep landing near the drain
    /// frontier, where an overshooting split rung once let `bottom_end`
    /// advance past keys still stored in the parent rung.
    #[test]
    fn interleaved_dense_cluster_matches_heap(
        ops in proptest::collection::vec((0u64..16, 0u8..4), 200..800),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        let mut seq = 0u64;
        for &(t, op) in &ops {
            // Pop roughly a quarter of the time so the queue stays deep
            // and repeatedly re-buckets the same narrow time range.
            if op == 0 {
                prop_assert_eq!(cal.pop(), heap.pop());
            } else {
                cal.push(t, seq, seq as u32);
                heap.push(t, seq, seq as u32);
                seq += 1;
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Times at the extreme top of the u64 domain: bucket ends reach
    /// 2^64, which must not wrap `bottom_end` or rung bounds.
    #[test]
    fn near_u64_max_times_match_heap(
        offsets in proptest::collection::vec((0u64..200, any::<bool>()), 1..300),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        let mut seq = 0u64;
        for &(off, is_pop) in &offsets {
            if is_pop {
                prop_assert_eq!(cal.pop(), heap.pop());
            } else {
                let t = u64::MAX - off;
                cal.push(t, seq, seq as u32);
                heap.push(t, seq, seq as u32);
                seq += 1;
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Peek never disturbs pop order and always reports the next key.
    #[test]
    fn peek_is_transparent(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        for (seq, &t) in times.iter().enumerate() {
            cal.push(t, seq as u64, seq as u32);
            heap.push(t, seq as u64, seq as u32);
        }
        while let Some((t, s)) = cal.peek() {
            let popped = cal.pop();
            prop_assert_eq!(popped, heap.pop());
            let (pt, ps, _) = popped.expect("peek implied non-empty");
            prop_assert_eq!((t, s), (pt, ps));
        }
        prop_assert!(heap.pop().is_none());
    }
}
