//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a replayable schedule of fault events. Each
//! [`FaultEvent`] names a window `[at_s, at_s + duration_s)` and a
//! [`FaultKind`] describing what breaks; [`install`] turns the plan into
//! inject/clear event pairs on the ordinary [`Engine`] calendar queue, so
//! fault timing participates in the same total `(time, seq)` order as
//! every other simulation event. Replaying the same plan against the same
//! seed therefore reproduces the same run bit-for-bit.
//!
//! The crate is deliberately mechanism-free: it knows *when* faults start
//! and stop, never *how* they are applied. Higher layers pass an `apply`
//! callback to [`install`] that interprets each [`FaultKind`] against
//! their world (hypervisor, hardware devices, workload generator). This
//! keeps `simcore` dependency-free and lets tests drive plans against toy
//! worlds.
//!
//! Determinism contract: an empty plan schedules **zero** events and draws
//! **zero** random numbers, so a run with `FaultPlan::default()` is
//! byte-identical to a run built before this module existed. All fault
//! scheduling must flow through [`install`]; the `cloudchar-lint` rule
//! CL005 flags fault code that calls the engine's `schedule_*` methods
//! directly.

use crate::engine::Engine;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which application tier a tier-scoped fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTier {
    /// The front-end web/application tier.
    Web,
    /// The back-end database tier.
    Db,
}

/// What breaks during a fault window.
///
/// Variants map onto the three injector layers: `xen` (domain crash,
/// VCPU cap, credit starvation), `hw` (disk, NIC, memory), and `rubis`
/// (request errors at a tier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The domain hosting `tier` crashes; in-flight work is lost. On
    /// clear the domain reboots and spends `boot_delay_s` of CPU time on
    /// kernel boot work before serving requests again.
    DomainCrash {
        /// Tier whose domain crashes.
        tier: FaultTier,
        /// Simulated boot time charged as CPU overhead on restart.
        boot_delay_s: f64,
    },
    /// The credit scheduler caps the tier's domain at `cap_percent`% of
    /// one physical core per VCPU-period.
    VcpuCap {
        /// Tier whose domain is throttled.
        tier: FaultTier,
        /// Cap in percent of total domain entitlement (1–99).
        cap_percent: u32,
    },
    /// dom0 housekeeping inflates to `util` of one core, starving guest
    /// domains of scheduler credit.
    CreditStarve {
        /// Fraction of one core consumed by dom0 (0, 1].
        util: f64,
    },
    /// Every disk service time is multiplied by `factor` (≥ 1).
    DiskSlow {
        /// Service-time inflation factor.
        factor: f64,
    },
    /// NIC degradation: packet loss forces retransmission (wire time
    /// scales by `1 / (1 - loss)`) and link bandwidth is clamped to
    /// `bandwidth_factor` of nominal.
    NicDegrade {
        /// Packet loss probability [0, 1).
        loss: f64,
        /// Remaining fraction of nominal bandwidth (0, 1].
        bandwidth_factor: f64,
    },
    /// An external allocation pins `bytes` of RAM on every host,
    /// shrinking the page cache.
    MemPressure {
        /// Bytes pinned for the duration of the fault.
        bytes: u64,
    },
    /// Requests touching `tier` fail with `probability` (application
    /// errors: 5xx from the web tier, query errors from the DB tier).
    TierErrors {
        /// Tier whose requests fail.
        tier: FaultTier,
        /// Per-request failure probability (0, 1].
        probability: f64,
    },
}

impl FaultKind {
    /// Stable numeric code per variant, used by [`FaultPlan::fingerprint`].
    fn code(&self) -> u64 {
        match self {
            FaultKind::DomainCrash { .. } => 1,
            FaultKind::VcpuCap { .. } => 2,
            FaultKind::CreditStarve { .. } => 3,
            FaultKind::DiskSlow { .. } => 4,
            FaultKind::NicDegrade { .. } => 5,
            FaultKind::MemPressure { .. } => 6,
            FaultKind::TierErrors { .. } => 7,
        }
    }

    /// Short lower-case label for reports and attribution windows.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DomainCrash { .. } => "domain-crash",
            FaultKind::VcpuCap { .. } => "vcpu-cap",
            FaultKind::CreditStarve { .. } => "credit-starve",
            FaultKind::DiskSlow { .. } => "disk-slow",
            FaultKind::NicDegrade { .. } => "nic-degrade",
            FaultKind::MemPressure { .. } => "mem-pressure",
            FaultKind::TierErrors { .. } => "tier-errors",
        }
    }

    /// Validate variant parameters; returns a description of the first
    /// violation.
    fn validate(&self) -> Result<(), String> {
        let finite_nonneg = |name: &str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and >= 0, got {v}"))
            }
        };
        match self {
            FaultKind::DomainCrash { boot_delay_s, .. } => {
                finite_nonneg("boot_delay_s", *boot_delay_s)
            }
            FaultKind::VcpuCap { cap_percent, .. } => {
                if (1..=99).contains(cap_percent) {
                    Ok(())
                } else {
                    Err(format!("cap_percent must be in 1..=99, got {cap_percent}"))
                }
            }
            FaultKind::CreditStarve { util } => {
                if util.is_finite() && *util > 0.0 && *util <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("util must be in (0, 1], got {util}"))
                }
            }
            FaultKind::DiskSlow { factor } => {
                if factor.is_finite() && *factor >= 1.0 {
                    Ok(())
                } else {
                    Err(format!("factor must be finite and >= 1, got {factor}"))
                }
            }
            FaultKind::NicDegrade {
                loss,
                bandwidth_factor,
            } => {
                if !(loss.is_finite() && (0.0..1.0).contains(loss)) {
                    Err(format!("loss must be in [0, 1), got {loss}"))
                } else if !(bandwidth_factor.is_finite()
                    && *bandwidth_factor > 0.0
                    && *bandwidth_factor <= 1.0)
                {
                    Err(format!(
                        "bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
                    ))
                } else {
                    Ok(())
                }
            }
            FaultKind::MemPressure { bytes } => {
                if *bytes > 0 {
                    Ok(())
                } else {
                    Err("mem-pressure bytes must be > 0".to_string())
                }
            }
            FaultKind::TierErrors { probability, .. } => {
                if probability.is_finite() && *probability > 0.0 && *probability <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("probability must be in (0, 1], got {probability}"))
                }
            }
        }
    }
}

/// One scheduled fault: a kind active over `[at_s, at_s + duration_s)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Injection time, seconds since simulation start.
    pub at_s: f64,
    /// How long the fault stays active, seconds (> 0).
    pub duration_s: f64,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Clear time, seconds since simulation start.
    pub fn clear_s(&self) -> f64 {
        self.at_s + self.duration_s
    }
}

/// A named, replayable schedule of fault events.
///
/// The default plan is empty and injects nothing; an experiment run with
/// an empty plan is bit-identical to one predating fault support.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable plan name (appears in reports and fingerprints).
    pub name: String,
    /// Fault events; order is irrelevant, delivery order is by time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events (injects nothing).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules any fault at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check every event for well-formed timing and parameters.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if !(ev.at_s.is_finite() && ev.at_s >= 0.0) {
                return Err(format!(
                    "plan {:?} event {i}: at_s must be finite and >= 0, got {}",
                    self.name, ev.at_s
                ));
            }
            if !(ev.duration_s.is_finite() && ev.duration_s > 0.0) {
                return Err(format!(
                    "plan {:?} event {i}: duration_s must be finite and > 0, got {}",
                    self.name, ev.duration_s
                ));
            }
            ev.kind
                .validate()
                .map_err(|e| format!("plan {:?} event {i}: {e}", self.name))?;
        }
        Ok(())
    }

    /// Stable FNV-1a fingerprint over the plan's name and every event
    /// field. Two plans fingerprint equal iff they would schedule the
    /// same faults; serialization round-trips preserve it exactly.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for b in self.name.bytes() {
            mix(b as u64);
        }
        for ev in &self.events {
            mix(ev.at_s.to_bits());
            mix(ev.duration_s.to_bits());
            mix(ev.kind.code());
            match &ev.kind {
                FaultKind::DomainCrash { tier, boot_delay_s } => {
                    mix(*tier as u64);
                    mix(boot_delay_s.to_bits());
                }
                FaultKind::VcpuCap { tier, cap_percent } => {
                    mix(*tier as u64);
                    mix(*cap_percent as u64);
                }
                FaultKind::CreditStarve { util } => mix(util.to_bits()),
                FaultKind::DiskSlow { factor } => mix(factor.to_bits()),
                FaultKind::NicDegrade {
                    loss,
                    bandwidth_factor,
                } => {
                    mix(loss.to_bits());
                    mix(bandwidth_factor.to_bits());
                }
                FaultKind::MemPressure { bytes } => mix(*bytes),
                FaultKind::TierErrors { tier, probability } => {
                    mix(*tier as u64);
                    mix(probability.to_bits());
                }
            }
        }
        h
    }
}

/// Whether an `apply` callback is being asked to start or stop a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// The fault window opens: apply the degradation.
    Inject,
    /// The fault window closes: restore healthy behaviour.
    Clear,
}

/// Schedule every event of `plan` on `engine` as an inject/clear pair.
///
/// `apply(engine, world, event_index, kind, phase)` is invoked at the
/// event's `at_s` with [`FaultPhase::Inject`] and at `at_s + duration_s`
/// with [`FaultPhase::Clear`]. This is the **only** sanctioned place
/// fault code touches the engine's scheduler (lint rule CL005); routing
/// all fault timing through here is what makes plans replayable.
///
/// Returns the number of engine events scheduled (2 × plan length). An
/// empty plan schedules nothing and leaves the engine untouched.
///
/// Panics if the engine clock has advanced past an event's inject time;
/// call `install` at simulation start.
pub fn install<W, F>(plan: &FaultPlan, engine: &mut Engine<W>, apply: F) -> usize
where
    F: Fn(&mut Engine<W>, &mut W, usize, &FaultKind, FaultPhase) + Clone + Send + 'static,
{
    let mut scheduled = 0;
    for (idx, ev) in plan.events.iter().enumerate() {
        let inject_kind = ev.kind.clone();
        let clear_kind = ev.kind.clone();
        let on_inject = apply.clone();
        let on_clear = apply.clone();
        engine.schedule_at(SimTime::from_secs_f64(ev.at_s), move |e, w| {
            on_inject(e, w, idx, &inject_kind, FaultPhase::Inject);
        });
        engine.schedule_at(SimTime::from_secs_f64(ev.clear_s()), move |e, w| {
            on_clear(e, w, idx, &clear_kind, FaultPhase::Clear);
        });
        scheduled += 2;
    }
    scheduled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_slow(at_s: f64, duration_s: f64, factor: f64) -> FaultEvent {
        FaultEvent {
            at_s,
            duration_s,
            kind: FaultKind::DiskSlow { factor },
        }
    }

    fn plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan {
            name: "test".to_string(),
            events,
        }
    }

    #[derive(Default)]
    struct Log {
        entries: Vec<(f64, usize, FaultPhase)>,
    }

    fn run_plan(p: &FaultPlan) -> Log {
        let mut engine: Engine<Log> = Engine::new();
        let mut log = Log::default();
        install(p, &mut engine, |e, w: &mut Log, idx, _kind, phase| {
            w.entries.push((e.now().as_secs_f64(), idx, phase));
        });
        engine.run(&mut log);
        log
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let mut engine: Engine<Log> = Engine::new();
        let n = install(&FaultPlan::default(), &mut engine, |_, _, _, _, _| {});
        assert_eq!(n, 0);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn inject_and_clear_fire_in_time_order() {
        let p = plan(vec![
            disk_slow(10.0, 5.0, 2.0),
            disk_slow(2.0, 20.0, 3.0), // overlaps the first
        ]);
        let log = run_plan(&p);
        assert_eq!(
            log.entries,
            vec![
                (2.0, 1, FaultPhase::Inject),
                (10.0, 0, FaultPhase::Inject),
                (15.0, 0, FaultPhase::Clear),
                (22.0, 1, FaultPhase::Clear),
            ]
        );
    }

    #[test]
    fn every_inject_pairs_with_a_clear() {
        let p = plan(vec![
            disk_slow(0.0, 1.0, 1.5),
            disk_slow(0.5, 0.25, 4.0),
            disk_slow(3.0, 10.0, 2.0),
        ]);
        let log = run_plan(&p);
        let mut active = std::collections::HashSet::new();
        for (_, idx, phase) in &log.entries {
            match phase {
                FaultPhase::Inject => assert!(active.insert(*idx)),
                FaultPhase::Clear => assert!(active.remove(idx)),
            }
        }
        assert!(active.is_empty(), "unpaired injects: {active:?}");
    }

    #[test]
    fn validate_accepts_well_formed_plan() {
        let p = plan(vec![
            FaultEvent {
                at_s: 1.0,
                duration_s: 2.0,
                kind: FaultKind::DomainCrash {
                    tier: FaultTier::Db,
                    boot_delay_s: 2.0,
                },
            },
            FaultEvent {
                at_s: 0.0,
                duration_s: 5.0,
                kind: FaultKind::NicDegrade {
                    loss: 0.05,
                    bandwidth_factor: 0.5,
                },
            },
        ]);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_timing_and_params() {
        let bad = [
            disk_slow(-1.0, 1.0, 2.0),
            disk_slow(0.0, 0.0, 2.0),
            disk_slow(0.0, f64::NAN, 2.0),
            disk_slow(0.0, 1.0, 0.5),
            FaultEvent {
                at_s: 0.0,
                duration_s: 1.0,
                kind: FaultKind::VcpuCap {
                    tier: FaultTier::Web,
                    cap_percent: 100,
                },
            },
            FaultEvent {
                at_s: 0.0,
                duration_s: 1.0,
                kind: FaultKind::TierErrors {
                    tier: FaultTier::Web,
                    probability: 0.0,
                },
            },
            FaultEvent {
                at_s: 0.0,
                duration_s: 1.0,
                kind: FaultKind::NicDegrade {
                    loss: 1.0,
                    bandwidth_factor: 0.5,
                },
            },
            FaultEvent {
                at_s: 0.0,
                duration_s: 1.0,
                kind: FaultKind::MemPressure { bytes: 0 },
            },
        ];
        for ev in bad {
            let p = plan(vec![ev.clone()]);
            assert!(p.validate().is_err(), "accepted invalid event {ev:?}");
        }
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = plan(vec![disk_slow(1.0, 2.0, 3.0)]);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        let mut b = a.clone();
        b.events[0].at_s = 1.5;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.events[0].kind = FaultKind::CreditStarve { util: 0.5 };
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.name = "other".to_string();
        assert_ne!(a.fingerprint(), d.fingerprint());
        assert_ne!(FaultPlan::default().fingerprint(), a.fingerprint());
    }

    #[test]
    fn serde_round_trip_preserves_fingerprint() {
        let p = plan(vec![
            FaultEvent {
                at_s: 48.0,
                duration_s: 18.0,
                kind: FaultKind::DomainCrash {
                    tier: FaultTier::Db,
                    boot_delay_s: 2.0,
                },
            },
            FaultEvent {
                at_s: 10.0,
                duration_s: 30.0,
                kind: FaultKind::MemPressure { bytes: 512 << 20 },
            },
        ]);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("parse");
        assert_eq!(p, back);
        assert_eq!(p.fingerprint(), back.fingerprint());
    }
}
