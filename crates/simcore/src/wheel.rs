//! Batched timer wheel for large client populations.
//!
//! A [`TimerWheel`] spreads pending wakeups over a fixed ring of coarse
//! buckets keyed by deadline, so the engine's calendar queue holds at
//! most one event *per armed bucket* instead of one event per client.
//! The wheel itself never fires anything: the owning world arms engine
//! events for bucket deadlines and drains due entries from inside the
//! handler, batching every wakeup that lands before the engine's next
//! unrelated event into a single engine dispatch (see
//! [`crate::engine::Engine::advance_now_to`]).
//!
//! Determinism contract: entries within a bucket are ordered by
//! `(deadline, arm_seq)` where `arm_seq` is a global arming counter —
//! the exact `(time, seq)` FIFO tie-break the engine itself uses — so a
//! drain visits clients in the same order the unbatched per-client
//! events would have executed. Deadlines are stored at full nanosecond
//! precision; bucketing only coarsens *which engine event* wakes a
//! client, never *when* the client observes the clock.
//!
//! The ring is modular: slot = `(deadline / width) mod nbuckets`. Two
//! deadlines a full revolution apart share a slot; that costs a heap
//! probe, never correctness, because due entries are selected by exact
//! deadline. Size the horizon (`width × nbuckets`) above the largest
//! delay ever armed to keep collisions rare.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One pending wakeup. Ordered by `(deadline_ns, arm_seq)`; `arm_seq`
/// is globally unique so the order is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    deadline_ns: u64,
    arm_seq: u64,
    client: u32,
    epoch: u64,
}

#[derive(Debug, Default)]
struct Bucket {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Deadline of the engine event currently armed for this bucket, if
    /// any. Arming an earlier entry supersedes it; the superseded event
    /// detects the mismatch at fire time and becomes a no-op.
    scheduled: Option<u64>,
}

/// A modular ring of timer buckets over the engine's calendar queue.
#[derive(Debug)]
pub struct TimerWheel {
    width_ns: u64,
    buckets: Vec<Bucket>,
    arm_seq: u64,
    pending: usize,
}

impl TimerWheel {
    /// Create a wheel of `nbuckets` slots, each `width` wide.
    pub fn new(width: SimDuration, nbuckets: usize) -> Self {
        assert!(width > SimDuration::ZERO, "bucket width must be > 0");
        assert!(nbuckets > 0, "wheel needs at least one bucket");
        let mut buckets = Vec::with_capacity(nbuckets);
        for _ in 0..nbuckets {
            buckets.push(Bucket::default());
        }
        TimerWheel {
            width_ns: width.as_nanos(),
            buckets,
            arm_seq: 0,
            pending: 0,
        }
    }

    /// Ring slot owning `deadline_ns`.
    fn slot_of(&self, deadline_ns: u64) -> usize {
        ((deadline_ns / self.width_ns) % self.buckets.len() as u64) as usize
    }

    /// Number of wakeups currently armed across all buckets.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when no wakeups are armed.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Arm a wakeup for `client` at `deadline`, tagged with the client's
    /// current `epoch` (checked against the live epoch at drain time so
    /// stale wakeups are dropped).
    ///
    /// Returns `Some((slot, deadline))` when the caller must schedule an
    /// engine event at `deadline` for `slot` — i.e. the new entry is due
    /// strictly before anything already scheduled for its bucket.
    /// Returns `None` when an already-armed engine event covers it.
    pub fn arm(&mut self, deadline: SimTime, client: u32, epoch: u64) -> Option<(usize, SimTime)> {
        let deadline_ns = deadline.as_nanos();
        let slot = self.slot_of(deadline_ns);
        let seq = self.arm_seq;
        self.arm_seq += 1;
        self.buckets[slot].heap.push(Reverse(Entry {
            deadline_ns,
            arm_seq: seq,
            client,
            epoch,
        }));
        self.pending += 1;
        let bucket = &mut self.buckets[slot];
        match bucket.scheduled {
            Some(at) if at <= deadline_ns => None,
            _ => {
                bucket.scheduled = Some(deadline_ns);
                Some((slot, deadline))
            }
        }
    }

    /// Claim the engine event firing for `slot` at `now`.
    ///
    /// Returns `true` when this event is the bucket's live one (and
    /// clears the slot's scheduled marker so the drain loop re-arms as
    /// needed); `false` when a later `arm` superseded it and the event
    /// must return without touching the bucket.
    pub fn begin_fire(&mut self, slot: usize, now: SimTime) -> bool {
        let bucket = &mut self.buckets[slot];
        if bucket.scheduled == Some(now.as_nanos()) {
            bucket.scheduled = None;
            true
        } else {
            false
        }
    }

    /// Pop the next entry of `slot` due exactly at `now`, in
    /// `(deadline, arm_seq)` order. `None` once the bucket has nothing
    /// due at `now`.
    pub fn pop_due(&mut self, slot: usize, now: SimTime) -> Option<(u32, u64)> {
        let bucket = &mut self.buckets[slot];
        match bucket.heap.peek() {
            Some(Reverse(e)) if e.deadline_ns == now.as_nanos() => {
                let Reverse(e) = bucket.heap.pop()?;
                self.pending -= 1;
                Some((e.client, e.epoch))
            }
            _ => None,
        }
    }

    /// Earliest remaining deadline in `slot`, if any.
    pub fn next_deadline(&self, slot: usize) -> Option<SimTime> {
        self.buckets[slot]
            .heap
            .peek()
            .map(|Reverse(e)| SimTime::from_nanos(e.deadline_ns))
    }

    /// Record that an engine event was scheduled for `slot` at
    /// `deadline` (the drain loop's continuation when it cannot batch
    /// further).
    pub fn commit(&mut self, slot: usize, deadline: SimTime) {
        self.buckets[slot].scheduled = Some(deadline.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel {
        TimerWheel::new(SimDuration::from_secs(1), 8)
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn arm_returns_schedule_instruction_only_when_earlier() {
        let mut w = wheel();
        let first = w.arm(t(500), 1, 0);
        assert_eq!(first, Some((0, t(500))));
        // Later deadline in the same bucket: already covered.
        assert_eq!(w.arm(t(700), 2, 0), None);
        // Earlier deadline supersedes.
        assert_eq!(w.arm(t(300), 3, 0), Some((0, t(300))));
        assert_eq!(w.pending(), 3);
    }

    #[test]
    fn begin_fire_rejects_superseded_events() {
        let mut w = wheel();
        w.arm(t(500), 1, 0);
        w.arm(t(300), 2, 0);
        // The original event at 500 was superseded by the one at 300.
        assert!(w.begin_fire(0, t(300)));
        assert!(!w.begin_fire(0, t(500)));
    }

    #[test]
    fn pop_due_is_deadline_then_fifo_ordered() {
        let mut w = wheel();
        w.arm(t(500), 10, 0);
        w.arm(t(300), 11, 0);
        w.arm(t(500), 12, 0);
        assert!(w.begin_fire(0, t(300)));
        assert_eq!(w.pop_due(0, t(300)), Some((11, 0)));
        assert_eq!(w.pop_due(0, t(300)), None);
        // Entries due at 500 pop in arming order.
        assert_eq!(w.pop_due(0, t(500)), Some((10, 0)));
        assert_eq!(w.pop_due(0, t(500)), Some((12, 0)));
        assert_eq!(w.pop_due(0, t(500)), None);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_tracks_bucket_head() {
        let mut w = wheel();
        assert_eq!(w.next_deadline(0), None);
        w.arm(t(900), 1, 0);
        w.arm(t(200), 2, 0);
        assert_eq!(w.next_deadline(0), Some(t(200)));
        assert!(w.begin_fire(0, t(200)));
        let _ = w.pop_due(0, t(200));
        assert_eq!(w.next_deadline(0), Some(t(900)));
    }

    #[test]
    fn deadlines_a_revolution_apart_share_a_slot_without_mixing() {
        let mut w = wheel();
        // 8 buckets × 1 s: 0.5 s and 8.5 s map to the same slot.
        let near = SimTime::from_secs_f64(0.5);
        let far = SimTime::from_secs_f64(8.5);
        let (slot, _) = w.arm(near, 1, 0).unwrap_or((usize::MAX, SimTime::ZERO));
        assert_eq!(w.arm(far, 2, 0), None, "same slot, later deadline");
        assert!(w.begin_fire(slot, near));
        assert_eq!(w.pop_due(slot, near), Some((1, 0)));
        // The far entry is not due yet: selected by exact deadline.
        assert_eq!(w.pop_due(slot, near), None);
        assert_eq!(w.next_deadline(slot), Some(far));
    }

    #[test]
    fn commit_re_arms_a_drained_bucket() {
        let mut w = wheel();
        w.arm(t(100), 1, 0);
        assert!(w.begin_fire(0, t(100)));
        let _ = w.pop_due(0, t(100));
        w.arm(t(400), 2, 7);
        // Pretend the drain loop scheduled a continuation at 400.
        w.commit(0, t(400));
        assert!(w.begin_fire(0, t(400)));
        assert_eq!(w.pop_due(0, t(400)), Some((2, 7)));
    }

    #[test]
    fn epochs_ride_along_untouched() {
        let mut w = wheel();
        w.arm(t(100), 5, 42);
        assert!(w.begin_fire(0, t(100)));
        assert_eq!(w.pop_due(0, t(100)), Some((5, 42)));
    }
}
