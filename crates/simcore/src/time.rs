//! Simulated time.
//!
//! The engine keeps time in integer **nanoseconds** since the start of the
//! simulation. Integer time makes event ordering exact and keeps runs
//! bit-for-bit reproducible across platforms, which floating-point time
//! cannot guarantee.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime seconds: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "invalid SimDuration seconds: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by a non-negative scalar, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid duration scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Integer division into `n` equal parts (truncating).
    pub fn div_by(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n.max(1))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 10_500_000_000);
        let d = t - SimTime::from_secs(10);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10).mul_f64(0.25);
        assert_eq!(d.as_nanos(), 3); // 2.5 rounds to 3 (round half away from zero)
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        let t = SimTime::from_secs_f64(1.5e-9);
        assert_eq!(t.as_nanos(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
