//! Sharded discrete-event execution with conservative cross-shard
//! synchronization.
//!
//! A [`ShardedEngine`] partitions the simulated world into *shards* —
//! one per physical host plus a client/generator shard — each owning
//! its own pending-event set and clock (a [`ShardLogic`]
//! implementation, typically wrapping an [`crate::Engine`]). Shards are
//! connected by typed channels declared in a [`Topology`]; every
//! channel carries a *minimum latency*, the physical network/disk delay
//! below which no message can travel. That latency is the protocol's
//! **lookahead**.
//!
//! ## Horizon protocol
//!
//! Execution proceeds in rounds. Each round the runner computes, per
//! shard `i`, a conservative horizon
//!
//! ```text
//! bound[i] = min over shards k of ( next[k] + shortest_path(k → i) )
//! ```
//!
//! where `next[k]` is the timestamp of shard `k`'s earliest pending
//! unit (local event or undelivered message) and `shortest_path` is the
//! minimum summed channel latency over every ≥ 1-edge route — the
//! transitive closure, so multi-hop chains through otherwise idle
//! shards are accounted for. Any message shard `k` will ever emit is
//! timestamped at or after `next[k]`, so nothing can arrive at `i`
//! before `bound[i]`: every shard with work strictly below its horizon
//! executes that window without coordination. When no shard clears its
//! horizon (a zero-lookahead cycle), the runner degrades to a serial
//! fallback step — it executes exactly the globally minimal unit's
//! timestamp on its owning shard — instead of deadlocking.
//! [`RunMode::SingleQueue`] forces the fallback on every step, which is
//! the single-queue oracle the differential tests compare against.
//!
//! ## Merge-order rule
//!
//! Event order must be a pure function of the plan, never of thread
//! timing. Every unit has a total-order key `(time, src_shard, seq)`:
//! local events use the owning shard's id and its engine sequence,
//! cross-shard messages use the *sender's* id and a per-sender send
//! counter. A shard drains its inbox and local queue as one merged
//! stream under that key — a message from shard `j` at time `t` is
//! delivered before shard `i`'s own events at `t` iff `j < i` — so
//! replay is byte-identical at any worker count. An audited `floor`
//! per shard asserts no straggler: once a shard has executed past `t`,
//! a delivery timestamped below `t` is a protocol violation
//! (`shard.merge_order`), and sends below the declared channel latency
//! are rejected (`shard.lookahead`).

use crate::audit;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

/// Identifier of a shard: its index in the [`Topology`].
pub type ShardId = u32;

/// Directed channel graph between shards, with per-channel minimum
/// latencies (the conservative protocol's lookahead).
#[derive(Debug, Clone)]
pub struct Topology {
    n: u32,
    latency: Vec<Option<SimDuration>>,
}

impl Topology {
    /// A topology of `shards` shards with no channels.
    pub fn new(shards: u32) -> Topology {
        assert!(shards >= 1, "a topology needs at least one shard");
        Topology {
            n: shards,
            latency: vec![None; (shards as usize) * (shards as usize)],
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.n
    }

    fn idx(&self, src: ShardId, dst: ShardId) -> usize {
        assert!(src < self.n && dst < self.n, "shard id out of range");
        (src as usize) * (self.n as usize) + (dst as usize)
    }

    /// Declare a directed channel `src → dst` whose messages take at
    /// least `min_latency` to arrive. Declaring the same channel twice
    /// keeps the smaller latency.
    pub fn link(&mut self, src: ShardId, dst: ShardId, min_latency: SimDuration) {
        assert!(src != dst, "a shard does not message itself");
        let at = self.idx(src, dst);
        let cur = self.latency[at];
        self.latency[at] = Some(cur.map_or(min_latency, |c| c.min(min_latency)));
    }

    /// Declare channels in both directions with the same latency.
    pub fn link_both(&mut self, a: ShardId, b: ShardId, min_latency: SimDuration) {
        self.link(a, b, min_latency);
        self.link(b, a, min_latency);
    }

    /// The declared minimum latency of channel `src → dst`, if present.
    pub fn min_latency(&self, src: ShardId, dst: ShardId) -> Option<SimDuration> {
        self.latency[self.idx(src, dst)]
    }

    /// Shortest ≥ 1-edge path latency for every ordered shard pair,
    /// flattened `[src * n + dst]`. `None` means no route. This is the
    /// transitive lookahead matrix the horizon computation uses.
    fn path_matrix(&self) -> Vec<Option<SimDuration>> {
        let n = self.n as usize;
        // Closure allowing zero-edge self paths…
        let mut c = self.latency.clone();
        for i in 0..n {
            c[i * n + i] = Some(SimDuration::ZERO);
        }
        for k in 0..n {
            for i in 0..n {
                let Some(ik) = c[i * n + k] else { continue };
                for j in 0..n {
                    let Some(kj) = c[k * n + j] else { continue };
                    let via = ik + kj;
                    if c[i * n + j].is_none_or(|cur| via < cur) {
                        c[i * n + j] = Some(via);
                    }
                }
            }
        }
        // …then force at least one edge: path(s→d) = min over direct
        // links j→d of closure(s→j) + latency(j→d).
        let mut p = vec![None; n * n];
        for s in 0..n {
            for j in 0..n {
                let Some(sj) = c[s * n + j] else { continue };
                for d in 0..n {
                    let Some(l) = self.latency[j * n + d] else {
                        continue;
                    };
                    let via = sj + l;
                    if p[s * n + d].is_none_or(|cur| via < cur) {
                        p[s * n + d] = Some(via);
                    }
                }
            }
        }
        p
    }
}

/// One undelivered cross-shard message, ordered by the global merge key
/// `(time, src, seq)`.
struct InboxItem<M> {
    time: SimTime,
    src: ShardId,
    seq: u64,
    msg: M,
}

impl<M> InboxItem<M> {
    fn key(&self) -> (SimTime, ShardId, u64) {
        (self.time, self.src, self.seq)
    }
}

impl<M> PartialEq for InboxItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for InboxItem<M> {}
impl<M> PartialOrd for InboxItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InboxItem<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A message en route to another shard.
struct Outgoing<M> {
    dst: ShardId,
    item: InboxItem<M>,
}

/// Per-unit execution context handed to [`ShardLogic`] callbacks: the
/// only legal way for shard-owned state to reach another shard.
pub struct ShardCtx<'a, M> {
    shard: ShardId,
    now: SimTime,
    limit: SimTime,
    topo: &'a Topology,
    seq: &'a mut u64,
    out: &'a mut Vec<Outgoing<M>>,
}

impl<M> ShardCtx<'_, M> {
    /// The shard this context belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Timestamp of the unit being executed: the delivery time inside
    /// [`ShardLogic::on_message`], the earliest pending local event at
    /// the start of [`ShardLogic::run_local`].
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Exclusive horizon for [`ShardLogic::run_local`]: every local
    /// event strictly below it must execute, nothing at or beyond it
    /// may. Batched handlers (the timer wheel) must also cap any manual
    /// clock advance here.
    pub fn limit(&self) -> SimTime {
        self.limit
    }

    /// Declared minimum latency of this shard's channel to `dst`, if
    /// one exists — the smallest legal send delay.
    pub fn channel_latency(&self, dst: ShardId) -> Option<SimDuration> {
        self.topo.min_latency(self.shard, dst)
    }

    /// Send `msg` over the channel to `dst`, departing at simulated
    /// instant `origin` (the current event's time) and arriving at
    /// `origin + delay`.
    ///
    /// The channel must exist in the topology and `delay` must be at
    /// least its declared minimum latency — that floor is what makes
    /// the conservative horizons sound, so violating it is rejected
    /// (and recorded under the `shard.lookahead` audit invariant).
    pub fn send(&mut self, origin: SimTime, dst: ShardId, delay: SimDuration, msg: M) {
        assert!(
            dst != self.shard,
            "self-sends are local events, not channel messages"
        );
        let lat = self.topo.min_latency(self.shard, dst);
        assert!(
            lat.is_some(),
            "no channel from shard {} to shard {dst}",
            self.shard
        );
        let floor = lat.unwrap_or(SimDuration::ZERO);
        audit::check("shard.lookahead", origin.as_nanos(), delay >= floor, || {
            format!(
                "shard {} sent to {dst} with delay {delay} below the channel's min latency {floor}",
                self.shard
            )
        });
        assert!(
            delay >= floor,
            "channel {} -> {dst} declares min latency {floor} but message departs with delay {delay}",
            self.shard
        );
        let seq = *self.seq;
        *self.seq += 1;
        self.out.push(Outgoing {
            dst,
            item: InboxItem {
                time: origin + delay,
                src: self.shard,
                seq,
                msg,
            },
        });
    }
}

/// The event-processing half of a shard: its own pending-event set and
/// clock, driven by the [`ShardedEngine`] runner.
///
/// Implementations own *all* of their state — queue, clock, RNG lanes —
/// and exchange nothing with other shards except typed messages through
/// [`ShardCtx::send`] (lint rule CL013 enforces this statically for the
/// fleet worlds).
pub trait ShardLogic: Send {
    /// Typed payload carried on this shard's channels.
    type Msg: Send;

    /// Timestamp of the earliest pending local event, if any.
    fn next_local(&mut self) -> Option<SimTime>;

    /// Execute every pending local event with `time < ctx.limit()`, in
    /// local `(time, seq)` order, timestamping any [`ShardCtx::send`]
    /// with the emitting event's time. Returns the number of events
    /// executed.
    fn run_local(&mut self, ctx: &mut ShardCtx<'_, Self::Msg>) -> u64;

    /// Deliver one cross-shard message timestamped `ctx.now()`. The
    /// runner guarantees deliveries arrive in global
    /// `(time, src, seq)` order relative to this shard's local events.
    fn on_message(&mut self, ctx: &mut ShardCtx<'_, Self::Msg>, src: ShardId, msg: Self::Msg);
}

/// How [`ShardedEngine::run`] schedules shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The equivalence oracle: every step executes only the globally
    /// minimal `(time, src, seq)` unit's timestamp, exactly as one
    /// merged calendar queue would.
    SingleQueue,
    /// Conservative lookahead windows; `jobs ≤ 1` runs the rounds
    /// serially, `jobs > 1` spreads shards over that many persistent
    /// worker threads. Replay is byte-identical across all values.
    Windowed {
        /// Worker-thread count (clamped to the shard count).
        jobs: usize,
    },
}

/// Counters describing how a sharded run executed. Replay-affecting
/// state never feeds back from these; they are observability only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Windowed rounds in which at least one shard cleared its horizon.
    pub rounds: u64,
    /// Serial fallback steps (all of them, in [`RunMode::SingleQueue`]).
    pub serial_steps: u64,
    /// Local events plus message deliveries executed.
    pub units: u64,
    /// Critical-path units: per round, the largest unit count any one
    /// shard (serial modes) or worker (parallel mode) executed, summed
    /// over the run. `units / critical_units` is the speedup an ideal
    /// zero-overhead parallel execution of the same round schedule
    /// achieves — a machine-independent ceiling the benches report
    /// alongside measured wall-clock.
    pub critical_units: u64,
    /// Cross-shard messages routed.
    pub messages: u64,
}

struct ShardCell<S: ShardLogic> {
    logic: S,
    inbox: BinaryHeap<Reverse<InboxItem<S::Msg>>>,
    send_seq: u64,
    /// Execution floor: the shard has run everything below this time;
    /// a delivery timestamped earlier is a straggler.
    floor: SimTime,
}

/// Key of a shard's next unit under the global merge order: the
/// timestamp plus the effective source shard (itself for a local event,
/// the sender for a queued delivery).
fn next_key<S: ShardLogic>(id: ShardId, cell: &mut ShardCell<S>) -> Option<(SimTime, ShardId)> {
    let local = cell.logic.next_local().map(|t| (t, id));
    let inbox = cell.inbox.peek().map(|Reverse(m)| (m.time, m.src));
    match (local, inbox) {
        (None, m) => m,
        (l, None) => l,
        (Some(l), Some(m)) => Some(l.min(m)),
    }
}

/// Drain one shard up to the exclusive `bound`: merge queued deliveries
/// and local events under the `(time, src, seq)` order and execute
/// them. Outbound messages accumulate in `out`. Returns units executed.
fn drain_cell<S: ShardLogic>(
    id: ShardId,
    cell: &mut ShardCell<S>,
    topo: &Topology,
    bound: SimTime,
    out: &mut Vec<Outgoing<S::Msg>>,
) -> u64 {
    let mut units = 0u64;
    loop {
        let local = cell.logic.next_local();
        let inbox = cell.inbox.peek().map(|Reverse(m)| (m.time, m.src));
        let take_msg = match (local, inbox) {
            (_, None) => false,
            (None, Some(_)) => true,
            // A delivery from src j at time t precedes locals at t iff
            // j < this shard's id — the global merge-order rule.
            (Some(tl), Some(mk)) => mk < (tl, id),
        };
        if take_msg {
            let Some(Reverse(head)) = cell.inbox.pop() else {
                break;
            };
            if head.time >= bound {
                cell.inbox.push(Reverse(head));
                break;
            }
            // `floor` is exclusive: every unit strictly below it has
            // executed. Same-timestamp deliveries are legal (the merge
            // rule orders them after lower-src units at that instant);
            // a *strictly earlier* delivery is a causality straggler.
            let on_time = head.time.saturating_add(SimDuration::from_nanos(1)) >= cell.floor;
            audit::check("shard.merge_order", head.time.as_nanos(), on_time, || {
                format!(
                    "straggler: delivery from {} at {} reached shard {id} after it ran past {}",
                    head.src, head.time, cell.floor
                )
            });
            debug_assert!(on_time, "straggler delivery on shard {id}");
            cell.floor = cell
                .floor
                .max(head.time.saturating_add(SimDuration::from_nanos(1)));
            let mut ctx = ShardCtx {
                shard: id,
                now: head.time,
                limit: head.time,
                topo,
                seq: &mut cell.send_seq,
                out,
            };
            cell.logic.on_message(&mut ctx, head.src, head.msg);
            units += 1;
        } else {
            let Some(tl) = local else { break };
            if tl >= bound {
                break;
            }
            // Run locals only up to the next queued delivery: exactly
            // to it when the sender orders first (src < id), through
            // its timestamp when the sender orders after (src > id).
            let cut = match inbox {
                None => bound,
                Some((tm, src)) if src < id => bound.min(tm),
                Some((tm, _)) => bound.min(tm.saturating_add(SimDuration::from_nanos(1))),
            };
            let mut ctx = ShardCtx {
                shard: id,
                now: tl,
                limit: cut,
                topo,
                seq: &mut cell.send_seq,
                out,
            };
            units += cell.logic.run_local(&mut ctx);
            let after = cell.logic.next_local();
            assert!(
                after.is_none_or(|t| t >= cut),
                "shard {id} run_local left an event at {after:?} below its limit {cut}"
            );
            cell.floor = cell.floor.max(cut);
        }
    }
    units
}

/// Per-shard conservative horizons given every shard's next-unit key.
fn horizons(
    paths: &[Option<SimDuration>],
    n: usize,
    keys: &[Option<(SimTime, ShardId)>],
) -> Vec<SimTime> {
    (0..n)
        .map(|i| {
            let mut b = SimTime::MAX;
            for (k, key) in keys.iter().enumerate() {
                let Some((t, _)) = key else { continue };
                if let Some(p) = paths[k * n + i] {
                    b = b.min(t.saturating_add(p));
                }
            }
            b
        })
        .collect()
}

/// Globally minimal `(time, src, shard)` across every shard's next
/// unit — the fallback step's target and the termination check.
fn global_min(keys: &[Option<(SimTime, ShardId)>]) -> Option<(SimTime, ShardId, usize)> {
    keys.iter()
        .enumerate()
        .filter_map(|(i, k)| k.map(|(t, s)| (t, s, i)))
        .min()
}

/// One round's instructions for a worker: horizons for the shards it
/// must drain plus deliveries bound for shards it owns. Workers exit
/// when the command channel hangs up.
struct Round<M> {
    work: Vec<(usize, SimTime)>,
    deliveries: Vec<(usize, InboxItem<M>)>,
}

struct Reply<M> {
    out: Vec<Outgoing<M>>,
    keys: Vec<(usize, Option<(SimTime, ShardId)>)>,
    units: u64,
}

/// The sharded runner: owns every shard's [`ShardLogic`], the
/// [`Topology`], and the undelivered-message heaps, and executes the
/// conservative protocol in any [`RunMode`].
pub struct ShardedEngine<S: ShardLogic> {
    topo: Topology,
    paths: Vec<Option<SimDuration>>,
    cells: Vec<ShardCell<S>>,
    stats: ShardStats,
}

impl<S: ShardLogic> ShardedEngine<S> {
    /// Build a runner over `shards`, whose index order is the
    /// tie-breaking `src_shard` order of the merge rule.
    pub fn new(topo: Topology, shards: Vec<S>) -> Self {
        assert_eq!(
            shards.len(),
            topo.shards() as usize,
            "one ShardLogic per topology shard"
        );
        let paths = topo.path_matrix();
        let cells = shards
            .into_iter()
            .map(|logic| ShardCell {
                logic,
                inbox: BinaryHeap::new(),
                send_seq: 0,
                floor: SimTime::ZERO,
            })
            .collect();
        ShardedEngine {
            topo,
            paths,
            cells,
            stats: ShardStats::default(),
        }
    }

    /// The shard logic at `id`.
    pub fn logic(&self, id: ShardId) -> &S {
        &self.cells[id as usize].logic
    }

    /// Mutable access to the shard logic at `id` (setup only; calling
    /// this mid-run from another shard's handler is what CL013 bans).
    pub fn logic_mut(&mut self, id: ShardId) -> &mut S {
        &mut self.cells[id as usize].logic
    }

    /// Consume the runner, returning every shard's logic in id order.
    pub fn into_logics(self) -> Vec<S> {
        self.cells.into_iter().map(|c| c.logic).collect()
    }

    /// Counters from the run so far.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Execute every unit timestamped at or before `end` (inclusive,
    /// matching [`crate::Engine::run_until`]) under `mode`. Returns the
    /// accumulated [`ShardStats`].
    pub fn run(&mut self, end: SimTime, mode: RunMode) -> ShardStats {
        match mode {
            RunMode::SingleQueue => self.run_serial(end, true),
            RunMode::Windowed { jobs } if jobs <= 1 => self.run_serial(end, false),
            RunMode::Windowed { jobs } => self.run_parallel(end, jobs),
        }
        self.stats
    }

    fn route(&mut self, out: &mut Vec<Outgoing<S::Msg>>) {
        for o in out.drain(..) {
            self.stats.messages += 1;
            self.cells[o.dst as usize].inbox.push(Reverse(o.item));
        }
    }

    fn run_serial(&mut self, end: SimTime, force_fallback: bool) {
        let n = self.cells.len();
        // Exclusive execution cap: units at exactly `end` still run.
        let hard = end.saturating_add(SimDuration::from_nanos(1));
        let mut out: Vec<Outgoing<S::Msg>> = Vec::new();
        loop {
            let keys: Vec<_> = (0..n)
                .map(|i| next_key(i as ShardId, &mut self.cells[i]))
                .collect();
            let Some((gt, _gs, gi)) = global_min(&keys) else {
                break;
            };
            if gt > end {
                break;
            }
            let mut progressed = false;
            if !force_fallback {
                let hz = horizons(&self.paths, n, &keys);
                let mut round_max = 0u64;
                for (i, key) in keys.iter().enumerate() {
                    let Some((t, _)) = key else { continue };
                    let b = hz[i].min(hard);
                    if *t < b {
                        progressed = true;
                        let units =
                            drain_cell(i as ShardId, &mut self.cells[i], &self.topo, b, &mut out);
                        self.stats.units += units;
                        round_max = round_max.max(units);
                    }
                }
                if progressed {
                    self.stats.rounds += 1;
                    self.stats.critical_units += round_max;
                }
            }
            if !progressed {
                // Zero-lookahead (or oracle mode): execute exactly the
                // globally minimal timestamp on its shard.
                let b = gt.saturating_add(SimDuration::from_nanos(1)).min(hard);
                let units = drain_cell(gi as ShardId, &mut self.cells[gi], &self.topo, b, &mut out);
                self.stats.units += units;
                self.stats.critical_units += units;
                self.stats.serial_steps += 1;
            }
            self.route(&mut out);
        }
    }

    fn run_parallel(&mut self, end: SimTime, jobs: usize) {
        let n = self.cells.len();
        let jobs = jobs.clamp(1, n);
        let hard = end.saturating_add(SimDuration::from_nanos(1));
        let mut keys: Vec<Option<(SimTime, ShardId)>> = (0..n)
            .map(|i| next_key(i as ShardId, &mut self.cells[i]))
            .collect();
        // In-flight deliveries the owning worker has not been handed yet.
        let mut pending: Vec<Vec<InboxItem<S::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        let owner: Vec<usize> = (0..n).map(|i| i % jobs).collect();
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); jobs];
        for i in 0..n {
            owned[owner[i]].push(i);
        }
        let topo = &self.topo;
        let paths = &self.paths;
        let stats = &mut self.stats;
        let audit_on = audit::is_enabled();
        let mut parts: Vec<Vec<(usize, &mut ShardCell<S>)>> =
            (0..jobs).map(|_| Vec::new()).collect();
        for (i, cell) in self.cells.iter_mut().enumerate() {
            parts[i % jobs].push((i, cell));
        }
        let reports = std::thread::scope(|scope| {
            let mut cmd_txs = Vec::with_capacity(jobs);
            let mut rep_rxs = Vec::with_capacity(jobs);
            let mut handles = Vec::with_capacity(jobs);
            for part in parts {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Round<S::Msg>>();
                let (rep_tx, rep_rx) = mpsc::channel::<Reply<S::Msg>>();
                cmd_txs.push(cmd_tx);
                rep_rxs.push(rep_rx);
                handles.push(scope.spawn(move || worker(part, topo, audit_on, &cmd_rx, &rep_tx)));
            }
            'rounds: loop {
                let Some((gt, _gs, gi)) = global_min(&keys) else {
                    break;
                };
                if gt > end {
                    break;
                }
                let hz = horizons(paths, n, &keys);
                let mut work: Vec<Vec<(usize, SimTime)>> = vec![Vec::new(); jobs];
                let mut any = false;
                for (i, key) in keys.iter().enumerate() {
                    let Some((t, _)) = key else { continue };
                    let b = hz[i].min(hard);
                    if *t < b {
                        any = true;
                        work[owner[i]].push((i, b));
                    }
                }
                if any {
                    stats.rounds += 1;
                } else {
                    let b = gt.saturating_add(SimDuration::from_nanos(1)).min(hard);
                    work[owner[gi]].push((gi, b));
                    stats.serial_steps += 1;
                }
                let active: Vec<usize> = (0..jobs).filter(|&w| !work[w].is_empty()).collect();
                for &w in &active {
                    let mut deliveries = Vec::new();
                    for &i in &owned[w] {
                        for item in pending[i].drain(..) {
                            deliveries.push((i, item));
                        }
                    }
                    let cmd = Round {
                        work: std::mem::take(&mut work[w]),
                        deliveries,
                    };
                    if cmd_txs[w].send(cmd).is_err() {
                        break 'rounds; // worker died; scope join reports it
                    }
                }
                // Collect in worker-index order so audit absorption and
                // stats stay deterministic; message order itself is
                // already total under (time, src, seq). Key maintenance
                // is two-pass: apply every worker's fresh keys first,
                // THEN fold this round's messages in — a worker's
                // reported key cannot see messages other workers sent to
                // its shards (those sit in `pending` until next round),
                // so interleaving overwrite and fold would lose the
                // message minimum and over-open the next horizons.
                let mut replies = Vec::with_capacity(active.len());
                for &w in &active {
                    let Ok(rep) = rep_rxs[w].recv() else {
                        break 'rounds;
                    };
                    replies.push(rep);
                }
                stats.critical_units += replies.iter().map(|r| r.units).max().unwrap_or(0);
                for rep in &replies {
                    stats.units += rep.units;
                    for (i, key) in &rep.keys {
                        keys[*i] = *key;
                    }
                }
                for rep in replies {
                    for o in rep.out {
                        stats.messages += 1;
                        let dst = o.dst as usize;
                        let mk = (o.item.time, o.item.src);
                        keys[dst] = match keys[dst] {
                            None => Some(mk),
                            Some(cur) => Some(cur.min(mk)),
                        };
                        pending[dst].push(o.item);
                    }
                }
            }
            drop(cmd_txs); // workers see the hangup and exit
            let mut reports = Vec::with_capacity(jobs);
            for h in handles {
                match h.join() {
                    Ok(r) => reports.push(r),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
            reports
        });
        // Undelivered messages past `end` go back to the inboxes so a
        // later `run` call can continue where this one stopped.
        for (i, items) in pending.into_iter().enumerate() {
            for item in items {
                self.cells[i].inbox.push(Reverse(item));
            }
        }
        if audit_on {
            for r in reports {
                audit::absorb(r);
            }
        }
    }
}

fn worker<S: ShardLogic>(
    mut part: Vec<(usize, &mut ShardCell<S>)>,
    topo: &Topology,
    audit_on: bool,
    rx: &mpsc::Receiver<Round<S::Msg>>,
    tx: &mpsc::Sender<Reply<S::Msg>>,
) -> audit::AuditReport {
    if audit_on {
        audit::enable();
    }
    while let Ok(Round { work, deliveries }) = rx.recv() {
        for (shard, item) in deliveries {
            if let Some((_, cell)) = part.iter_mut().find(|(i, _)| *i == shard) {
                cell.inbox.push(Reverse(item));
            }
        }
        let mut out = Vec::new();
        let mut units = 0u64;
        for (shard, bound) in work {
            let Some((_, cell)) = part.iter_mut().find(|(i, _)| *i == shard) else {
                continue; // unreachable: the runner only routes owned shards
            };
            units += drain_cell(shard as ShardId, cell, topo, bound, &mut out);
        }
        let keys = part
            .iter_mut()
            .map(|(i, cell)| (*i, next_key(*i as ShardId, cell)))
            .collect();
        if tx.send(Reply { out, keys, units }).is_err() {
            break;
        }
    }
    audit::take_report()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted test shard: a heap of local events that log and may
    /// ping other shards; deliveries log and may pong back.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    enum Ev {
        Note(&'static str),
        Ping {
            dst: ShardId,
            delay: SimDuration,
            hops: u32,
        },
    }

    struct TestShard {
        pending: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
        seq: u64,
        log: Vec<(u64, String)>,
    }

    impl TestShard {
        fn new() -> Self {
            TestShard {
                pending: BinaryHeap::new(),
                seq: 0,
                log: Vec::new(),
            }
        }

        fn at(mut self, t: SimTime, ev: Ev) -> Self {
            self.push(t, ev);
            self
        }

        fn push(&mut self, t: SimTime, ev: Ev) {
            self.pending.push(Reverse((t, self.seq, ev)));
            self.seq += 1;
        }
    }

    impl ShardLogic for TestShard {
        type Msg = u32; // remaining hops

        fn next_local(&mut self) -> Option<SimTime> {
            self.pending.peek().map(|Reverse((t, _, _))| *t)
        }

        fn run_local(&mut self, ctx: &mut ShardCtx<'_, u32>) -> u64 {
            let mut ran = 0;
            while let Some(Reverse((t, _, _))) = self.pending.peek() {
                if *t >= ctx.limit() {
                    break;
                }
                let Some(Reverse((t, _, ev))) = self.pending.pop() else {
                    break;
                };
                ran += 1;
                match ev {
                    Ev::Note(s) => self.log.push((t.as_nanos(), format!("local:{s}"))),
                    Ev::Ping { dst, delay, hops } => {
                        self.log.push((t.as_nanos(), format!("ping->{dst}")));
                        ctx.send(t, dst, delay, hops);
                    }
                }
            }
            ran
        }

        fn on_message(&mut self, ctx: &mut ShardCtx<'_, u32>, src: ShardId, hops: u32) {
            let t = ctx.now();
            self.log.push((t.as_nanos(), format!("recv<-{src}:{hops}")));
            if hops > 0 {
                // Pong straight back over the same channel.
                let Some(lat) = ctx.channel_latency(src) else {
                    return;
                };
                ctx.send(t, src, lat, hops - 1);
            }
        }
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_nanos(n * 1_000_000)
    }

    fn tms(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000_000)
    }

    fn logs(engine: ShardedEngine<TestShard>) -> Vec<Vec<(u64, String)>> {
        engine.into_logics().into_iter().map(|s| s.log).collect()
    }

    fn ping_pong_world(lat: SimDuration) -> ShardedEngine<TestShard> {
        let mut topo = Topology::new(2);
        topo.link_both(0, 1, lat);
        let s0 = TestShard::new().at(
            tms(1),
            Ev::Ping {
                dst: 1,
                delay: lat.max(ms(1)),
                hops: 5,
            },
        );
        let s1 = TestShard::new().at(tms(2), Ev::Note("t2"));
        ShardedEngine::new(topo, vec![s0, s1])
    }

    #[test]
    fn ping_pong_identical_across_modes() {
        let end = SimTime::from_secs(1);
        let mut oracle = ping_pong_world(ms(1));
        oracle.run(end, RunMode::SingleQueue);
        let oracle_logs = logs(oracle);
        for jobs in [1usize, 2] {
            let mut e = ping_pong_world(ms(1));
            let stats = e.run(end, RunMode::Windowed { jobs });
            assert_eq!(logs(e), oracle_logs, "jobs={jobs} diverged from oracle");
            assert!(stats.messages >= 6, "ping-pong routed {stats:?}");
        }
    }

    #[test]
    fn zero_lookahead_degrades_to_serial_order() {
        let end = SimTime::from_secs(1);
        let mut oracle = ping_pong_world(SimDuration::ZERO);
        oracle.run(end, RunMode::SingleQueue);
        let oracle_logs = logs(oracle);
        let mut e = ping_pong_world(SimDuration::ZERO);
        let stats = e.run(end, RunMode::Windowed { jobs: 2 });
        assert_eq!(logs(e), oracle_logs, "zero lookahead diverged");
        assert!(
            stats.serial_steps > 0,
            "zero-lookahead topology must fall back: {stats:?}"
        );
    }

    #[test]
    fn merge_order_prefers_lower_source_at_equal_time() {
        // Shards 1 and 2 both message shard 0 arriving at t=5ms, where
        // shard 0 also has two local events. Global order at t=5ms:
        // shard 0's locals (src 0), then src 1's delivery, then src 2's.
        let mut topo = Topology::new(3);
        topo.link(1, 0, ms(1));
        topo.link(2, 0, ms(1));
        for mode in [
            RunMode::SingleQueue,
            RunMode::Windowed { jobs: 1 },
            RunMode::Windowed { jobs: 3 },
        ] {
            let mut e = ShardedEngine::new(
                topo.clone(),
                vec![
                    TestShard::new()
                        .at(tms(5), Ev::Note("a"))
                        .at(tms(5), Ev::Note("b")),
                    TestShard::new().at(
                        tms(4),
                        Ev::Ping {
                            dst: 0,
                            delay: ms(1),
                            hops: 0,
                        },
                    ),
                    TestShard::new().at(
                        tms(4),
                        Ev::Ping {
                            dst: 0,
                            delay: ms(1),
                            hops: 0,
                        },
                    ),
                ],
            );
            e.run(SimTime::from_secs(1), mode);
            let all = logs(e);
            let got: Vec<&str> = all[0].iter().map(|(_, s)| s.as_str()).collect();
            assert_eq!(
                got,
                vec!["local:a", "local:b", "recv<-1:0", "recv<-2:0"],
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn windowed_rounds_exploit_lookahead() {
        // With a fat 10ms latency the ping-pong should complete in
        // conservative windows, not serial fallbacks.
        let end = SimTime::from_secs(1);
        let mut e = ping_pong_world(ms(10));
        let stats = e.run(end, RunMode::Windowed { jobs: 1 });
        assert!(stats.rounds > 0, "no windowed rounds: {stats:?}");
        assert_eq!(stats.serial_steps, 0, "lookahead was ignored: {stats:?}");
    }

    #[test]
    fn isolated_shard_runs_in_one_window() {
        // No in-links means an unbounded horizon: the whole schedule
        // executes in a single round.
        let topo = Topology::new(1);
        let s = TestShard::new()
            .at(tms(1), Ev::Note("x"))
            .at(tms(2), Ev::Note("y"));
        let mut e = ShardedEngine::new(topo, vec![s]);
        let stats = e.run(SimTime::from_secs(1), RunMode::Windowed { jobs: 1 });
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.units, 2);
    }

    #[test]
    fn end_is_inclusive_and_later_events_wait() {
        let topo = Topology::new(1);
        let s = TestShard::new()
            .at(tms(10), Ev::Note("in"))
            .at(tms(11), Ev::Note("out"));
        let mut e = ShardedEngine::new(topo, vec![s]);
        e.run(tms(10), RunMode::Windowed { jobs: 1 });
        let all = logs(e);
        let got: Vec<&str> = all[0].iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(got, vec!["local:in"]);
    }

    #[test]
    #[should_panic(expected = "no channel from shard")]
    fn sending_without_a_channel_panics() {
        let topo = Topology::new(2);
        let s0 = TestShard::new().at(
            tms(1),
            Ev::Ping {
                dst: 1,
                delay: ms(1),
                hops: 0,
            },
        );
        let mut e = ShardedEngine::new(topo, vec![s0, TestShard::new()]);
        e.run(SimTime::from_secs(1), RunMode::Windowed { jobs: 1 });
    }

    #[test]
    #[should_panic(expected = "min latency")]
    fn sending_below_channel_latency_panics() {
        let mut topo = Topology::new(2);
        topo.link(0, 1, ms(5));
        let s0 = TestShard::new().at(
            tms(1),
            Ev::Ping {
                dst: 1,
                delay: ms(1),
                hops: 0,
            },
        );
        let mut e = ShardedEngine::new(topo, vec![s0, TestShard::new()]);
        e.run(SimTime::from_secs(1), RunMode::Windowed { jobs: 1 });
    }

    #[test]
    fn multi_hop_horizons_are_transitive() {
        // 0 → 1 is instantaneous, 1 → 2 is slow. Shard 2's horizon must
        // use the 0→1→2 chain (0 + 10ms), not only the direct 1→2 link,
        // or a relayed message could straggle. The oracle comparison
        // catches any ordering break.
        let mut topo = Topology::new(3);
        topo.link(0, 1, SimDuration::ZERO);
        topo.link(1, 2, ms(10));
        let run = |mode: RunMode| {
            let s0 = TestShard::new().at(
                tms(1),
                Ev::Ping {
                    dst: 1,
                    delay: SimDuration::ZERO,
                    hops: 0,
                },
            );
            // Shard 1 fires a slow ping to 2 after the instant delivery
            // from 0; shard 2 has its own local event in between.
            let s1 = TestShard::new().at(
                tms(2),
                Ev::Ping {
                    dst: 2,
                    delay: ms(10),
                    hops: 0,
                },
            );
            let s2 = TestShard::new().at(tms(3), Ev::Note("late"));
            let mut e = ShardedEngine::new(topo.clone(), vec![s0, s1, s2]);
            e.run(SimTime::from_secs(1), mode);
            logs(e)
        };
        assert_eq!(
            run(RunMode::SingleQueue),
            run(RunMode::Windowed { jobs: 1 })
        );
        assert_eq!(
            run(RunMode::SingleQueue),
            run(RunMode::Windowed { jobs: 3 })
        );
    }

    #[test]
    fn audit_flags_lookahead_breaches_before_the_assert() {
        audit::enable();
        let mut topo = Topology::new(2);
        topo.link(0, 1, ms(5));
        let topo2 = topo.clone();
        let caught = std::panic::catch_unwind(move || {
            let s0 = TestShard::new().at(
                tms(1),
                Ev::Ping {
                    dst: 1,
                    delay: ms(1),
                    hops: 0,
                },
            );
            let mut e = ShardedEngine::new(topo2, vec![s0, TestShard::new()]);
            e.run(SimTime::from_secs(1), RunMode::Windowed { jobs: 1 });
        });
        assert!(caught.is_err(), "undersized delay must panic");
        let report = audit::take_report();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "shard.lookahead"),
            "lookahead breach not audited: {report:?}"
        );
    }
}
