//! Runtime invariant auditing.
//!
//! The simulation layers carry physical invariants that no type can
//! express: event time never runs backwards, a scheduler never grants
//! more core-time than the machine has, device utilizations stay inside
//! `[0, 1]`, sampled metrics are finite. This module gives every layer a
//! single, dependency-free place to report those checks at runtime.
//!
//! Auditing is **off by default** and costs one thread-local flag read
//! per check site when disabled. Enable it with [`enable`], run the
//! simulation, then collect the [`AuditReport`] with [`take_report`]:
//!
//! ```
//! use cloudchar_simcore::audit;
//!
//! audit::enable();
//! audit::check("demo.nonnegative", 0, 1.0 >= 0.0, || "impossible".into());
//! let report = audit::take_report();
//! assert!(report.is_clean());
//! assert_eq!(report.checks, 1);
//! ```
//!
//! The collector is **thread-local**: enabling it audits the current
//! thread only. Parallel seed sweeps run each seed on its own thread, so
//! a sweep is audited by enabling inside the per-seed closure (or by
//! auditing a serial rerun of the seed in question). Violations are
//! recorded in deterministic simulation order — same seed, same report.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Cap on *recorded* violations per report; the total count keeps
/// incrementing past it so a hot broken invariant cannot balloon memory.
pub const MAX_RECORDED: usize = 64;

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Dotted invariant identifier, e.g. `"engine.time_monotonic"`.
    pub invariant: String,
    /// Human-readable description of the failing state.
    pub detail: String,
    /// Simulation time of the check, in nanoseconds (0 when the checking
    /// layer has no clock access).
    pub sim_time_ns: u64,
}

/// Outcome of an audited run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Total invariant checks evaluated.
    pub checks: u64,
    /// Total violations observed (may exceed `violations.len()`).
    pub violations_total: u64,
    /// Recorded violations, oldest first, capped at [`MAX_RECORDED`].
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the run upheld every checked invariant.
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
    }

    /// One-line summary suitable for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "audit: {} checks, {} violations",
            self.checks, self.violations_total
        )
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<AuditReport>> = const { RefCell::new(None) };
}

/// Start auditing on this thread, discarding any previous report.
pub fn enable() {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(AuditReport::default()));
}

/// Whether auditing is active on this thread.
pub fn is_enabled() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Stop auditing and return the report accumulated since [`enable`].
/// Returns an empty report when auditing was never enabled.
pub fn take_report() -> AuditReport {
    COLLECTOR
        .with(|c| c.borrow_mut().take())
        .unwrap_or_default()
}

/// Fold a report from another thread into this thread's collector.
///
/// Parallel seed sweeps audit each worker thread separately (the
/// collector is thread-local); the pool absorbs worker reports into the
/// caller's collector *in seed order*, so the merged report is as
/// deterministic as a serial audited run. No-op when auditing is
/// disabled on the calling thread.
pub fn absorb(other: AuditReport) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(report) = slot.as_mut() else { return };
        report.checks += other.checks;
        report.violations_total += other.violations_total;
        for v in other.violations {
            if report.violations.len() >= MAX_RECORDED {
                break;
            }
            report.violations.push(v);
        }
    });
}

/// Record one invariant check. `detail` is only rendered on failure.
///
/// No-op (beyond the flag read) when auditing is disabled, so check
/// sites may sit on hot paths.
pub fn check(invariant: &str, sim_time_ns: u64, ok: bool, detail: impl FnOnce() -> String) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(report) = slot.as_mut() else { return };
        report.checks += 1;
        if !ok {
            report.violations_total += 1;
            if report.violations.len() < MAX_RECORDED {
                report.violations.push(Violation {
                    invariant: invariant.to_string(),
                    detail: detail(),
                    sim_time_ns,
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_cheap() {
        assert!(!is_enabled());
        check("x.y", 0, false, || {
            unreachable!("detail rendered while disabled")
        });
        assert!(take_report().is_clean());
    }

    #[test]
    fn collects_checks_and_violations() {
        enable();
        check("a.ok", 1, true, || String::new());
        check("a.bad", 2, false, || "broke".into());
        let r = take_report();
        assert_eq!(r.checks, 2);
        assert_eq!(r.violations_total, 1);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].invariant, "a.bad");
        assert_eq!(r.violations[0].sim_time_ns, 2);
        assert!(!r.is_clean());
        // Taking the report disabled auditing again.
        assert!(!is_enabled());
    }

    #[test]
    fn recording_caps_but_counting_does_not() {
        enable();
        for i in 0..(MAX_RECORDED as u64 + 10) {
            check("b.flood", i, false, || format!("v{i}"));
        }
        let r = take_report();
        assert_eq!(r.violations.len(), MAX_RECORDED);
        assert_eq!(r.violations_total, MAX_RECORDED as u64 + 10);
    }

    #[test]
    fn enable_resets_previous_state() {
        enable();
        check("c.bad", 0, false, || "old".into());
        enable();
        let r = take_report();
        assert!(r.is_clean());
        assert_eq!(r.checks, 0);
    }

    #[test]
    fn absorb_merges_counts_and_violations() {
        enable();
        check("m.local", 1, false, || "local".into());
        let mut other = AuditReport::default();
        other.checks = 5;
        other.violations_total = 2;
        other.violations.push(Violation {
            invariant: "m.remote".into(),
            detail: "remote".into(),
            sim_time_ns: 9,
        });
        absorb(other);
        let r = take_report();
        assert_eq!(r.checks, 6);
        assert_eq!(r.violations_total, 3);
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.violations[1].invariant, "m.remote");
    }

    #[test]
    fn absorb_without_collector_is_noop() {
        assert!(!is_enabled());
        let mut other = AuditReport::default();
        other.checks = 3;
        absorb(other);
        assert!(!is_enabled());
    }

    #[test]
    fn report_serializes() {
        enable();
        check("d.bad", 7, false, || "boom".into());
        let r = take_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
