//! Bit-level I/O for the compressed trace codec.
//!
//! [`BitWriter`] packs an MSB-first bit stream into a byte buffer and
//! [`BitReader`] walks one back out. They are the substrate for the
//! delta-of-delta timestamp and Gorilla-style XOR float encodings in
//! `monitor::chunk`: every control code and payload there is a
//! fixed-width big-endian bit field, so the only primitives needed are
//! "append the low `n` bits of a `u64`" and "read the next `n` bits".
//!
//! The writer is infallible (it grows its buffer); the reader returns
//! `None` once the stream is exhausted so truncated input surfaces as a
//! decode error instead of a panic.

/// Zig-zag encode a signed delta so small magnitudes of either sign get
/// small unsigned codes (`0 → 0`, `-1 → 1`, `1 → 2`, `-2 → 3`, …).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append-only MSB-first bit buffer.
///
/// `clear` keeps the allocation, so a sealed chunk's writer can be
/// reused for the next chunk without reallocating — the steady-state
/// sampling tick performs zero heap allocation.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    nbits: usize,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.nbits
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Capacity of the backing buffer in bytes (resident-memory proxy).
    pub fn capacity_bytes(&self) -> usize {
        self.buf.capacity()
    }

    /// Reset to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.nbits = 0;
    }

    /// The packed bytes; the final byte is zero-padded on the right.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append the low `n` bits of `value`, most significant first.
    /// `n` must be ≤ 64; `n == 0` is a no-op.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        let mut left = n;
        while left > 0 {
            let off = self.nbits & 7;
            if off == 0 {
                self.buf.push(0);
            }
            let free = (8 - off) as u32;
            let take = free.min(left);
            let shift = left - take;
            let chunk = if take == 64 {
                value
            } else {
                (value >> shift) & ((1u64 << take) - 1)
            };
            let idx = self.buf.len() - 1;
            self.buf[idx] |= (chunk as u8) << (free - take);
            self.nbits += take as usize;
            left -= take;
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }
}

/// MSB-first reader over a packed byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    limit: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over every bit of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            pos: 0,
            limit: buf.len() * 8,
        }
    }

    /// Bits consumed so far.
    pub fn pos_bits(&self) -> usize {
        self.pos
    }

    /// Read the next `n` bits as the low bits of a `u64`, or `None` if
    /// fewer than `n` bits remain. `n` must be ≤ 64.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        if self.pos.checked_add(n as usize)? > self.limit {
            return None;
        }
        let mut out = 0u64;
        let mut left = n;
        while left > 0 {
            let byte = self.buf[self.pos >> 3];
            let off = (self.pos & 7) as u32;
            let avail = 8 - off;
            let take = avail.min(left);
            let chunk = (byte >> (avail - take)) as u64 & ((1u64 << take) - 1);
            out = if take == 64 {
                chunk
            } else {
                (out << take) | chunk
            };
            self.pos += take as usize;
            left -= take;
        }
        Some(out)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -54321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn bits_round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        let fields: [(u64, u32); 8] = [
            (1, 1),
            (0b1011, 4),
            (0x3ff, 10),
            (u64::MAX, 64),
            (0, 7),
            (0xdead_beef, 32),
            (1, 1),
            (0x1_ffff_ffff, 33),
        ];
        for (v, n) in fields {
            w.write_bits(v, n);
        }
        let mut r = BitReader::new(w.as_bytes());
        for (v, n) in fields {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn reader_refuses_overrun() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let mut r = BitReader::new(w.as_bytes());
        // The final byte is padded to 8 bits; reading past them fails.
        assert!(r.read_bits(8).is_some());
        assert_eq!(r.read_bits(1), None);
        let mut r2 = BitReader::new(&[]);
        assert_eq!(r2.read_bits(1), None);
        assert_eq!(r2.read_bits(0), Some(0));
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let cap = w.capacity_bytes();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity_bytes(), cap);
        w.write_bits(0b01, 2);
        let mut r = BitReader::new(w.as_bytes());
        assert_eq!(r.read_bits(2), Some(0b01));
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0, 3);
        w.write_bits(0b1111, 4);
        assert_eq!(w.as_bytes(), &[0b1000_1111]);
    }
}
