//! Probability distributions used by workload and device models.
//!
//! All samplers draw from [`SimRng`] via inverse-CDF or classical exact
//! transforms, so a given `(seed, distribution)` pair yields an identical
//! sample path on every platform.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A sampleable distribution over non-negative reals.
pub trait Sample {
    /// Draw one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Theoretical mean, if finite and known.
    fn mean(&self) -> Option<f64>;
}

/// A serializable description of a distribution, the form used in
/// experiment configuration files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
#[allow(missing_docs)] // variant field meanings documented per variant
pub enum Dist {
    /// Always `value`.
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean (`1/λ`).
    Exponential { mean: f64 },
    /// Erlang-`k` with the given overall mean.
    Erlang { k: u32, mean: f64 },
    /// Normal, truncated at zero.
    Normal { mean: f64, std_dev: f64 },
    /// Log-normal parameterized by the underlying normal's `mu`/`sigma`.
    LogNormal { mu: f64, sigma: f64 },
    /// Pareto (heavy-tailed) with scale `x_min > 0` and shape `alpha > 0`.
    Pareto { x_min: f64, alpha: f64 },
    /// Discrete empirical distribution over `(value, weight)` pairs.
    Empirical { points: Vec<(f64, f64)> },
}

impl Dist {
    /// Exponential helper, the most common case in the testbed
    /// (think times, inter-arrivals).
    pub fn exp(mean: f64) -> Dist {
        Dist::Exponential { mean }
    }

    /// Constant helper.
    pub fn constant(value: f64) -> Dist {
        Dist::Constant { value }
    }

    /// Validate parameters, returning a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        fn nonneg(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and >= 0, got {v}"))
            }
        }
        match self {
            Dist::Constant { value } => nonneg("value", *value),
            Dist::Uniform { lo, hi } => {
                nonneg("lo", *lo)?;
                if hi < lo {
                    return Err(format!("uniform hi {hi} < lo {lo}"));
                }
                Ok(())
            }
            Dist::Exponential { mean } => nonneg("mean", *mean),
            Dist::Erlang { k, mean } => {
                if *k == 0 {
                    return Err("erlang k must be >= 1".into());
                }
                nonneg("mean", *mean)
            }
            Dist::Normal { mean, std_dev } => {
                nonneg("mean", *mean)?;
                nonneg("std_dev", *std_dev)
            }
            Dist::LogNormal { mu, sigma } => {
                if !mu.is_finite() {
                    return Err("lognormal mu must be finite".into());
                }
                nonneg("sigma", *sigma)
            }
            Dist::Pareto { x_min, alpha } => {
                if !(x_min.is_finite() && *x_min > 0.0) {
                    return Err("pareto x_min must be > 0".into());
                }
                if !(alpha.is_finite() && *alpha > 0.0) {
                    return Err("pareto alpha must be > 0".into());
                }
                Ok(())
            }
            Dist::Empirical { points } => {
                if points.is_empty() {
                    return Err("empirical distribution needs at least one point".into());
                }
                let total: f64 = points.iter().map(|(_, w)| *w).sum();
                if !(total.is_finite() && total > 0.0) {
                    return Err("empirical weights must sum to a positive number".into());
                }
                if points.iter().any(|(v, w)| !v.is_finite() || *w < 0.0) {
                    return Err("empirical points must be finite with non-negative weights".into());
                }
                Ok(())
            }
        }
    }
}

impl Sample for Dist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.f64(),
            Dist::Exponential { mean } => -mean * rng.f64_open().ln(),
            Dist::Erlang { k, mean } => {
                let per_stage = mean / f64::from(*k);
                let mut total = 0.0;
                for _ in 0..*k {
                    total += -per_stage * rng.f64_open().ln();
                }
                total
            }
            Dist::Normal { mean, std_dev } => {
                // Box-Muller; one draw discarded for statelessness.
                let u1 = rng.f64_open();
                let u2 = rng.f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + std_dev * z).max(0.0)
            }
            Dist::LogNormal { mu, sigma } => {
                let u1 = rng.f64_open();
                let u2 = rng.f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp()
            }
            Dist::Pareto { x_min, alpha } => x_min / rng.f64_open().powf(1.0 / alpha),
            Dist::Empirical { points } => {
                let total: f64 = points.iter().map(|(_, w)| *w).sum();
                let mut target = rng.f64() * total;
                for (v, w) in points {
                    if target < *w {
                        return *v;
                    }
                    target -= w;
                }
                points.last().map(|(v, _)| *v).unwrap_or(0.0)
            }
        }
    }

    fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant { value } => Some(*value),
            Dist::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Dist::Exponential { mean } => Some(*mean),
            Dist::Erlang { mean, .. } => Some(*mean),
            Dist::Normal { mean, .. } => Some(*mean), // approximate: truncation ignored
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Pareto { x_min, alpha } => {
                if *alpha > 1.0 {
                    Some(alpha * x_min / (alpha - 1.0))
                } else {
                    None
                }
            }
            Dist::Empirical { points } => {
                let total: f64 = points.iter().map(|(_, w)| *w).sum();
                if total > 0.0 {
                    Some(points.iter().map(|(v, w)| v * w).sum::<f64>() / total)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::constant(3.5);
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::exp(7.0);
        let m = sample_mean(&d, 200_000, 42);
        assert!((m - 7.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        let m = sample_mean(&d, 100_000, 3);
        assert!((m - 3.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn erlang_mean_and_lower_variance_than_exponential() {
        let e = Dist::exp(10.0);
        let g = Dist::Erlang { k: 4, mean: 10.0 };
        let mut rng = SimRng::new(4);
        let n = 100_000;
        let (mut se, mut se2, mut sg, mut sg2) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = e.sample(&mut rng);
            let y = g.sample(&mut rng);
            se += x;
            se2 += x * x;
            sg += y;
            sg2 += y * y;
        }
        let nf = n as f64;
        let var_e = se2 / nf - (se / nf).powi(2);
        let var_g = sg2 / nf - (sg / nf).powi(2);
        assert!((sg / nf - 10.0).abs() < 0.15);
        assert!(var_g < var_e / 2.0, "erlang var {var_g} vs exp var {var_e}");
    }

    #[test]
    fn normal_truncates_at_zero() {
        let d = Dist::Normal {
            mean: 0.5,
            std_dev: 2.0,
        };
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let d = Dist::LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let m = sample_mean(&d, 300_000, 6);
        let expect = (1.0f64 + 0.125).exp();
        assert!(
            (m - expect).abs() / expect < 0.02,
            "mean {m} expect {expect}"
        );
    }

    #[test]
    fn pareto_respects_x_min_and_mean() {
        let d = Dist::Pareto {
            x_min: 1.0,
            alpha: 3.0,
        };
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        let m = sample_mean(&d, 300_000, 8);
        assert!((m - 1.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn empirical_weights_respected() {
        let d = Dist::Empirical {
            points: vec![(1.0, 1.0), (2.0, 3.0)],
        };
        let mut rng = SimRng::new(9);
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn validate_catches_bad_params() {
        assert!(Dist::Uniform { lo: 5.0, hi: 1.0 }.validate().is_err());
        assert!(Dist::Erlang { k: 0, mean: 1.0 }.validate().is_err());
        assert!(Dist::Pareto {
            x_min: 0.0,
            alpha: 1.0
        }
        .validate()
        .is_err());
        assert!(Dist::Empirical { points: vec![] }.validate().is_err());
        assert!(Dist::Exponential { mean: f64::NAN }.validate().is_err());
        assert!(Dist::exp(7.0).validate().is_ok());
    }

    #[test]
    fn mean_reports() {
        assert_eq!(Dist::exp(7.0).mean(), Some(7.0));
        assert_eq!(
            Dist::Pareto {
                x_min: 1.0,
                alpha: 0.5
            }
            .mean(),
            None
        );
        assert_eq!(
            Dist::Empirical {
                points: vec![(2.0, 1.0), (4.0, 1.0)]
            }
            .mean(),
            Some(3.0)
        );
    }

    #[test]
    fn serde_round_trip() {
        let d = Dist::Erlang { k: 3, mean: 2.5 };
        let s = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
    }
}
