//! The engine's pending-event set: a hierarchical calendar queue
//! (ladder-queue variant).
//!
//! A discrete-event simulation pops events in `(time, seq)` order, where
//! `seq` is the insertion sequence number breaking ties FIFO. A binary
//! heap gives `O(log n)` per operation with poor cache behaviour. The
//! simulator's event times are heavily *clustered*: most pending events
//! sit within milliseconds of the clock (service completions), a long
//! tail sits seconds out (think times). A single-level calendar queue
//! must pick one bucket width for both scales and degrades to `O(n)` on
//! such skew; the hierarchical variant instead refines bucket
//! granularity on demand, giving amortized near-`O(1)` inserts and pops
//! for any distribution.
//!
//! Structure, ordered by distance from the clock:
//!
//! * **bottom** — the events being drained, sorted *descending* by key
//!   so the next event pops from the tail in `O(1)`. Bottom is built
//!   from one bucket at a time and is therefore small; late inserts
//!   below its time bound (`bottom_end`) join it by binary search.
//! * **rungs** — a stack of bucket arrays whose spans tile
//!   `[bottom_end, ladder end)` contiguously, finest (innermost) rung
//!   last. An insert walks inner→outer to the first rung covering its
//!   time and appends to a bucket in `O(1)`. When a popped bucket is
//!   small it is sorted into bottom; when it is large it is *split* into
//!   a new, finer rung (width shrinks at least 2× per split), which is
//!   how the hierarchy adapts to local event density.
//! * **top** — everything at or past the ladder's end, unsorted. When
//!   the ladder is exhausted, top is re-bucketed into a fresh rung sized
//!   to its observed time span — the queue tracks the workload's time
//!   scale with no tuning knobs.
//!
//! ## Ordering contract
//!
//! `pop` returns the entry with the smallest `(time, seq)` key among all
//! pending entries — byte-for-byte the order `BinaryHeap<Reverse<(time,
//! seq)>>` would produce. Keys are unique (`seq` never repeats), ties in
//! `time` resolve FIFO by `seq`, and the contract holds for *any* push
//! pattern, including pushes at times earlier than `bottom_end` (they
//! join bottom by sorted insert and pop first). Bucket-boundary
//! arithmetic is done in `u128`, so the contract has no overflow corner
//! cases anywhere in the `u64` time domain. The equivalence proptests in
//! `tests/prop_queue.rs` pin all of this against a reference heap.

use std::collections::VecDeque;

/// Buckets at or below this size are sorted into bottom instead of
/// being split into a finer rung.
const SORT_THRESHOLD: usize = 64;
/// Most buckets a rung will use; bounds empty-bucket skip cost.
const MAX_BUCKETS: usize = 4096;
/// Rung-stack depth cap; at the cap, buckets sort into bottom no matter
/// their size (correct, just slower — a backstop, not a working regime).
const MAX_RUNGS: usize = 40;

struct Item<V> {
    time: u64,
    seq: u64,
    value: V,
}

impl<V> Item<V> {
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// One level of the ladder: `buckets[i]` spans
/// `[start + i*width, start + (i+1)*width)`, unsorted, except that the
/// last bucket is truncated at `end` so coverage tiles `[start, end)`
/// exactly — `width` need not divide the span.
struct Rung<V> {
    start: u64,
    width: u64, // >= 1
    /// Exclusive logical end of this rung's coverage. Kept in `u128`
    /// because a rung spanning up to `u64::MAX` inclusive ends at
    /// `2^64`, which a `u64` cannot hold.
    end: u128,
    buckets: VecDeque<Vec<Item<V>>>,
}

impl<V> Rung<V> {
    /// Append an item; requires `start <= item.time` and
    /// `item.time < self.end`.
    fn place(&mut self, item: Item<V>) {
        let idx = ((item.time - self.start) / self.width) as usize;
        self.buckets[idx].push(item);
    }
}

/// Build a rung of `>= 2` buckets tiling exactly `[start, start + span)`.
/// `width * count` may overshoot `span` when `width` does not divide it;
/// the stored `end` truncates the last bucket so coverage never exceeds
/// the requested span (an overshooting end would overlap an outer rung's
/// remaining buckets and break pop ordering).
fn new_rung<V>(start: u64, span: u128, at_most: usize) -> Rung<V> {
    let buckets = at_most.clamp(2, MAX_BUCKETS) as u128;
    let width = span.div_ceil(buckets).max(1) as u64;
    let count = span.div_ceil(width as u128) as usize;
    Rung {
        start,
        width,
        end: start as u128 + span,
        buckets: (0..count.max(1)).map(|_| Vec::new()).collect(),
    }
}

/// A monotone priority queue over `(time, seq)` keys with amortized
/// near-`O(1)` operations for clustered event-time distributions.
pub struct CalendarQueue<V> {
    /// Events being drained; sorted descending by key, popped from the
    /// tail.
    bottom: Vec<Item<V>>,
    /// Exclusive time bound of bottom: pushes below it join bottom, and
    /// every event in the rungs or top has `time >= bottom_end`. `u128`
    /// because a fully drained ladder covering `u64::MAX` ends at `2^64`.
    bottom_end: u128,
    /// The ladder, outermost (coarsest, latest span) first. Rung spans
    /// tile `[bottom_end, rungs[0].end)` contiguously.
    rungs: Vec<Rung<V>>,
    /// Events at or past the ladder's end, unsorted.
    top: Vec<Item<V>>,
    len: usize,
}

impl<V> Default for CalendarQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> CalendarQueue<V> {
    /// An empty queue. The first pop after a batch of pushes sizes the
    /// ladder from the observed event-time distribution.
    pub fn new() -> Self {
        CalendarQueue {
            bottom: Vec::new(),
            bottom_end: 0,
            rungs: Vec::new(),
            top: Vec::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry. `seq` must be unique across live entries; the
    /// engine guarantees this by never reusing sequence numbers.
    pub fn push(&mut self, time: u64, seq: u64, value: V) {
        self.len += 1;
        let item = Item { time, seq, value };
        if (time as u128) < self.bottom_end {
            // The common case here — an event just ahead of the clock,
            // smaller than everything in bottom — lands at the tail:
            // `partition_point` returns `bottom.len()`, a plain push.
            let key = item.key();
            let pos = self.bottom.partition_point(|it| it.key() > key);
            self.bottom.insert(pos, item);
            return;
        }
        // Innermost (earliest-covering) rung first; rung spans tile
        // `[bottom_end, outermost end)`, so the first rung whose end
        // exceeds `time` covers it.
        for rung in self.rungs.iter_mut().rev() {
            if (time as u128) < rung.end {
                rung.place(item);
                return;
            }
        }
        self.top.push(item);
    }

    /// Key of the next entry to pop, without removing it.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        if self.bottom.is_empty() {
            self.refill_bottom();
        }
        self.bottom.last().map(Item::key)
    }

    /// Remove and return the entry with the smallest `(time, seq)` key.
    pub fn pop(&mut self) -> Option<(u64, u64, V)> {
        if self.bottom.is_empty() {
            self.refill_bottom();
        }
        let item = self.bottom.pop()?;
        self.len -= 1;
        Some((item.time, item.seq, item.value))
    }

    /// Make bottom non-empty if any entry is pending: advance the
    /// innermost rung to its next non-empty bucket, sorting it into
    /// bottom when small and splitting it into a finer rung when large;
    /// rebuild the ladder from top when it runs dry.
    fn refill_bottom(&mut self) {
        debug_assert!(self.bottom.is_empty());
        loop {
            let Some(rung) = self.rungs.last_mut() else {
                if self.top.is_empty() {
                    return; // truly empty
                }
                self.rebuild_from_top();
                continue;
            };
            let Some(bucket) = rung.buckets.pop_front() else {
                self.rungs.pop();
                continue;
            };
            let b_start = rung.start;
            // The popped bucket's logical slot, truncated at the rung's
            // end: `[b_start, b_end)`. Advancing past the rung end would
            // overlap an outer rung's remaining buckets, popping late
            // pushes ahead of earlier-keyed entries still stored there.
            let b_end = (b_start as u128 + rung.width as u128).min(rung.end);
            // Saturation only matters when `b_end == 2^64`, i.e. this was
            // the rung's final bucket and `start` is never read again.
            rung.start = b_end.min(u64::MAX as u128) as u64;
            if bucket.is_empty() {
                continue;
            }
            let same_time = bucket.len() > 1 && {
                let t0 = bucket[0].time;
                bucket.iter().all(|it| it.time == t0)
            };
            let b_span = b_end - b_start as u128;
            if bucket.len() <= SORT_THRESHOLD
                || b_span == 1
                || same_time
                || self.rungs.len() >= MAX_RUNGS
            {
                let mut bucket = bucket;
                bucket.sort_unstable_by(|a, b| b.key().cmp(&a.key()));
                self.bottom = bucket;
                self.bottom_end = b_end;
                return;
            }
            // Split: a finer rung tiling exactly the popped bucket's
            // slot, so rung coverage stays contiguous. Width shrinks at
            // least 2x per split, so depth is bounded by log2(span).
            let mut finer = new_rung(b_start, b_span, bucket.len() / SORT_THRESHOLD);
            for it in bucket {
                finer.place(it);
            }
            self.rungs.push(finer);
        }
    }

    /// The ladder ran dry: re-bucket top into a fresh rung spanning its
    /// observed `[min, max]` time range.
    fn rebuild_from_top(&mut self) {
        debug_assert!(self.rungs.is_empty() && !self.top.is_empty());
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        for it in &self.top {
            min_t = min_t.min(it.time);
            max_t = max_t.max(it.time);
        }
        let span = (max_t - min_t) as u128 + 1;
        let mut rung = new_rung(min_t, span, self.top.len() / SORT_THRESHOLD);
        for it in std::mem::take(&mut self.top) {
            rung.place(it);
        }
        self.rungs.push(rung);
        // Pushes earlier than the new ladder may still arrive; they
        // belong to bottom (currently empty) and pop first.
        self.bottom_end = min_t as u128;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut keys = Vec::new();
        while let Some((t, s, _)) = q.pop() {
            keys.push((t, s));
        }
        keys
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(30, 0, 0);
        q.push(10, 1, 1);
        q.push(20, 2, 2);
        q.push(10, 3, 3);
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q), vec![(10, 1), (10, 3), (20, 2), (30, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = CalendarQueue::new();
        q.push(100, 0, 0);
        q.push(5, 1, 1);
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((5, 1)));
        // Push earlier than `bottom_end` after a pop.
        q.push(6, 2, 2);
        q.push(7, 3, 3);
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((6, 2)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((7, 3)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((100, 0)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), None);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(42, 7, 0);
        q.push(41, 8, 1);
        assert_eq!(q.peek(), Some((41, 8)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((41, 8)));
        assert_eq!(q.peek(), Some((42, 7)));
    }

    #[test]
    fn wide_time_span_rebuilds_cleanly() {
        let mut q = CalendarQueue::new();
        // Span forces rung splits and a ladder rebuild, including the
        // extremes of the time domain.
        for (i, t) in [0u64, 1, 1_000_000_000_000, 500_000, 2, 999, u64::MAX]
            .iter()
            .enumerate()
        {
            q.push(*t, i as u64, i as u32);
        }
        let keys = drain(&mut q);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 7);
    }

    #[test]
    fn many_entries_one_time_stay_fifo() {
        // A same-time pile larger than SORT_THRESHOLD cannot be split
        // by time; it must sort into bottom and pop FIFO by seq.
        let mut q = CalendarQueue::new();
        for seq in 0..(SORT_THRESHOLD as u64 * 4) {
            q.push(77, seq, seq as u32);
        }
        let keys = drain(&mut q);
        assert_eq!(keys.len(), SORT_THRESHOLD * 4);
        for (i, &(t, s)) in keys.iter().enumerate() {
            assert_eq!((t, s), (77, i as u64));
        }
    }

    #[test]
    fn skewed_cluster_splits_into_finer_rungs() {
        // 10k events within 1ms plus one far outlier: the split path
        // must engage (several rungs) and order must hold.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        q.push(8_000_000_000, seq, 0);
        seq += 1;
        for i in 0..10_000u64 {
            q.push((i * 7919) % 1_000_000, seq, i as u32);
            seq += 1;
        }
        let keys = drain(&mut q);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys.len(), 10_001);
    }

    #[test]
    fn split_rung_does_not_overshoot_parent_bucket() {
        // Regression: splitting a [0,5) bucket with at_most=2 gives
        // width 3, and count = ceil(5/3) = 2 buckets covering [0,6) —
        // overshooting the parent slot unless the rung end is clamped.
        // Unclamped, draining the finer rung advanced `bottom_end` to 6
        // while (5, seq 1) still sat in the parent rung, so a later push
        // at t=5 joined bottom and popped first.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        q.push(0, seq, 0);
        seq += 1;
        let early_five = seq;
        q.push(5, seq, 5);
        seq += 1;
        // 128 events in [1,4]: the [0,5) bucket of the initial width-5
        // rung exceeds SORT_THRESHOLD and must split.
        for i in 0..128u64 {
            q.push(1 + i % 4, seq, 0);
            seq += 1;
        }
        q.push(9, seq, 9);
        seq += 1;
        // Drain exactly the 129 events at t <= 4 — no peek afterwards,
        // so bottom stays empty and `bottom_end` sits at the drained
        // split rung's bound when the late push arrives.
        for _ in 0..129 {
            let (t, _, _) = q.pop().unwrap();
            assert!(t <= 4);
        }
        // A second t=5 event, pushed after the split rung drained, must
        // pop AFTER the earlier-seq t=5 event still in the parent rung.
        q.push(5, seq, 55);
        let late_five = seq;
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((5, early_five)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((5, late_five)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((9, seq - 1)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
        assert!(q.pop().is_none());
    }
}
