//! # cloudchar-simcore
//!
//! Deterministic discrete-event simulation engine underpinning the
//! `cloudchar` testbed — the reproduction of *"Characterizing Workload of
//! Web Applications on Virtualized Servers"* (Wang et al.).
//!
//! The crate provides eleven building blocks:
//!
//! * [`time`] — integer-nanosecond simulated time ([`SimTime`],
//!   [`SimDuration`]);
//! * [`audit`] — opt-in runtime invariant checks ([`AuditReport`]);
//! * [`bits`] — MSB-first bit-level I/O for the compressed trace codec
//!   ([`BitWriter`], [`BitReader`]);
//! * [`rng`] — seeded, named-stream random numbers ([`SimRng`]);
//! * [`dist`] — the probability distributions workload and device models
//!   draw from ([`Dist`]);
//! * [`queue`] — the pending-event set, a hierarchical calendar queue
//!   ([`CalendarQueue`]);
//! * [`engine`] — the event scheduler and clock ([`Engine`]);
//! * [`wheel`] — batched timer buckets for client populations
//!   ([`TimerWheel`]);
//! * [`shard`] — conservative parallel execution over per-host event
//!   queues ([`ShardedEngine`]);
//! * [`fault`] — deterministic fault-injection schedules ([`FaultPlan`]);
//! * [`stats`] — streaming accumulators ([`Welford`], [`Counter`], …).
//!
//! Everything is deterministic: a `(seed, configuration)` pair fully
//! determines a simulation run, which the higher layers rely on when
//! comparing virtualized against non-virtualized deployments.
//!
//! ## Example
//!
//! ```
//! use cloudchar_simcore::{Engine, SimDuration, SimTime};
//!
//! struct World { pings: u32 }
//!
//! let mut engine: Engine<World> = Engine::new();
//! let mut world = World { pings: 0 };
//! engine.schedule_periodic(SimTime::ZERO, SimDuration::from_secs(2), |_, w| {
//!     w.pings += 1;
//!     w.pings < 5
//! });
//! engine.run(&mut world);
//! assert_eq!(world.pings, 5);
//! assert_eq!(engine.now(), SimTime::from_secs(8));
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod bits;
pub mod dist;
pub mod engine;
pub mod fault;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod wheel;

pub use audit::AuditReport;
pub use bits::{BitReader, BitWriter};
pub use dist::{Dist, Sample};
pub use engine::{Engine, EventId};
pub use fault::{FaultEvent, FaultKind, FaultPhase, FaultPlan, FaultTier};
pub use queue::CalendarQueue;
pub use rng::SimRng;
pub use shard::{RunMode, ShardCtx, ShardId, ShardLogic, ShardStats, ShardedEngine, Topology};
pub use stats::{Counter, Ewma, LogHistogram, Welford};
pub use time::{SimDuration, SimTime};
pub use wheel::TimerWheel;
