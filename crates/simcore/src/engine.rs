//! The discrete-event engine.
//!
//! An [`Engine`] owns a priority queue of timestamped actions over a world
//! type `W`. Actions are `FnOnce(&mut Engine<W>, &mut W)` closures, so any
//! handler may schedule or cancel further events. Ties in time are broken
//! by insertion sequence number, which makes execution order total and
//! deterministic.
//!
//! The pending set is a [`CalendarQueue`], which pops in exactly the
//! `(time, seq)` order a binary heap would but with near-`O(1)`
//! operations for the simulator's clustered event times; see
//! [`crate::queue`] for the ordering contract and the equivalence tests
//! that pin it.

use crate::queue::CalendarQueue;
use crate::time::{SimDuration, SimTime};
use std::collections::HashSet;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type Action<W> = Box<dyn FnOnce(&mut Engine<W>, &mut W) + Send>;

struct Entry<W> {
    time: SimTime,
    seq: u64,
    action: Action<W>,
}

/// Discrete-event simulation engine over a world `W`.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<Action<W>>,
    cancelled: HashSet<u64>,
    executed: u64,
    /// Hard cap on executed events; guards against runaway feedback loops.
    event_limit: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Create an engine at time zero with the default event limit (10⁹).
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            cancelled: HashSet::new(),
            executed: 0,
            event_limit: 1_000_000_000,
        }
    }

    /// Override the runaway-loop event cap.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled ones not
    /// yet popped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Time of the earliest pending (non-cancelled) event, if any.
    ///
    /// Cancelled entries found at the head of the queue are popped and
    /// discarded, exactly as [`Engine::run_until`] would have skipped
    /// them, so peeking never changes which events eventually execute.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        loop {
            let (time_ns, seq) = self.queue.peek()?;
            if self.cancelled.contains(&seq) {
                let _ = self.queue.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(SimTime::from_nanos(time_ns));
        }
    }

    /// Advance the clock to `t` from inside an executing handler without
    /// popping an event.
    ///
    /// Batched handlers (the timer wheel) use this to process several
    /// deadlines inside one engine event while keeping every deadline's
    /// exact nanosecond on the clock. `t` must not precede the current
    /// clock and must not pass the next pending event — either would
    /// reorder execution relative to the unbatched schedule.
    pub fn advance_now_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "cannot rewind the clock: {} < {}",
            t,
            self.now
        );
        let bound = self.peek_next_time();
        let in_bounds = bound.map_or(true, |b| t <= b);
        debug_assert!(in_bounds, "manual advance past the next pending event");
        crate::audit::check("engine.time_monotonic", t.as_nanos(), in_bounds, || {
            format!(
                "manual advance to {} ns passes the next pending event at {:?} ns",
                t.as_nanos(),
                bound.map(SimTime::as_nanos)
            )
        });
        self.now = t;
    }

    /// Schedule `action` at absolute time `time`.
    ///
    /// Panics if `time` is in the past — the engine never rewinds.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        action: impl FnOnce(&mut Engine<W>, &mut W) + Send + 'static,
    ) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time.as_nanos(), seq, Box::new(action));
        EventId(seq)
    }

    /// Schedule `action` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut Engine<W>, &mut W) + Send + 'static,
    ) -> EventId {
        let t = self.now + delay;
        self.schedule_at(t, action)
    }

    /// Cancel a pending event. Cancelling an already-executed or unknown
    /// event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    fn pop_next(&mut self) -> Option<Entry<W>> {
        while let Some((time_ns, seq, action)) = self.queue.pop() {
            if self.cancelled.remove(&seq) {
                continue; // skip cancelled
            }
            return Some(Entry {
                time: SimTime::from_nanos(time_ns),
                seq,
                action,
            });
        }
        None
    }

    /// Run until the queue drains. Returns the number of events executed
    /// by this call.
    pub fn run(&mut self, world: &mut W) -> u64 {
        self.run_until(world, SimTime::MAX)
    }

    /// Execute all events with `time < bound` (strictly), leaving the
    /// clock at the last executed event instead of advancing it to
    /// `bound`. Returns the number of events executed by this call.
    ///
    /// This is the sharded runner's local-drain primitive (see
    /// [`crate::shard`]): a shard may only execute up to its
    /// conservative horizon, and the clock must stay behind the horizon
    /// so a cross-shard message at `t < bound` can still be delivered at
    /// its exact nanosecond via [`Engine::advance_now_to`].
    pub fn run_before(&mut self, world: &mut W, bound: SimTime) -> u64 {
        let start_executed = self.executed;
        while self.peek_next_time().is_some_and(|t| t < bound) {
            let Some(entry) = self.pop_next() else { break };
            crate::audit::check(
                "engine.time_monotonic",
                entry.time.as_nanos(),
                entry.time >= self.now,
                || {
                    format!(
                        "event at {} ns scheduled before current clock {} ns",
                        entry.time.as_nanos(),
                        self.now.as_nanos()
                    )
                },
            );
            self.now = entry.time;
            self.executed += 1;
            assert!(
                self.executed <= self.event_limit,
                "event limit exceeded ({}): probable scheduling feedback loop",
                self.event_limit
            );
            (entry.action)(self, world);
        }
        self.executed - start_executed
    }

    /// Execute all events with `time <= deadline`, then advance the clock
    /// to `deadline` (unless the queue drained earlier with the clock past
    /// it, which cannot happen since time never exceeds event times).
    /// Returns the number of events executed by this call.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start_executed = self.executed;
        loop {
            let Some(entry) = self.pop_next() else { break };
            if entry.time > deadline {
                // Put it back under its original sequence number; it
                // belongs to a later epoch.
                self.queue
                    .push(entry.time.as_nanos(), entry.seq, entry.action);
                break;
            }
            debug_assert!(entry.time >= self.now, "time went backwards");
            crate::audit::check(
                "engine.time_monotonic",
                entry.time.as_nanos(),
                entry.time >= self.now,
                || {
                    format!(
                        "event at {} ns scheduled before current clock {} ns",
                        entry.time.as_nanos(),
                        self.now.as_nanos()
                    )
                },
            );
            self.now = entry.time;
            self.executed += 1;
            assert!(
                self.executed <= self.event_limit,
                "event limit exceeded ({}): probable scheduling feedback loop",
                self.event_limit
            );
            (entry.action)(self, world);
        }
        if deadline != SimTime::MAX && deadline > self.now {
            self.now = deadline;
        }
        self.executed - start_executed
    }

    /// Schedule `tick` to run every `interval` starting at `start`. The
    /// callback returns `true` to keep ticking or `false` to stop.
    pub fn schedule_periodic(
        &mut self,
        start: SimTime,
        interval: SimDuration,
        tick: impl FnMut(&mut Engine<W>, &mut W) -> bool + Send + 'static,
    ) -> EventId {
        assert!(
            interval > SimDuration::ZERO,
            "periodic interval must be > 0"
        );
        self.schedule_at(start, move |engine, world| {
            periodic_step(engine, world, interval, tick);
        })
    }
}

fn periodic_step<W, F>(engine: &mut Engine<W>, world: &mut W, interval: SimDuration, mut tick: F)
where
    F: FnMut(&mut Engine<W>, &mut W) -> bool + Send + 'static,
{
    if tick(engine, world) {
        engine.schedule_in(interval, move |e, w| periodic_step(e, w, interval, tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn executes_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(3), |e, w| w.log.push((e.now().as_nanos(), "c")));
        eng.schedule_at(at(1), |e, w| w.log.push((e.now().as_nanos(), "a")));
        eng.schedule_at(at(2), |e, w| w.log.push((e.now().as_nanos(), "b")));
        eng.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            eng.schedule_at(at(5), move |_, w| w.log.push((0, name)));
        }
        eng.run(&mut w);
        let names: Vec<_> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(1), |e, _| {
            e.schedule_in(SimDuration::from_secs(1), |_, w: &mut World| {
                w.log.push((0, "nested"));
            });
        });
        eng.run(&mut w);
        assert_eq!(w.log.len(), 1);
        assert_eq!(eng.now(), at(2));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.schedule_at(at(1), |_, w| w.log.push((0, "cancelled")));
        eng.schedule_at(at(2), |_, w| w.log.push((0, "kept")));
        eng.cancel(id);
        eng.run(&mut w);
        assert_eq!(w.log, vec![(0, "kept")]);
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut eng: Engine<World> = Engine::new();
        eng.cancel(EventId(999));
        let mut w = World::default();
        assert_eq!(eng.run(&mut w), 0);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(1), |_, w| w.log.push((0, "early")));
        eng.schedule_at(at(10), |_, w| w.log.push((0, "late")));
        let n = eng.run_until(&mut w, at(5));
        assert_eq!(n, 1);
        assert_eq!(eng.now(), at(5));
        assert_eq!(w.log, vec![(0, "early")]);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 2);
        assert_eq!(eng.now(), at(10));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(5), |e, _| {
            e.schedule_at(at(1), |_, _| {});
        });
        eng.run(&mut w);
    }

    #[test]
    fn periodic_runs_until_told_to_stop() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let mut count = 0;
        eng.schedule_periodic(at(0), SimDuration::from_secs(2), move |e, w| {
            count += 1;
            w.log.push((e.now().as_nanos(), "tick"));
            count < 4
        });
        eng.run(&mut w);
        assert_eq!(w.log.len(), 4);
        let times: Vec<u64> = w.log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![0, 2_000_000_000, 4_000_000_000, 6_000_000_000]);
    }

    #[test]
    #[should_panic(expected = "event limit exceeded")]
    fn event_limit_trips_on_feedback_loop() {
        let mut eng: Engine<World> = Engine::new();
        eng.set_event_limit(100);
        let mut w = World::default();
        eng.schedule_periodic(at(0), SimDuration::from_nanos(1), |_, _| true);
        eng.run(&mut w);
    }

    #[test]
    fn peek_next_time_skips_cancelled_heads() {
        let mut eng: Engine<World> = Engine::new();
        let a = eng.schedule_at(at(1), |_, _| {});
        let b = eng.schedule_at(at(2), |_, _| {});
        eng.schedule_at(at(3), |_, _| {});
        eng.cancel(a);
        eng.cancel(b);
        assert_eq!(eng.peek_next_time(), Some(at(3)));
        // The cancelled heads were discarded for good.
        assert_eq!(eng.pending(), 1);
        let mut w = World::default();
        assert_eq!(eng.run(&mut w), 1);
    }

    #[test]
    fn peek_next_time_empty_queue_is_none() {
        let mut eng: Engine<World> = Engine::new();
        assert_eq!(eng.peek_next_time(), None);
    }

    #[test]
    fn advance_now_to_moves_clock_inside_handler() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(1), |e, w: &mut World| {
            e.advance_now_to(at(4));
            w.log.push((e.now().as_nanos(), "batched"));
        });
        eng.schedule_at(at(5), |e, w: &mut World| {
            w.log.push((e.now().as_nanos(), "next"));
        });
        eng.run(&mut w);
        let times: Vec<u64> = w.log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![4_000_000_000, 5_000_000_000]);
    }

    #[test]
    #[should_panic(expected = "cannot rewind the clock")]
    fn advance_now_to_rejects_rewind() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(3), |e, _| e.advance_now_to(at(1)));
        eng.run(&mut w);
    }

    #[test]
    fn events_executed_counts() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for i in 0..10 {
            eng.schedule_at(at(i), |_, _| {});
        }
        assert_eq!(eng.pending(), 10);
        assert_eq!(eng.run(&mut w), 10);
        assert_eq!(eng.events_executed(), 10);
        assert_eq!(eng.pending(), 0);
    }
}
