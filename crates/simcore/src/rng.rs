//! Deterministic random-number generation.
//!
//! Every stochastic component of the testbed draws from its own named
//! stream derived from the experiment's master seed. Named streams mean
//! that adding a new random consumer does not perturb the draws seen by
//! existing components — a property we rely on when comparing the
//! virtualized and non-virtualized deployments under the same seed.
//!
//! The generator is xoshiro256** seeded through SplitMix64, implemented
//! locally so the simulation core does not depend on the exact stream
//! layout of any external crate version.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step, used for seeding and for hashing stream names.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string; stable across platforms and releases.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A xoshiro256** generator.
///
/// Implements [`rand::RngCore`] so it composes with `rand`'s distribution
/// adaptors where convenient, while all simulation-critical sampling goes
/// through [`crate::dist`].
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** must not be seeded with all zeros; splitmix64 of any
        // seed cannot produce four zero outputs, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Derive an independent named stream from this generator's seed space.
    ///
    /// The same `(master seed, name)` pair always yields the same stream,
    /// regardless of how many other streams were derived or in what order.
    pub fn derive(&self, name: &str) -> SimRng {
        let mixed = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ fnv1a(name.as_bytes());
        SimRng::new(mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `(0, 1]`; never returns exactly zero, which makes it
    /// safe as input to `ln()` in inverse-CDF sampling.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        ((self.next_u64_raw() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64_raw();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected a biased sample; draw again.
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element of `items`; `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64_raw().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stable_and_independent_of_consumption() {
        let root = SimRng::new(7);
        let d1 = root.derive("disk");
        let mut consumed = root.clone();
        for _ in 0..100 {
            consumed.next_u64_raw();
        }
        // Deriving is a pure function of the *initial* state we derive from.
        let d2 = root.derive("disk");
        let mut x = d1;
        let mut y = d2;
        for _ in 0..100 {
            assert_eq!(x.next_u64_raw(), y.next_u64_raw());
        }
    }

    #[test]
    fn derived_streams_differ_by_name() {
        let root = SimRng::new(7);
        let mut a = root.derive("alpha");
        let mut b = root.derive("beta");
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow generous 10% slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(9);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn pick_empty_is_none() {
        let mut r = SimRng::new(1);
        let empty: &[u32] = &[];
        assert!(r.pick(empty).is_none());
        assert_eq!(r.pick(&[42]).copied(), Some(42));
    }

    #[test]
    fn fill_bytes_partial_chunk() {
        let mut r = SimRng::new(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Not all zero, overwhelmingly likely.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
