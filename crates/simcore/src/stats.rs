//! Streaming statistics accumulators used by device models and monitors.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance, plus min/max.
///
/// Numerically stable for long streams, O(1) per observation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (unbiased) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std-dev / mean); 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One-pass summary moments of a finished slice: count, mean, M2 (for
/// variance), sum, min, max, and whether every value was finite.
///
/// Computed with Welford's update in a single walk, so callers that need
/// several of these statistics (monitor's `TimeSeries`, the analysis
/// `summarize` pass) touch the data once instead of once per statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford M2).
    pub m2: f64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (+∞ when empty).
    pub min: f64,
    /// Largest observation (-∞ when empty).
    pub max: f64,
    /// Whether every observation was finite.
    pub all_finite: bool,
}

impl Moments {
    /// Compute the moments of `xs` in one pass.
    pub fn of(xs: &[f64]) -> Self {
        let mut count = 0usize;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut all_finite = true;
        for &x in xs {
            count += 1;
            let delta = x - mean;
            mean += delta / count as f64;
            m2 += delta * (x - mean);
            sum += x;
            if x < min {
                min = x;
            }
            if x > max {
                max = x;
            }
            all_finite &= x.is_finite();
        }
        if count == 0 {
            mean = 0.0;
        }
        Moments {
            count,
            mean,
            m2,
            sum,
            min,
            max,
            all_finite,
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Largest observation (`None` when empty), preserving the fold
    /// semantics of `Iterator::fold` over `>` comparisons.
    pub fn max_opt(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Smallest observation (`None` when empty).
    pub fn min_opt(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }
}

/// One-pass paired moments of two equal-length slices: means, M2s and
/// the Welford co-moment `cxy = Σ (x-mx)(y-my)`, plus finiteness.
///
/// The co-moment update (`cxy += dx_pre · dy_post`) never forms the
/// catastrophically cancelling `Σxy − ΣxΣy/n` difference, so Pearson
/// correlation stays accurate on large-mean series where the one-pass
/// sum-of-products form loses every significant digit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comoments {
    /// Number of paired observations.
    pub count: usize,
    /// Mean of the first series (0 when empty).
    pub mean_x: f64,
    /// Mean of the second series (0 when empty).
    pub mean_y: f64,
    /// Sum of squared deviations of the first series.
    pub m2x: f64,
    /// Sum of squared deviations of the second series.
    pub m2y: f64,
    /// Co-moment `Σ (x-mx)(y-my)`.
    pub cxy: f64,
    /// Whether every observation in both series was finite.
    pub all_finite: bool,
}

impl Comoments {
    /// Compute the paired moments of `zip(xs, ys)` in one pass (pairs
    /// past the shorter slice are ignored).
    pub fn of(xs: &[f64], ys: &[f64]) -> Self {
        let mut count = 0usize;
        let mut mean_x = 0.0;
        let mut mean_y = 0.0;
        let mut m2x = 0.0;
        let mut m2y = 0.0;
        let mut cxy = 0.0;
        let mut all_finite = true;
        for (&x, &y) in xs.iter().zip(ys) {
            count += 1;
            let n = count as f64;
            let dx = x - mean_x;
            let dy = y - mean_y;
            mean_x += dx / n;
            mean_y += dy / n;
            // dx is the pre-update delta, (y - mean_y) the post-update
            // one — the standard stable co-moment recurrence.
            cxy += dx * (y - mean_y);
            m2x += dx * (x - mean_x);
            m2y += dy * (y - mean_y);
            all_finite &= x.is_finite() && y.is_finite();
        }
        Comoments {
            count,
            mean_x,
            mean_y,
            m2x,
            m2y,
            cxy,
            all_finite,
        }
    }

    /// Population covariance (0 when fewer than 2 pairs).
    pub fn covariance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.cxy / self.count as f64
        }
    }

    /// Pearson correlation; `None` when fewer than 2 pairs or either
    /// series is (numerically) constant.
    pub fn pearson(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        // `is_normal()` also rejects constant series whose sum of
        // squares is zero or subnormal, without a bare float comparison.
        if !self.m2x.is_normal() || !self.m2y.is_normal() {
            return None;
        }
        Some(self.cxy / (self.m2x.sqrt() * self.m2y.sqrt()))
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` in `(0, 1]` is the weight of the newest observation.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Record an observation and return the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation was recorded.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Monotone counter with delta extraction, the shape of most sysstat
/// sources (`/proc` counters are cumulative; sar reports per-interval
/// deltas).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter {
    total: u64,
    last_read: u64,
}

impl Counter {
    /// Fresh zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add to the counter.
    pub fn add(&mut self, n: u64) {
        self.total = self.total.saturating_add(n);
    }

    /// Cumulative value.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Value accumulated since the previous `take_delta` call.
    pub fn take_delta(&mut self) -> u64 {
        let d = self.total - self.last_read;
        self.last_read = self.total;
        d
    }

    /// Peek at the delta without consuming it.
    pub fn peek_delta(&self) -> u64 {
        self.total - self.last_read
    }
}

/// Fixed-boundary histogram with logarithmically spaced buckets,
/// suitable for latency measurements spanning several decades.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Upper bounds of each bucket (exclusive), ascending; final bucket
    /// is unbounded.
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Buckets spanning `[lo, hi]` with `per_decade` buckets per decade.
    pub fn new(lo: f64, hi: f64, per_decade: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && per_decade > 0);
        let mut bounds = Vec::new();
        let step = 10f64.powf(1.0 / per_decade as f64);
        let mut b = lo;
        while b < hi * (1.0 + 1e-12) {
            bounds.push(b);
            b *= step;
        }
        let counts = vec![0; bounds.len() + 1];
        LogHistogram {
            bounds,
            counts,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b <= x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q` in `[0, 1]`; returns the upper bound of
    /// the bucket containing the quantile. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .or_else(|| self.bounds.last().copied());
            }
        }
        self.bounds.last().copied()
    }
}

/// Fixed-capacity sliding window over an `f64` stream.
///
/// The ring is the one windowing implementation shared by the online
/// analysis kernels (`cloudchar-analysis`) and the fault monitor's
/// per-interval bookkeeping: pushes are O(1), the oldest sample falls
/// out once the ring is full, and no allocation happens after
/// construction.
#[derive(Debug, Clone)]
pub struct WindowRing {
    buf: Vec<f64>,
    /// Requested capacity (`Vec::capacity` may over-allocate).
    cap: usize,
    /// Physical index of the oldest sample (0 until the ring first
    /// fills, so logical index `i` is always `(head + i) % cap`).
    head: usize,
}

impl WindowRing {
    /// Empty ring holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be > 0");
        WindowRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
        }
    }

    /// Maximum number of samples the window holds.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window is at capacity (every push now evicts).
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Append `x`; once the window is full, returns the evicted oldest
    /// sample.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        if self.buf.len() < self.cap {
            self.buf.push(x);
            None
        } else {
            let evicted = std::mem::replace(&mut self.buf[self.head], x);
            self.head = (self.head + 1) % self.cap;
            Some(evicted)
        }
    }

    /// Sample `i` in window order (0 = oldest, `len() - 1` = newest).
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.buf.len(), "window index out of range");
        self.buf[(self.head + i) % self.cap]
    }

    /// Iterate the window oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.buf.len()).map(move |i| self.get(i))
    }

    /// Drop every sample, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

/// Per-interval success/failure/retry tally with idle-interval
/// semantics: `close` reports availability 1.0 (and error rate 0.0)
/// when nothing was attempted, otherwise `ok / attempted`.
///
/// This is the interval bookkeeping the fault monitor and the fleet's
/// availability sampler both need; keeping it here means one definition
/// of "idle interval" across the workspace.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct IntervalTally {
    ok: u64,
    fail: u64,
    retries: u64,
}

impl IntervalTally {
    /// Fresh zeroed tally.
    pub fn new() -> Self {
        IntervalTally::default()
    }

    /// Record one successful attempt.
    pub fn record_ok(&mut self) {
        self.ok += 1;
    }

    /// Record one failed attempt.
    pub fn record_fail(&mut self) {
        self.fail += 1;
    }

    /// Record one retry (not an attempt; orthogonal to ok/fail).
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Attempts recorded this interval.
    pub fn attempted(&self) -> u64 {
        self.ok + self.fail
    }

    /// Close the interval: `(availability, error_rate, retries)`,
    /// resetting the tally for the next interval. An idle interval
    /// (nothing attempted) closes as fully available.
    pub fn close(&mut self) -> (f64, f64, u64) {
        let attempted = self.ok + self.fail;
        let (avail, err) = if attempted == 0 {
            (1.0, 0.0)
        } else {
            let a = self.ok as f64 / attempted as f64;
            (a, 1.0 - a)
        };
        let retries = self.retries;
        *self = IntervalTally::default();
        (avail, err, retries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_cv() {
        let mut w = Welford::new();
        for x in [1.0, 3.0] {
            w.push(x);
        }
        assert!((w.cv() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn comoments_match_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let ys = [1.0, 3.0, 2.0, 5.0, 4.0, 6.0, 8.0, 7.0];
        let c = Comoments::of(&xs, &ys);
        assert_eq!(c.count, 8);
        let mx = xs.iter().sum::<f64>() / 8.0;
        let my = ys.iter().sum::<f64>() / 8.0;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        assert!((c.mean_x - mx).abs() < 1e-12);
        assert!((c.mean_y - my).abs() < 1e-12);
        assert!((c.cxy - cov).abs() < 1e-12);
        assert!(c.all_finite);
        let r = c.pearson().unwrap();
        assert!((-1.0..=1.0).contains(&r) && r > 0.5, "r = {r}");
    }

    #[test]
    fn comoments_large_mean_stability() {
        // Pearson on a large-mean pair (mean/σ ≈ 1e9): the textbook
        // Σxy − ΣxΣy/n form loses every significant digit here, while
        // the co-moment recurrence stays within ~n·ε·mean/σ of the
        // exact answer.
        let base = 1e9;
        let xs: Vec<f64> = (0..64).map(|i| base + (i as f64 * 0.7).sin()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (x - base) + base).collect();
        let r = Comoments::of(&xs, &ys).pearson().unwrap();
        assert!((r - 1.0).abs() < 1e-6, "r = {r}");

        // The cancellation-prone form, for contrast: its covariance
        // error is on the order of ε·mean² ≈ 10², versus a true
        // covariance of n·σ² ≈ 10² — pure noise.
        let n = xs.len() as f64;
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let syy: f64 = ys.iter().map(|y| y * y).sum();
        let naive = (sxy - sx * sy / n) / ((sxx - sx * sx / n).sqrt() * (syy - sy * sy / n).sqrt());
        assert!(
            !naive.is_finite() || (naive - 1.0).abs() > 1e-3,
            "textbook form unexpectedly accurate: {naive}"
        );
    }

    #[test]
    fn comoments_degenerate() {
        assert!(Comoments::of(&[], &[]).pearson().is_none());
        assert!(Comoments::of(&[1.0], &[2.0]).pearson().is_none());
        assert!(Comoments::of(&[1.0, 2.0], &[5.0, 5.0]).pearson().is_none());
        let c = Comoments::of(&[1.0, f64::NAN], &[2.0, 3.0]);
        assert!(!c.all_finite);
        // Shorter slice wins the zip.
        assert_eq!(Comoments::of(&[1.0, 2.0, 3.0], &[1.0, 2.0]).count, 2);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.push(10.0);
        assert_eq!(e.value(), Some(10.0));
        for _ in 0..64 {
            e.push(0.0);
        }
        assert!(e.value().unwrap() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn counter_deltas() {
        let mut c = Counter::new();
        c.add(10);
        c.add(5);
        assert_eq!(c.total(), 15);
        assert_eq!(c.peek_delta(), 15);
        assert_eq!(c.take_delta(), 15);
        assert_eq!(c.take_delta(), 0);
        c.add(7);
        assert_eq!(c.take_delta(), 7);
        assert_eq!(c.total(), 22);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LogHistogram::new(1e-6, 10.0, 10);
        for i in 1..=100 {
            h.push(i as f64 * 0.001); // 1ms .. 100ms
        }
        assert_eq!(h.total(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 0.03 && p50 < 0.08, "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 0.08, "p99 {p99}");
        assert!(h.quantile(0.0).is_some());
    }

    #[test]
    fn histogram_empty() {
        let h = LogHistogram::new(0.001, 1.0, 5);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = LogHistogram::new(1.0, 10.0, 2);
        h.push(1e9); // way past hi — lands in the unbounded final bucket
        assert_eq!(h.total(), 1);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn window_ring_fills_then_evicts_in_order() {
        let mut r = WindowRing::new(3);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.push(1.0), None);
        assert_eq!(r.push(2.0), None);
        assert!(!r.is_full());
        assert_eq!(r.push(3.0), None);
        assert!(r.is_full());
        assert_eq!(r.push(4.0), Some(1.0));
        assert_eq!(r.push(5.0), Some(2.0));
        let window: Vec<f64> = r.iter().collect();
        assert_eq!(window, vec![3.0, 4.0, 5.0]);
        assert_eq!(r.get(0), 3.0);
        assert_eq!(r.get(2), 5.0);
        // Wrap all the way around a second time.
        for i in 6..=9 {
            r.push(i as f64);
        }
        let window: Vec<f64> = r.iter().collect();
        assert_eq!(window, vec![7.0, 8.0, 9.0]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.push(10.0), None);
        assert_eq!(r.get(0), 10.0);
    }

    #[test]
    fn window_ring_capacity_one() {
        let mut r = WindowRing::new(1);
        assert_eq!(r.push(1.0), None);
        assert_eq!(r.push(2.0), Some(1.0));
        assert_eq!(r.push(3.0), Some(2.0));
        assert_eq!(r.get(0), 3.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "window capacity must be > 0")]
    fn window_ring_rejects_zero_capacity() {
        let _ = WindowRing::new(0);
    }

    #[test]
    fn interval_tally_idle_and_active() {
        let mut t = IntervalTally::new();
        // Idle interval: fully available by convention.
        assert_eq!(t.close(), (1.0, 0.0, 0));
        for _ in 0..3 {
            t.record_ok();
        }
        t.record_fail();
        t.record_retry();
        assert_eq!(t.attempted(), 4);
        let (avail, err, retries) = t.close();
        assert!((avail - 0.75).abs() < 1e-12);
        assert!((err - 0.25).abs() < 1e-12);
        assert_eq!(retries, 1);
        // The close reset the tally.
        assert_eq!(t.attempted(), 0);
        assert_eq!(t.close(), (1.0, 0.0, 0));
    }
}
