//! Property-based tests for the hardware substrate.

use cloudchar_hw::{
    Disk, DiskSpec, IoKind, IoRequest, MemoryPool, MemorySpec, Nic, NicSpec, WorkQueue, WorkToken,
};
use cloudchar_simcore::SimTime;
use proptest::prelude::*;

proptest! {
    /// Disk completions are monotone in submission order (FIFO queue)
    /// and never earlier than submission.
    #[test]
    fn disk_fifo_monotone(
        reqs in proptest::collection::vec((any::<bool>(), 1u64..10_000_000, any::<bool>()), 1..100),
        now_s in 0u64..1_000,
    ) {
        let mut disk = Disk::new(DiskSpec::sata_7200rpm());
        let now = SimTime::from_secs(now_s);
        let mut last = SimTime::ZERO;
        for &(read, bytes, sequential) in &reqs {
            let done = disk.submit(now, IoRequest {
                kind: if read { IoKind::Read } else { IoKind::Write },
                bytes,
                sequential,
            });
            prop_assert!(done > now);
            prop_assert!(done >= last, "completion regressed");
            last = done;
        }
        let (r, w) = disk.totals();
        let expect: u64 = reqs.iter().map(|&(_, b, _)| b).sum();
        prop_assert_eq!(r + w, expect);
    }

    /// NIC delivery is monotone per sender and accounts all bytes.
    #[test]
    fn nic_serialization_monotone(
        sizes in proptest::collection::vec(1u64..5_000_000, 1..100),
    ) {
        let mut nic = Nic::new(NicSpec::gigabit());
        let now = SimTime::from_secs(1);
        let mut last = SimTime::ZERO;
        for &bytes in &sizes {
            let done = nic.transmit(now, bytes);
            prop_assert!(done > now);
            prop_assert!(done >= last);
            last = done;
        }
        let (_, tx) = nic.totals();
        prop_assert_eq!(tx, sizes.iter().sum::<u64>());
    }

    /// Memory pool: used never exceeds total, free + used == total, and
    /// anonymous memory always survives cache pressure.
    #[test]
    fn memory_pool_invariants(
        ops in proptest::collection::vec((0u8..3, 0u64..4 << 30), 1..200),
    ) {
        let spec = MemorySpec { total: 2 << 30 };
        let mut pool = MemoryPool::new(spec);
        let mut anon: u64 = 0;
        for &(kind, bytes) in &ops {
            match kind {
                0 => {
                    let b = bytes.min(spec.total);
                    pool.set_component("app", b);
                    anon = b;
                }
                1 => pool.grow_page_cache(bytes),
                _ => pool.shrink_page_cache(bytes),
            }
            prop_assert!(pool.used() <= spec.total, "used {} > total", pool.used());
            prop_assert_eq!(pool.used() + pool.free(), spec.total.max(pool.used()));
            prop_assert_eq!(pool.anonymous(), anon, "anonymous memory evicted");
            prop_assert!(pool.peak_used() >= pool.used());
            prop_assert!((0.0..=1.0).contains(&pool.utilization()));
        }
    }

    /// Work queue conservation: cycles executed over any drain schedule
    /// equal cycles submitted (once drained to empty), tokens FIFO.
    #[test]
    fn work_queue_conservation(
        jobs in proptest::collection::vec(0.0f64..1e7, 1..50),
        drains in proptest::collection::vec(1.0f64..5e6, 1..200),
    ) {
        let mut q = WorkQueue::new();
        let total: f64 = jobs.iter().sum();
        for (i, &cycles) in jobs.iter().enumerate() {
            q.push(WorkToken(i as u64), cycles);
        }
        let mut done = Vec::new();
        let mut executed = 0.0;
        for &budget in &drains {
            executed += q.drain(budget, &mut done);
            if q.is_empty() {
                break;
            }
        }
        // Drain the rest.
        loop {
            let got = q.drain(1e12, &mut done);
            executed += got;
            if q.is_empty() { break; }
        }
        prop_assert!(q.is_empty());
        prop_assert!((executed - total).abs() < 1.0, "executed {executed} vs {total}");
        // FIFO completion order.
        let order: Vec<u64> = done.iter().map(|t| t.0).collect();
        let expect: Vec<u64> = (0..jobs.len() as u64).collect();
        prop_assert_eq!(order, expect);
        prop_assert!(q.backlog_cycles().abs() < 1e-6);
    }
}
