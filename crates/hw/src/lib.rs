//! # cloudchar-hw
//!
//! Hardware substrate models for the `cloudchar` testbed: CPU cycle
//! queues, memory pools, disks, NICs, and whole-server assemblies
//! matching the paper's HP ProLiant cloud servers (8× Xeon 2.8 GHz,
//! 32 GB RAM, 2 TB disk, gigabit Ethernet).
//!
//! Devices are *passive*: they compute service/completion times and keep
//! cumulative activity counters, while the simulation layers above
//! (`cloudchar-xen`, `cloudchar-rubis`, `cloudchar-core`) schedule the
//! corresponding engine events. This keeps the hardware models reusable
//! under both the virtualized and the non-virtualized deployment.

#![warn(missing_docs)]

pub mod cpu;
pub mod disk;
pub mod memory;
pub mod nic;
pub mod server;

pub use cpu::{CpuSpec, WorkQueue, WorkToken};
pub use disk::{Disk, DiskSpec, IoKind, IoRequest};
pub use memory::{Bytes, MemoryPool, MemorySpec, GIB, MIB};
pub use nic::{Nic, NicSpec};
pub use server::{KernelActivity, PhysicalServer, ServerSpec};
