//! Physical server assembly.
//!
//! A [`PhysicalServer`] bundles the devices of one host — CPU package,
//! memory pool, disk, NIC — plus the kernel activity counters (context
//! switches, interrupts, forks) that sysstat-style monitors sample.

use crate::cpu::CpuSpec;
use crate::disk::{Disk, DiskSpec};
use crate::memory::{MemoryPool, MemorySpec};
use crate::nic::{Nic, NicSpec};
use cloudchar_simcore::stats::Counter;
use serde::{Deserialize, Serialize};

/// Static description of a server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Processor package.
    pub cpu: CpuSpec,
    /// Installed memory.
    pub memory: MemorySpec,
    /// Disk subsystem.
    pub disk: DiskSpec,
    /// Network interface.
    pub nic: NicSpec,
}

impl ServerSpec {
    /// The paper's cloud server: HP ProLiant, 8× Xeon 2.8 GHz, 32 GB RAM,
    /// 2 TB SATA disk, gigabit Ethernet.
    pub fn hp_proliant() -> Self {
        ServerSpec {
            cpu: CpuSpec::xeon_2_8ghz_8core(),
            memory: MemorySpec::physical_32gb(),
            disk: DiskSpec::sata_7200rpm(),
            nic: NicSpec::gigabit(),
        }
    }
}

/// Kernel-level activity counters of one OS instance (host or guest).
///
/// These feed the "process creation, task switching activity, interrupts"
/// families of the sysstat catalog.
#[derive(Debug, Default)]
pub struct KernelActivity {
    /// Context switches.
    pub context_switches: Counter,
    /// Hardware/virtual interrupts handled.
    pub interrupts: Counter,
    /// Processes/threads created.
    pub forks: Counter,
    /// System calls serviced (coarse).
    pub syscalls: Counter,
    /// Pages faulted in (minor + major).
    pub page_faults: Counter,
}

impl KernelActivity {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        KernelActivity::default()
    }
}

/// One physical host: devices plus kernel counters.
#[derive(Debug)]
pub struct PhysicalServer {
    spec: ServerSpec,
    /// Memory pool (host-wide).
    pub memory: MemoryPool,
    /// The host disk.
    pub disk: Disk,
    /// The host NIC.
    pub nic: Nic,
    /// Host kernel activity.
    pub kernel: KernelActivity,
    /// Cumulative CPU cycles executed on this host (all consumers).
    pub cycles: Counter,
}

impl PhysicalServer {
    /// Build a server from its spec.
    pub fn new(spec: ServerSpec) -> Self {
        PhysicalServer {
            spec,
            memory: MemoryPool::new(spec.memory),
            disk: Disk::new(spec.disk),
            nic: Nic::new(spec.nic),
            kernel: KernelActivity::new(),
            cycles: Counter::new(),
        }
    }

    /// The server's static spec.
    pub fn spec(&self) -> ServerSpec {
        self.spec
    }

    /// Cycles the package can execute in `seconds`.
    pub fn cpu_capacity(&self, seconds: f64) -> f64 {
        self.spec.cpu.capacity_cycles(seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{IoKind, IoRequest};
    use crate::memory::GIB;
    use cloudchar_simcore::SimTime;

    #[test]
    fn hp_proliant_matches_paper() {
        let s = ServerSpec::hp_proliant();
        assert_eq!(s.cpu.cores, 8);
        assert_eq!(s.cpu.hz, 2_800_000_000);
        assert_eq!(s.memory.total, 32 * GIB);
        assert_eq!(s.nic.bits_per_sec, 1_000_000_000);
    }

    #[test]
    fn server_devices_are_usable() {
        let mut srv = PhysicalServer::new(ServerSpec::hp_proliant());
        srv.memory.set_component("os", GIB);
        let done = srv.disk.submit(
            SimTime::ZERO,
            IoRequest {
                kind: IoKind::Read,
                bytes: 4096,
                sequential: false,
            },
        );
        assert!(done > SimTime::ZERO);
        srv.nic.transmit(SimTime::ZERO, 1000);
        srv.kernel.context_switches.add(5);
        srv.cycles.add(1_000_000);
        assert_eq!(srv.memory.used(), GIB);
        assert_eq!(srv.disk.totals().0, 4096);
        assert_eq!(srv.nic.totals().1, 1000);
        assert_eq!(srv.kernel.context_switches.total(), 5);
        assert_eq!(srv.cpu_capacity(2.0), 2.0 * 8.0 * 2.8e9);
    }
}
