//! Memory modelling.
//!
//! The paper plots *used memory in MB* per host (VM or physical). Used
//! memory in a Linux guest decomposes into the kernel/base footprint,
//! per-process resident sets (Apache workers, PHP, mysqld), anonymous
//! working memory that scales with in-flight work, and the page cache.
//!
//! [`MemoryPool`] tracks those components explicitly so higher layers can
//! drive them from application state (worker counts, backlog, DB buffer
//! pool) and the monitor can sample a single "used" figure, reproducing
//! the RAM dynamics of Figures 2 and 6 — including the browse-mix
//! allocation jumps, which emerge from backlog-driven component growth.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bytes, as a convenience alias for readability.
pub type Bytes = u64;

/// One mebibyte.
pub const MIB: Bytes = 1024 * 1024;
/// One gibibyte.
pub const GIB: Bytes = 1024 * MIB;

/// Static description of a host's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Total installed (or VM-allocated) RAM in bytes.
    pub total: Bytes,
}

impl MemorySpec {
    /// The paper's physical servers: 32 GB.
    pub fn physical_32gb() -> Self {
        MemorySpec { total: 32 * GIB }
    }

    /// The paper's VMs: 2 GB.
    pub fn vm_2gb() -> Self {
        MemorySpec { total: 2 * GIB }
    }
}

/// Tracked memory of one host, decomposed into named components plus an
/// elastic page cache.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    spec: MemorySpec,
    /// Named anonymous/resident components (base OS, per-worker, sessions,
    /// DB buffer pool, …). Values are absolute bytes.
    components: BTreeMap<&'static str, Bytes>,
    /// Page cache bytes; grows with file I/O, shrinks under pressure.
    page_cache: Bytes,
    /// High-water mark of used bytes.
    peak_used: Bytes,
}

impl MemoryPool {
    /// A pool for the given spec with no components.
    pub fn new(spec: MemorySpec) -> Self {
        MemoryPool {
            spec,
            components: BTreeMap::new(),
            page_cache: 0,
            peak_used: 0,
        }
    }

    /// Host spec.
    pub fn spec(&self) -> MemorySpec {
        self.spec
    }

    /// Set the absolute size of a named component. Setting 0 removes it.
    pub fn set_component(&mut self, name: &'static str, bytes: Bytes) {
        if bytes == 0 {
            self.components.remove(name);
        } else {
            self.components.insert(name, bytes);
        }
        self.reclaim_if_needed();
        self.peak_used = self.peak_used.max(self.used());
    }

    /// Current size of a named component (0 if absent).
    pub fn component(&self, name: &str) -> Bytes {
        self.components.get(name).copied().unwrap_or(0)
    }

    /// Grow the page cache by `bytes` (typically after disk reads/writes),
    /// evicting as needed so used memory never exceeds the spec.
    pub fn grow_page_cache(&mut self, bytes: Bytes) {
        self.page_cache = self.page_cache.saturating_add(bytes);
        self.reclaim_if_needed();
        self.peak_used = self.peak_used.max(self.used());
    }

    /// Drop `bytes` of page cache (e.g. explicit eviction).
    pub fn shrink_page_cache(&mut self, bytes: Bytes) {
        self.page_cache = self.page_cache.saturating_sub(bytes);
    }

    /// Anonymous (component) bytes.
    pub fn anonymous(&self) -> Bytes {
        self.components.values().sum()
    }

    /// Page cache bytes.
    pub fn page_cache(&self) -> Bytes {
        self.page_cache
    }

    /// Used memory as a Linux `free` would report it (anonymous + cache).
    pub fn used(&self) -> Bytes {
        self.anonymous().saturating_add(self.page_cache)
    }

    /// Used memory in MiB, the unit of Figures 2 and 6.
    pub fn used_mib(&self) -> f64 {
        self.used() as f64 / MIB as f64
    }

    /// Free memory.
    pub fn free(&self) -> Bytes {
        self.spec.total.saturating_sub(self.used())
    }

    /// Peak used bytes observed.
    pub fn peak_used(&self) -> Bytes {
        self.peak_used
    }

    /// Fraction of total memory in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let util = self.used() as f64 / self.spec.total as f64;
        cloudchar_simcore::audit::check(
            "hw.memory.utilization_range",
            0,
            (0.0..=1.0).contains(&util),
            || {
                format!(
                    "memory utilization {util} outside [0, 1] ({} of {} bytes)",
                    self.used(),
                    self.spec.total
                )
            },
        );
        util
    }

    /// Resize the pool (memory ballooning): the balloon driver inflates
    /// or deflates the guest's visible memory. Shrinking evicts page
    /// cache as needed; anonymous memory is never ballooned away.
    ///
    /// Returns the new total actually applied (never below anonymous).
    pub fn balloon_to(&mut self, new_total: Bytes) -> Bytes {
        let floor = self.anonymous();
        self.spec.total = new_total.max(floor);
        self.reclaim_if_needed();
        self.spec.total
    }

    /// If anonymous + cache exceed total, evict page cache first (the
    /// kernel's reclaim order for clean cache pages).
    fn reclaim_if_needed(&mut self) {
        let anon = self.anonymous();
        if anon.saturating_add(self.page_cache) > self.spec.total {
            self.page_cache = self.spec.total.saturating_sub(anon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs() {
        assert_eq!(MemorySpec::physical_32gb().total, 32 * GIB);
        assert_eq!(MemorySpec::vm_2gb().total, 2 * GIB);
    }

    #[test]
    fn components_sum_into_used() {
        let mut m = MemoryPool::new(MemorySpec::vm_2gb());
        m.set_component("base", 200 * MIB);
        m.set_component("workers", 150 * MIB);
        assert_eq!(m.anonymous(), 350 * MIB);
        assert_eq!(m.used(), 350 * MIB);
        assert!((m.used_mib() - 350.0).abs() < 1e-9);
        m.set_component("workers", 0);
        assert_eq!(m.used(), 200 * MIB);
    }

    #[test]
    fn page_cache_grows_and_evicts_under_pressure() {
        let mut m = MemoryPool::new(MemoryPool::new(MemorySpec::vm_2gb()).spec());
        m.set_component("base", GIB);
        m.grow_page_cache(3 * GIB); // more than fits
        assert_eq!(m.used(), 2 * GIB); // clamped to total
        assert_eq!(m.page_cache(), GIB);
        assert_eq!(m.free(), 0);
        // Growing anonymous memory evicts cache.
        m.set_component("burst", 512 * MIB);
        assert_eq!(m.page_cache(), 512 * MIB);
        assert_eq!(m.used(), 2 * GIB);
    }

    #[test]
    fn shrink_page_cache_saturates() {
        let mut m = MemoryPool::new(MemorySpec::vm_2gb());
        m.grow_page_cache(10 * MIB);
        m.shrink_page_cache(100 * MIB);
        assert_eq!(m.page_cache(), 0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut m = MemoryPool::new(MemorySpec::vm_2gb());
        m.set_component("a", 500 * MIB);
        m.set_component("a", 100 * MIB);
        assert_eq!(m.peak_used(), 500 * MIB);
        assert_eq!(m.used(), 100 * MIB);
    }

    #[test]
    fn balloon_shrinks_cache_but_not_anonymous() {
        let mut m = MemoryPool::new(MemorySpec::vm_2gb());
        m.set_component("app", GIB);
        m.grow_page_cache(GIB);
        assert_eq!(m.used(), 2 * GIB);
        // Deflate to 1.5 GB: cache shrinks to fit.
        let applied = m.balloon_to(GIB + GIB / 2);
        assert_eq!(applied, GIB + GIB / 2);
        assert_eq!(m.anonymous(), GIB);
        assert_eq!(m.page_cache(), GIB / 2);
        // Ballooning below anonymous clamps at anonymous.
        let applied = m.balloon_to(100 * MIB);
        assert_eq!(applied, GIB);
        assert_eq!(m.page_cache(), 0);
        // Inflate back.
        assert_eq!(m.balloon_to(2 * GIB), 2 * GIB);
        assert_eq!(m.free(), GIB);
    }

    #[test]
    fn utilization_fraction() {
        let mut m = MemoryPool::new(MemorySpec::vm_2gb());
        m.set_component("half", GIB);
        assert!((m.utilization() - 0.5).abs() < 1e-9);
    }
}
