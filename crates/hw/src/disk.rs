//! Disk modelling.
//!
//! A single-spindle disk with a FIFO command queue: each request pays a
//! positioning overhead (seek + rotational latency, reduced for
//! sequential access) plus transfer time at the media bandwidth. The
//! model is deliberately simple — the paper's disk figures are KB
//! read/written per 2-second sample, which depends on *when* and *how
//! much* I/O the workload issues, not on intra-disk micro-behaviour.
//!
//! The device is passive: [`Disk::submit`] computes the completion time
//! and the caller schedules its own engine event.

use crate::memory::Bytes;
use cloudchar_simcore::stats::Counter;
use cloudchar_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Read from media.
    Read,
    /// Write to media.
    Write,
}

/// One disk I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Direction.
    pub kind: IoKind,
    /// Payload size in bytes.
    pub bytes: Bytes,
    /// Whether the access is sequential with respect to the previous one
    /// (skips most of the positioning cost).
    pub sequential: bool,
}

/// Static description of a disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Sustained media bandwidth in bytes/second.
    pub bandwidth: u64,
    /// Average positioning time (seek + rotation) for random access.
    pub positioning: SimDuration,
    /// Positioning cost for sequential access (track-to-track).
    pub sequential_positioning: SimDuration,
}

impl DiskSpec {
    /// A 7.2k-rpm SATA spindle of the paper's era (HP ProLiant, 2 TB):
    /// ~120 MB/s sustained, ~8.5 ms average positioning.
    pub fn sata_7200rpm() -> Self {
        DiskSpec {
            bandwidth: 120_000_000,
            positioning: SimDuration::from_micros(8_500),
            sequential_positioning: SimDuration::from_micros(300),
        }
    }

    /// Pure service time of one request (no queueing).
    pub fn service_time(&self, req: IoRequest) -> SimDuration {
        let pos = if req.sequential {
            self.sequential_positioning
        } else {
            self.positioning
        };
        let transfer = SimDuration::from_secs_f64(req.bytes as f64 / self.bandwidth as f64);
        pos + transfer
    }
}

/// A disk with FIFO queueing and cumulative activity counters.
#[derive(Debug)]
pub struct Disk {
    spec: DiskSpec,
    busy_until: SimTime,
    /// Runtime fault multiplier on service time (1.0 = healthy). Set by
    /// the fault-injection layer for the duration of a disk-slow window.
    fault_factor: f64,
    bytes_read: Counter,
    bytes_written: Counter,
    reads: Counter,
    writes: Counter,
    busy_time_ns: Counter,
}

impl Disk {
    /// A fresh idle disk.
    pub fn new(spec: DiskSpec) -> Self {
        Disk {
            spec,
            busy_until: SimTime::ZERO,
            fault_factor: 1.0,
            bytes_read: Counter::new(),
            bytes_written: Counter::new(),
            reads: Counter::new(),
            writes: Counter::new(),
            busy_time_ns: Counter::new(),
        }
    }

    /// The disk's static spec.
    pub fn spec(&self) -> DiskSpec {
        self.spec
    }

    /// Set the runtime service-time inflation factor (fault injection).
    ///
    /// Panics unless `factor` is finite and ≥ 1.
    pub fn set_fault_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "invalid disk fault factor: {factor}"
        );
        self.fault_factor = factor;
    }

    /// Current service-time inflation factor (1.0 when healthy).
    pub fn fault_factor(&self) -> f64 {
        self.fault_factor
    }

    /// Submit a request at time `now`; returns the absolute completion
    /// time, accounting for queueing behind earlier requests.
    pub fn submit(&mut self, now: SimTime, req: IoRequest) -> SimTime {
        let start = self.busy_until.max(now);
        let service = self.spec.service_time(req).mul_f64(self.fault_factor);
        let done = start + service;
        cloudchar_simcore::audit::check(
            "hw.disk.busy_monotonic",
            now.as_nanos(),
            done >= self.busy_until && done >= now,
            || {
                format!(
                    "completion {} ns before busy horizon {} ns",
                    done.as_nanos(),
                    self.busy_until.as_nanos()
                )
            },
        );
        self.busy_until = done;
        self.busy_time_ns.add(service.as_nanos());
        match req.kind {
            IoKind::Read => {
                self.bytes_read.add(req.bytes);
                self.reads.add(1);
            }
            IoKind::Write => {
                self.bytes_written.add(req.bytes);
                self.writes.add(1);
            }
        }
        done
    }

    /// Absolute time the disk becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queueing delay a request submitted at `now` would experience.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.duration_since(now)
    }

    /// Cumulative bytes read counter.
    pub fn bytes_read(&mut self) -> &mut Counter {
        &mut self.bytes_read
    }

    /// Cumulative bytes written counter.
    pub fn bytes_written(&mut self) -> &mut Counter {
        &mut self.bytes_written
    }

    /// Cumulative read-operation counter.
    pub fn reads(&mut self) -> &mut Counter {
        &mut self.reads
    }

    /// Cumulative write-operation counter.
    pub fn writes(&mut self) -> &mut Counter {
        &mut self.writes
    }

    /// Cumulative busy time in nanoseconds (for %util-style metrics).
    pub fn busy_time(&mut self) -> &mut Counter {
        &mut self.busy_time_ns
    }

    /// Totals without consuming deltas: (bytes read, bytes written).
    pub fn totals(&self) -> (u64, u64) {
        (self.bytes_read.total(), self.bytes_written.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: IoKind, bytes: Bytes, sequential: bool) -> IoRequest {
        IoRequest {
            kind,
            bytes,
            sequential,
        }
    }

    #[test]
    fn service_time_components() {
        let spec = DiskSpec::sata_7200rpm();
        let random = spec.service_time(req(IoKind::Read, 120_000_000, false));
        // 8.5ms positioning + 1s transfer
        assert!((random.as_secs_f64() - 1.0085).abs() < 1e-6);
        let seq = spec.service_time(req(IoKind::Read, 120_000_000, true));
        assert!(seq < random);
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let mut d = Disk::new(DiskSpec::sata_7200rpm());
        let t0 = SimTime::from_secs(1);
        let c1 = d.submit(t0, req(IoKind::Read, 1_200_000, false)); // 10ms transfer + 8.5ms
        let c2 = d.submit(t0, req(IoKind::Write, 1_200_000, false));
        assert!(c2 > c1);
        let gap = (c2 - c1).as_secs_f64();
        assert!((gap - 0.0185).abs() < 1e-6, "gap {gap}");
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new(DiskSpec::sata_7200rpm());
        let now = SimTime::from_secs(100);
        let done = d.submit(now, req(IoKind::Read, 0, true));
        assert_eq!(
            (done - now).as_nanos(),
            DiskSpec::sata_7200rpm().sequential_positioning.as_nanos()
        );
        assert_eq!(d.queue_delay(SimTime::from_secs(200)), SimDuration::ZERO);
    }

    #[test]
    fn counters_track_direction() {
        let mut d = Disk::new(DiskSpec::sata_7200rpm());
        d.submit(SimTime::ZERO, req(IoKind::Read, 4096, false));
        d.submit(SimTime::ZERO, req(IoKind::Write, 8192, false));
        d.submit(SimTime::ZERO, req(IoKind::Write, 100, true));
        assert_eq!(d.totals(), (4096, 8292));
        assert_eq!(d.reads().total(), 1);
        assert_eq!(d.writes().total(), 2);
        assert_eq!(d.bytes_read().take_delta(), 4096);
        assert_eq!(d.bytes_written().take_delta(), 8292);
        assert!(d.busy_time().total() > 0);
    }

    #[test]
    fn fault_factor_inflates_service_time() {
        let mut healthy = Disk::new(DiskSpec::sata_7200rpm());
        let mut slow = Disk::new(DiskSpec::sata_7200rpm());
        slow.set_fault_factor(3.0);
        let r = req(IoKind::Read, 1_200_000, false);
        let t_h = healthy.submit(SimTime::ZERO, r).as_secs_f64();
        let t_s = slow.submit(SimTime::ZERO, r).as_secs_f64();
        assert!((t_s - 3.0 * t_h).abs() < 1e-9, "{t_s} vs 3×{t_h}");
        // Clearing the fault restores the healthy service time.
        slow.set_fault_factor(1.0);
        let before = slow.busy_until();
        let done = slow.submit(before, r);
        assert!(((done - before).as_secs_f64() - t_h).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid disk fault factor")]
    fn fault_factor_rejects_speedup() {
        let mut d = Disk::new(DiskSpec::sata_7200rpm());
        d.set_fault_factor(0.5);
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut d = Disk::new(DiskSpec::sata_7200rpm());
        let t0 = SimTime::ZERO;
        d.submit(t0, req(IoKind::Read, 120_000_000, false)); // ~1s
        let delay = d.queue_delay(t0);
        assert!(delay.as_secs_f64() > 1.0);
    }
}
