//! Network interface and link modelling.
//!
//! A [`Nic`] serializes outgoing frames onto a link at the configured
//! bandwidth with a fixed propagation/processing latency, and counts
//! bytes/packets in both directions — the observables behind Figures 4
//! and 8 (KB received & transmitted per 2-second sample).
//!
//! Like [`crate::disk::Disk`], the device is passive: `transmit` returns
//! the absolute delivery time and the caller schedules the delivery event
//! (typically handing the frame to the peer NIC's `receive`).

use crate::memory::Bytes;
use cloudchar_simcore::stats::Counter;
use cloudchar_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of a NIC / link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Link bandwidth in bits per second.
    pub bits_per_sec: u64,
    /// One-way latency (propagation + stack processing).
    pub latency: SimDuration,
    /// Fixed per-frame overhead bytes (Ethernet + IP + TCP headers).
    pub frame_overhead: Bytes,
}

impl NicSpec {
    /// Gigabit Ethernet as in the paper's testbed; ~100 µs host-to-host
    /// latency on a LAN, 78 bytes of L2–L4 overhead per frame.
    pub fn gigabit() -> Self {
        NicSpec {
            bits_per_sec: 1_000_000_000,
            latency: SimDuration::from_micros(100),
            frame_overhead: 78,
        }
    }

    /// Serialization delay for a payload of `bytes`, splitting it into
    /// 1448-byte MSS segments each carrying the frame overhead.
    pub fn wire_time(&self, bytes: Bytes) -> SimDuration {
        const MSS: u64 = 1448;
        let segments = bytes.div_ceil(MSS).max(1);
        let wire_bytes = bytes + segments * self.frame_overhead;
        SimDuration::from_secs_f64(wire_bytes as f64 * 8.0 / self.bits_per_sec as f64)
    }
}

/// A network interface with transmit serialization and rx/tx accounting.
#[derive(Debug)]
pub struct Nic {
    spec: NicSpec,
    tx_busy_until: SimTime,
    /// Runtime wire-time inflation from fault injection (1.0 = healthy).
    /// Encodes both loss-induced retransmission (`1 / (1 - loss)`) and a
    /// bandwidth clamp (`1 / bandwidth_factor`); keeping it a single
    /// deterministic multiplier avoids per-packet coin flips that would
    /// perturb the RNG streams of fault-free traffic.
    fault_factor: f64,
    tx_bytes: Counter,
    rx_bytes: Counter,
    tx_packets: Counter,
    rx_packets: Counter,
}

impl Nic {
    /// A fresh idle NIC.
    pub fn new(spec: NicSpec) -> Self {
        Nic {
            spec,
            tx_busy_until: SimTime::ZERO,
            fault_factor: 1.0,
            tx_bytes: Counter::new(),
            rx_bytes: Counter::new(),
            tx_packets: Counter::new(),
            rx_packets: Counter::new(),
        }
    }

    /// The NIC's static spec.
    pub fn spec(&self) -> NicSpec {
        self.spec
    }

    /// Apply fault degradation: packet loss `loss` ∈ [0, 1) forces the
    /// expected `1 / (1 - loss)` retransmissions, and the link runs at
    /// `bandwidth_factor` ∈ (0, 1] of nominal speed. `(0.0, 1.0)`
    /// restores the healthy link.
    pub fn set_fault(&mut self, loss: f64, bandwidth_factor: f64) {
        assert!(
            loss.is_finite() && (0.0..1.0).contains(&loss),
            "invalid NIC loss: {loss}"
        );
        assert!(
            bandwidth_factor.is_finite() && bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "invalid NIC bandwidth factor: {bandwidth_factor}"
        );
        self.fault_factor = 1.0 / ((1.0 - loss) * bandwidth_factor);
    }

    /// Current wire-time inflation factor (1.0 when healthy).
    pub fn fault_factor(&self) -> f64 {
        self.fault_factor
    }

    /// Transmit a message of `bytes` at time `now`; returns the absolute
    /// delivery time at the far end (serialization after queueing, plus
    /// one-way latency).
    pub fn transmit(&mut self, now: SimTime, bytes: Bytes) -> SimTime {
        let start = self.tx_busy_until.max(now);
        let wire = self.spec.wire_time(bytes).mul_f64(self.fault_factor);
        let done = start + wire;
        cloudchar_simcore::audit::check(
            "hw.nic.tx_monotonic",
            now.as_nanos(),
            done >= self.tx_busy_until && done >= now,
            || {
                format!(
                    "tx completion {} ns before busy horizon {} ns",
                    done.as_nanos(),
                    self.tx_busy_until.as_nanos()
                )
            },
        );
        self.tx_busy_until = done;
        self.tx_bytes.add(bytes);
        self.tx_packets.add(bytes.div_ceil(1448).max(1));
        self.tx_busy_until + self.spec.latency
    }

    /// Record reception of a message (called by the peer's delivery
    /// event).
    pub fn receive(&mut self, bytes: Bytes) {
        self.rx_bytes.add(bytes);
        self.rx_packets.add(bytes.div_ceil(1448).max(1));
    }

    /// Cumulative transmitted-bytes counter.
    pub fn tx_bytes(&mut self) -> &mut Counter {
        &mut self.tx_bytes
    }

    /// Cumulative received-bytes counter.
    pub fn rx_bytes(&mut self) -> &mut Counter {
        &mut self.rx_bytes
    }

    /// Cumulative transmitted-packets counter.
    pub fn tx_packets(&mut self) -> &mut Counter {
        &mut self.tx_packets
    }

    /// Cumulative received-packets counter.
    pub fn rx_packets(&mut self) -> &mut Counter {
        &mut self.rx_packets
    }

    /// Totals without consuming deltas: (rx bytes, tx bytes).
    pub fn totals(&self) -> (u64, u64) {
        (self.rx_bytes.total(), self.tx_bytes.total())
    }

    /// Absolute time the transmit side becomes idle.
    pub fn tx_busy_until(&self) -> SimTime {
        self.tx_busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_includes_overhead() {
        let spec = NicSpec::gigabit();
        // 1448 bytes => 1 segment => 1526 wire bytes => 12.208 µs at 1 Gb/s
        let t = spec.wire_time(1448);
        assert!((t.as_secs_f64() - 1526.0 * 8.0 / 1e9).abs() < 1e-12);
        // Empty payload still costs one frame.
        assert!(spec.wire_time(0) > SimDuration::ZERO);
    }

    #[test]
    fn transmit_serializes_back_to_back() {
        let mut nic = Nic::new(NicSpec::gigabit());
        let t0 = SimTime::ZERO;
        let d1 = nic.transmit(t0, 1_000_000);
        let d2 = nic.transmit(t0, 1_000_000);
        assert!(d2 > d1);
        // Both include exactly one latency, so the gap is pure wire time.
        let gap = (d2 - d1).as_secs_f64();
        let wire = NicSpec::gigabit().wire_time(1_000_000).as_secs_f64();
        assert!((gap - wire).abs() < 1e-9);
    }

    #[test]
    fn idle_nic_delivers_after_wire_plus_latency() {
        let mut nic = Nic::new(NicSpec::gigabit());
        let now = SimTime::from_secs(5);
        let done = nic.transmit(now, 1448);
        let expect = NicSpec::gigabit().wire_time(1448) + NicSpec::gigabit().latency;
        assert_eq!((done - now).as_nanos(), expect.as_nanos());
    }

    #[test]
    fn fault_inflates_wire_time_and_clears() {
        let mut nic = Nic::new(NicSpec::gigabit());
        let healthy = (nic.transmit(SimTime::ZERO, 1_000_000) - SimTime::ZERO).as_secs_f64();
        let mut degraded = Nic::new(NicSpec::gigabit());
        degraded.set_fault(0.5, 0.5); // 2× retransmit × 2× slower link = 4×
        let t = degraded.transmit(SimTime::ZERO, 1_000_000);
        let latency = NicSpec::gigabit().latency.as_secs_f64();
        let slow = (t - SimTime::ZERO).as_secs_f64();
        assert!(
            (slow - latency - 4.0 * (healthy - latency)).abs() < 1e-9,
            "slow {slow} healthy {healthy}"
        );
        degraded.set_fault(0.0, 1.0);
        assert_eq!(degraded.fault_factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid NIC loss")]
    fn fault_rejects_total_loss() {
        let mut nic = Nic::new(NicSpec::gigabit());
        nic.set_fault(1.0, 1.0);
    }

    #[test]
    fn counters() {
        let mut nic = Nic::new(NicSpec::gigabit());
        nic.transmit(SimTime::ZERO, 3000);
        nic.receive(500);
        assert_eq!(nic.totals(), (500, 3000));
        assert_eq!(nic.tx_packets().total(), 3); // ceil(3000/1448)
        assert_eq!(nic.rx_packets().total(), 1);
        assert_eq!(nic.tx_bytes().take_delta(), 3000);
        assert_eq!(nic.rx_bytes().take_delta(), 500);
    }
}
