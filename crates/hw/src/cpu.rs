//! CPU modelling.
//!
//! The testbed expresses computation as **cycle demands**. Work items
//! (request processing steps) carry a number of cycles; a CPU executes
//! cycles at `cores × hz` per second of wall time it is allocated. The
//! scheduler layers (the Xen credit scheduler for VMs, the host OS
//! scheduler for physical machines) decide how much CPU time each
//! consumer receives per scheduling quantum and drain the consumer's
//! [`WorkQueue`] by the corresponding number of cycles.
//!
//! This fluid, quantum-based model is far cheaper than simulating core
//! occupancy per request, yet produces exactly the observable the paper
//! plots: cycles consumed per 2-second sample.

use cloudchar_simcore::stats::Counter;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static description of a processor package.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Number of physical cores.
    pub cores: u32,
    /// Core clock in Hz.
    pub hz: u64,
}

impl CpuSpec {
    /// The paper's cloud servers: 8 Intel Xeon cores at 2.8 GHz.
    pub fn xeon_2_8ghz_8core() -> Self {
        CpuSpec {
            cores: 8,
            hz: 2_800_000_000,
        }
    }

    /// Total cycles the package can execute in `seconds` of wall time.
    pub fn capacity_cycles(&self, seconds: f64) -> f64 {
        self.cores as f64 * self.hz as f64 * seconds
    }
}

/// Opaque completion token carried by a work item; the owner maps tokens
/// back to requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkToken(pub u64);

/// One unit of CPU work awaiting execution.
#[derive(Debug, Clone)]
struct WorkItem {
    token: WorkToken,
    cycles_remaining: f64,
}

/// FIFO queue of cycle demands belonging to one consumer (a domain, or a
/// process class on a physical host).
///
/// Draining is fluid: a drain of `c` cycles completes zero or more items
/// and may leave the head item partially executed.
#[derive(Debug, Default)]
pub struct WorkQueue {
    items: VecDeque<WorkItem>,
    /// Total cycles currently enqueued (including partial head).
    backlog_cycles: f64,
    /// Cumulative cycles executed from this queue.
    executed: Counter,
    /// Cumulative work items completed.
    completed: Counter,
}

impl WorkQueue {
    /// Fresh empty queue.
    pub fn new() -> Self {
        WorkQueue::default()
    }

    /// Enqueue a demand of `cycles` tagged with `token`.
    ///
    /// Panics if `cycles` is negative or not finite.
    pub fn push(&mut self, token: WorkToken, cycles: f64) {
        assert!(
            cycles.is_finite() && cycles >= 0.0,
            "invalid cycle demand: {cycles}"
        );
        self.backlog_cycles += cycles;
        self.items.push_back(WorkItem {
            token,
            cycles_remaining: cycles,
        });
    }

    /// Execute up to `budget` cycles of queued work, FIFO. Completed
    /// tokens are appended to `completed_out`. Returns the number of
    /// cycles actually executed (≤ budget; less when the queue drains).
    pub fn drain(&mut self, budget: f64, completed_out: &mut Vec<WorkToken>) -> f64 {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "invalid budget: {budget}"
        );
        // Accumulate executed cycles directly rather than via
        // `budget - remaining`: with very large budgets, subtracting a
        // small job from the budget is absorbed by floating point and
        // the difference would misreport zero work.
        let mut remaining = budget;
        let mut executed = 0.0;
        while remaining > 0.0 {
            let Some(head) = self.items.front_mut() else {
                break;
            };
            if head.cycles_remaining <= remaining {
                remaining -= head.cycles_remaining;
                executed += head.cycles_remaining;
                self.backlog_cycles -= head.cycles_remaining;
                completed_out.push(head.token);
                self.completed.add(1);
                self.items.pop_front();
            } else {
                head.cycles_remaining -= remaining;
                self.backlog_cycles -= remaining;
                executed += remaining;
                remaining = 0.0;
                // Floating-point subtraction can strand a sub-cycle
                // residue that schedulers with epsilon guards would
                // never allocate time for; sub-cycle work is complete.
                if head.cycles_remaining < 1e-6 {
                    self.backlog_cycles -= head.cycles_remaining;
                    completed_out.push(head.token);
                    self.completed.add(1);
                    self.items.pop_front();
                }
            }
        }
        self.executed.add(executed.round() as u64);
        cloudchar_simcore::audit::check(
            "hw.cpu.budget_respected",
            0,
            executed <= budget * (1.0 + 1e-9) + 1.0,
            || format!("queue executed {executed} cycles against a budget of {budget}"),
        );
        cloudchar_simcore::audit::check(
            "hw.cpu.backlog_nonnegative",
            0,
            // Tolerate sub-cycle floating-point residue; anything larger
            // means accounting lost track of queued work.
            self.backlog_cycles > -1.0,
            || format!("backlog drifted to {} cycles", self.backlog_cycles),
        );
        // Guard against floating-point drift pushing the backlog negative.
        if self.backlog_cycles < 0.0 {
            self.backlog_cycles = 0.0;
        }
        executed
    }

    /// Drop all queued work (a crash): returns the tokens of every
    /// abandoned item — including a partially executed head — so the
    /// owner can fail the requests they belong to. Cumulative counters
    /// are untouched; only pending demand is lost.
    pub fn clear(&mut self) -> Vec<WorkToken> {
        let dropped = self.items.drain(..).map(|item| item.token).collect();
        self.backlog_cycles = 0.0;
        dropped
    }

    /// Cycles currently waiting (demand not yet executed).
    pub fn backlog_cycles(&self) -> f64 {
        self.backlog_cycles
    }

    /// Number of queued work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no work is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Cumulative executed-cycles counter (sysstat-style monotone source).
    pub fn executed_counter(&mut self) -> &mut Counter {
        &mut self.executed
    }

    /// Cumulative completed-items counter.
    pub fn completed_counter(&mut self) -> &mut Counter {
        &mut self.completed
    }

    /// Total cycles executed so far.
    pub fn executed_total(&self) -> u64 {
        self.executed.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_capacity() {
        let s = CpuSpec::xeon_2_8ghz_8core();
        assert_eq!(s.cores, 8);
        assert_eq!(s.capacity_cycles(1.0), 8.0 * 2.8e9);
        assert_eq!(s.capacity_cycles(0.5), 4.0 * 2.8e9);
    }

    #[test]
    fn drain_completes_fifo() {
        let mut q = WorkQueue::new();
        q.push(WorkToken(1), 100.0);
        q.push(WorkToken(2), 50.0);
        q.push(WorkToken(3), 200.0);
        assert_eq!(q.backlog_cycles(), 350.0);
        let mut done = Vec::new();
        let used = q.drain(160.0, &mut done);
        assert_eq!(used, 160.0);
        assert_eq!(done, vec![WorkToken(1), WorkToken(2)]);
        assert_eq!(q.len(), 1);
        assert!((q.backlog_cycles() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn drain_partial_head_resumes() {
        let mut q = WorkQueue::new();
        q.push(WorkToken(7), 100.0);
        let mut done = Vec::new();
        q.drain(40.0, &mut done);
        assert!(done.is_empty());
        q.drain(60.0, &mut done);
        assert_eq!(done, vec![WorkToken(7)]);
        assert!(q.is_empty());
        assert_eq!(q.backlog_cycles(), 0.0);
    }

    #[test]
    fn drain_underrun_returns_actual() {
        let mut q = WorkQueue::new();
        q.push(WorkToken(1), 30.0);
        let mut done = Vec::new();
        let used = q.drain(100.0, &mut done);
        assert_eq!(used, 30.0);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut q = WorkQueue::new();
        q.push(WorkToken(1), 100.0);
        q.push(WorkToken(2), 100.0);
        let mut done = Vec::new();
        q.drain(150.0, &mut done);
        assert_eq!(q.executed_total(), 150);
        assert_eq!(q.completed_counter().total(), 1);
        assert_eq!(q.executed_counter().take_delta(), 150);
        q.drain(50.0, &mut done);
        assert_eq!(q.executed_counter().take_delta(), 50);
    }

    #[test]
    fn zero_cycle_items_complete_immediately_on_drain() {
        let mut q = WorkQueue::new();
        q.push(WorkToken(1), 0.0);
        let mut done = Vec::new();
        // Zero-budget drain must not complete anything with positive work...
        q.drain(0.0, &mut done);
        // ...but a zero-cycle item needs an actual drain call with budget.
        q.drain(1.0, &mut done);
        assert_eq!(done, vec![WorkToken(1)]);
    }

    #[test]
    #[should_panic(expected = "invalid cycle demand")]
    fn rejects_nan_demand() {
        let mut q = WorkQueue::new();
        q.push(WorkToken(1), f64::NAN);
    }
}
