//! Property-based tests for the RUBiS application model.

use cloudchar_rubis::db::{Database, MySqlConfig, MySqlServer, Query};
use cloudchar_rubis::schema::{DbScale, ItemId, RegionId, UserId};
use cloudchar_rubis::storage::{BufferPool, PageRef, QueryCache, TableId, PAGE_BYTES};
use cloudchar_rubis::transition::{Mix, NextAction, TransitionTable};
use cloudchar_rubis::ClientPopulation;
use cloudchar_rubis::WorkloadMix;
use cloudchar_simcore::SimRng;
use proptest::prelude::*;

fn arbitrary_query(seed: (u8, u32, u32, u16)) -> Query {
    let (kind, a, b, c) = seed;
    match kind % 14 {
        0 => Query::SelectCategories,
        1 => Query::SelectRegions,
        2 => Query::SearchItemsByCategory {
            category: cloudchar_rubis::schema::CategoryId(c % 5),
            page: b % 6,
        },
        3 => Query::SearchItemsByRegion {
            category: cloudchar_rubis::schema::CategoryId(c % 5),
            region: RegionId(c % 4),
            page: b % 4,
        },
        4 => Query::GetItem { item: ItemId(a) },
        5 => Query::GetUserInfo { user: UserId(a) },
        6 => Query::GetBidHistory { item: ItemId(a) },
        7 => Query::GetMaxBid { item: ItemId(a) },
        8 => Query::AuthUser { user: UserId(a) },
        9 => Query::AboutMe { user: UserId(a) },
        10 => Query::RegisterUser {
            region: RegionId(c % 4),
        },
        11 => Query::StoreBid {
            user: UserId(a),
            item: ItemId(b),
            increment: i64::from(c % 500) + 1,
        },
        12 => Query::StoreComment {
            from: UserId(a),
            to: UserId(b),
            item: ItemId(a ^ b),
        },
        _ => Query::StoreBuyNow {
            buyer: UserId(a),
            item: ItemId(b),
        },
    }
}

proptest! {
    /// Buffer pool never exceeds capacity and accounts every access.
    #[test]
    fn buffer_pool_invariants(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..500),
        cap_pages in 1u64..16,
    ) {
        let mut bp = BufferPool::new(cap_pages * PAGE_BYTES);
        for &(page, write) in &accesses {
            bp.access(PageRef { table: TableId::Items, page }, write);
            prop_assert!(bp.resident_pages() <= cap_pages as usize);
        }
        let (h, m, d) = bp.stats();
        prop_assert_eq!(h + m, accesses.len() as u64);
        prop_assert!(d <= m);
        prop_assert!(bp.hit_ratio() >= 0.0 && bp.hit_ratio() <= 1.0);
        prop_assert_eq!(bp.resident_bytes(), bp.resident_pages() as u64 * PAGE_BYTES);
    }

    /// A resident page must hit on an immediate re-access.
    #[test]
    fn buffer_pool_immediate_reaccess_hits(
        pages in proptest::collection::vec(0u64..32, 1..100),
    ) {
        let mut bp = BufferPool::new(8 * PAGE_BYTES);
        for &page in &pages {
            let p = PageRef { table: TableId::Bids, page };
            bp.access(p, false);
            let second = bp.access(p, false);
            prop_assert_eq!(second, cloudchar_rubis::storage::Access::Hit);
        }
    }

    /// Query-cache bytes never exceed capacity; invalidation always
    /// clears affected entries.
    #[test]
    fn query_cache_invariants(
        ops in proptest::collection::vec((0u64..40, 1u64..5_000, any::<bool>()), 1..300),
        cap in 1_000u64..100_000,
    ) {
        let mut qc = QueryCache::new(cap);
        for &(key, bytes, invalidate) in &ops {
            if invalidate {
                qc.invalidate(TableId::Items);
                prop_assert_eq!(qc.lookup(key), None);
            } else {
                qc.insert(key, bytes, &[TableId::Items]);
                if bytes <= cap {
                    prop_assert_eq!(qc.lookup(key), Some(bytes));
                }
            }
            prop_assert!(qc.used_bytes() <= cap);
        }
    }

    /// Database invariants hold under arbitrary query sequences: bid
    /// counters match, quantities never underflow, cardinalities only
    /// grow.
    #[test]
    fn database_invariants_under_query_storm(
        queries in proptest::collection::vec(any::<(u8, u32, u32, u16)>(), 1..150),
    ) {
        let mut rng = SimRng::new(9);
        let db = Database::generate(DbScale::small(), &mut rng);
        let mut server = MySqlServer::new(db, MySqlConfig::default());
        let before = server.db.cardinalities();
        let mut writes = 0u64;
        for (i, seed) in queries.iter().enumerate() {
            let q = arbitrary_query(*seed);
            if q.is_write() {
                writes += 1;
            }
            let work = server.execute(q, i as u32);
            prop_assert!(work.cpu_cycles > 0.0);
            prop_assert!(work.response_bytes > 0 || q.is_write());
        }
        let after = server.db.cardinalities();
        for (b, a) in before.iter().zip(after.iter()) {
            prop_assert!(a >= b, "cardinality shrank: {b} -> {a}");
        }
        prop_assert_eq!(server.queries_executed(), queries.len() as u64);
        // Bid-count consistency: nb_bids sums to the bids table size.
        let total_rows_grown: u64 = after.iter().sum::<u64>() - before.iter().sum::<u64>();
        prop_assert!(total_rows_grown <= 2 * writes, "rows {total_rows_grown} writes {writes}");
    }

    /// The browsing table cannot reach a write state from any state in
    /// any number of steps.
    #[test]
    fn browsing_never_writes(seed in any::<u64>(), steps in 1usize..2_000) {
        let table = TransitionTable::browsing();
        let mut rng = SimRng::new(seed);
        let mut current = TransitionTable::entry();
        let mut history = vec![current];
        for _ in 0..steps {
            prop_assert!(!current.is_write(), "write state {current:?} reached");
            match table.next(current, &mut rng) {
                NextAction::Goto(next) => {
                    history.push(next);
                    current = next;
                }
                NextAction::Back => {
                    history.pop();
                    current = *history.last().unwrap_or(&TransitionTable::entry());
                }
                NextAction::End => {
                    current = TransitionTable::entry();
                    history = vec![current];
                }
            }
        }
    }

    /// Client populations keep sessions valid under arbitrary advance
    /// sequences, and think times stay positive and bounded.
    #[test]
    fn client_population_robust(
        seed in any::<u64>(),
        n in 1u32..50,
        advances in proptest::collection::vec(any::<u32>(), 1..300),
    ) {
        let mut rng = SimRng::new(seed);
        let mut pop = ClientPopulation::new(n, WorkloadMix::percent_browsing(50), &mut rng);
        for &a in &advances {
            let id = a % n;
            let next = pop.advance(id, &mut rng);
            prop_assert!(cloudchar_rubis::Interaction::ALL.contains(&next));
            let think = pop.think_time(id, &mut rng).as_secs_f64();
            prop_assert!((0.0..=120.0).contains(&think));
        }
    }

    /// Both mixes' transition rows stay valid distributions — guards
    /// against future matrix edits breaking normalization.
    #[test]
    fn transition_tables_always_validate(_x in 0u8..1) {
        for mix in [Mix::Browsing, Mix::Bidding] {
            prop_assert!(TransitionTable::for_mix(mix).validate().is_ok());
        }
    }
}
