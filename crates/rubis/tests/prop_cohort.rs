//! Equivalence proptests: the columnar [`ClientCohort`] against the
//! retained per-client [`ClientPopulation`] oracle.
//!
//! The cohort claims bit-identical behaviour: same RNG draw order, same
//! state transitions, same backoff and abandon decisions, for any seed,
//! mix, and interleaving of successes and failures. These properties
//! drive both representations through arbitrary operation sequences
//! from identically-seeded generators and compare every observable
//! after every step — if the cohort ever diverges, replay fingerprints
//! at scale would silently shift, so this is the first line of defence.

use cloudchar_rubis::{ClientCohort, ClientPopulation, RetryPolicy, WorkloadMix};
use cloudchar_simcore::{Engine, SimRng, SimTime, TimerWheel};
use proptest::prelude::*;

/// One step applied to both representations.
#[derive(Debug, Clone, Copy)]
enum Op {
    Advance,
    ThinkTime,
    OnFailure,
    OnSuccess,
    BumpEpoch,
}

fn op_from(code: u8) -> Op {
    match code % 8 {
        // Weight advance/think/failure heavier: they draw RNG.
        0 | 1 | 2 => Op::Advance,
        3 | 4 => Op::ThinkTime,
        5 | 6 => Op::OnFailure,
        7 => Op::OnSuccess,
        _ => Op::BumpEpoch,
    }
}

fn assert_client_state_eq(cohort: &ClientCohort, oracle: &ClientPopulation, id: u32) {
    let s = oracle.session(id);
    assert_eq!(cohort.mix_of(id), s.mix, "mix of client {id}");
    assert_eq!(
        cohort.current_interaction(id),
        s.current,
        "current page of client {id}"
    );
    assert_eq!(
        cohort.interactions_of(id),
        s.interactions,
        "interaction count of client {id}"
    );
    assert_eq!(cohort.epoch(id), s.epoch, "epoch of client {id}");
    assert_eq!(
        cohort.failures_of(id),
        s.consecutive_failures,
        "failure streak of client {id}"
    );
}

proptest! {
    /// Constructor: same mix assignment, same RNG consumption.
    #[test]
    fn construction_is_bit_compatible(
        seed in any::<u64>(),
        n in 1u32..300,
        browse_percent in 0u32..101,
    ) {
        let mix = WorkloadMix::percent_browsing(browse_percent);
        let mut ra = SimRng::new(seed);
        let mut rb = SimRng::new(seed);
        let cohort = ClientCohort::new(n, mix, &mut ra);
        let oracle = ClientPopulation::new(n, mix, &mut rb);
        prop_assert_eq!(cohort.len(), oracle.len());
        prop_assert_eq!(cohort.browsing_sessions(), oracle.browsing_sessions());
        for id in 0..n {
            assert_client_state_eq(&cohort, &oracle, id);
        }
        // Identical stream positions afterwards.
        prop_assert_eq!(ra.next_u64_raw(), rb.next_u64_raw());
    }

    /// Arbitrary interleavings of advance / think_time / on_failure /
    /// on_success / bump_epoch leave both representations in the same
    /// state with the same RNG position, and every decision they return
    /// along the way is identical.
    #[test]
    fn operation_sequences_are_bit_compatible(
        seed in any::<u64>(),
        n in 1u32..20,
        browse_percent in 0u32..101,
        abandon_after in 1u32..6,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..400),
    ) {
        let mix = WorkloadMix::percent_browsing(browse_percent);
        let policy = RetryPolicy { abandon_after, ..RetryPolicy::default() };
        let mut ra = SimRng::new(seed);
        let mut rb = SimRng::new(seed);
        let mut cohort = ClientCohort::new(n, mix, &mut ra);
        let mut oracle = ClientPopulation::new(n, mix, &mut rb);
        for &(who, code) in &ops {
            let id = u32::from(who) % n;
            match op_from(code) {
                Op::Advance => {
                    let a = cohort.advance(id, &mut ra);
                    let b = oracle.advance(id, &mut rb);
                    prop_assert_eq!(a, b, "advance landed on different pages");
                }
                Op::ThinkTime => {
                    let a = cohort.think_time(id, &mut ra);
                    let b = oracle.think_time(id, &mut rb);
                    prop_assert_eq!(a, b, "think times diverged");
                }
                Op::OnFailure => {
                    let a = cohort.on_failure(id, &policy, &mut ra);
                    let b = oracle.on_failure(id, &policy, &mut rb);
                    prop_assert_eq!(a, b, "retry decisions diverged");
                }
                Op::OnSuccess => {
                    cohort.on_success(id);
                    oracle.on_success(id);
                }
                Op::BumpEpoch => {
                    prop_assert_eq!(cohort.bump_epoch(id), oracle.bump_epoch(id));
                }
            }
            assert_client_state_eq(&cohort, &oracle, id);
        }
        for id in 0..n {
            assert_client_state_eq(&cohort, &oracle, id);
        }
        prop_assert_eq!(cohort.total_abandons(), oracle.total_abandons());
        prop_assert_eq!(ra.next_u64_raw(), rb.next_u64_raw(), "RNG streams drifted");
    }

    /// Deep history exercise: a long pure-advance run keeps the bounded
    /// ring and the oracle's trimmed Vec on the same page at every step
    /// (Back/End paths hit the ring's wrap and drain edges).
    #[test]
    fn long_walks_keep_history_aligned(
        seed in any::<u64>(),
        browse in any::<bool>(),
        steps in 100usize..2000,
    ) {
        let mix = if browse { WorkloadMix::BROWSING } else { WorkloadMix::BIDDING };
        let mut ra = SimRng::new(seed);
        let mut rb = SimRng::new(seed);
        let mut cohort = ClientCohort::new(1, mix, &mut ra);
        let mut oracle = ClientPopulation::new(1, mix, &mut rb);
        for step in 0..steps {
            let a = cohort.advance(0, &mut ra);
            let b = oracle.advance(0, &mut rb);
            prop_assert_eq!(a, b, "diverged at step {}", step);
        }
        prop_assert!(cohort.history_len(0) <= 64);
    }
}

/// Mirror of the drain loop in `core/workload.rs`, logging wakeups.
struct WheelWorld {
    wheel: TimerWheel,
    fired: Vec<(u64, u32)>,
}

fn wheel_fire(engine: &mut Engine<WheelWorld>, world: &mut WheelWorld, slot: usize) {
    if !world.wheel.begin_fire(slot, engine.now()) {
        return;
    }
    loop {
        while let Some((client, _epoch)) = world.wheel.pop_due(slot, engine.now()) {
            world.fired.push((engine.now().as_nanos(), client));
        }
        let Some(next) = world.wheel.next_deadline(slot) else {
            return;
        };
        if engine.peek_next_time().map_or(true, |h| next < h) {
            engine.advance_now_to(next);
        } else {
            world.wheel.commit(slot, next);
            engine.schedule_at(next, move |e, w| wheel_fire(e, w, slot));
            return;
        }
    }
}

proptest! {
    /// Timer wheel ≡ per-client events: for an arbitrary batch of armed
    /// wakeups, draining the wheel yields exactly the `(time, arming
    /// FIFO)` order a per-client-event engine would execute, and every
    /// client observes its exact armed nanosecond on the clock.
    #[test]
    fn wheel_wakeup_order_matches_per_client_events(
        deadlines in proptest::collection::vec(1u64..30_000_000_000u64, 1..300),
        width_s in 1u64..4,
        nbuckets in 1usize..32,
    ) {
        // Per-client-event oracle: one engine event per wakeup, armed in
        // client order — executes in (time, seq) order.
        let mut oracle: Engine<Vec<(u64, u32)>> = Engine::new();
        let mut log: Vec<(u64, u32)> = Vec::new();
        for (client, &ns) in deadlines.iter().enumerate() {
            let client = client as u32;
            oracle.schedule_at(SimTime::from_nanos(ns), move |e, w: &mut Vec<(u64, u32)>| {
                w.push((e.now().as_nanos(), client));
            });
        }
        oracle.run(&mut log);

        // Wheel path: same wakeups armed in the same order.
        let mut engine: Engine<WheelWorld> = Engine::new();
        let mut world = WheelWorld {
            wheel: TimerWheel::new(
                cloudchar_simcore::SimDuration::from_secs(width_s),
                nbuckets,
            ),
            fired: Vec::new(),
        };
        for (client, &ns) in deadlines.iter().enumerate() {
            if let Some((slot, at)) = world.wheel.arm(SimTime::from_nanos(ns), client as u32, 0) {
                engine.schedule_at(at, move |e, w| wheel_fire(e, w, slot));
            }
        }
        engine.run(&mut world);

        prop_assert_eq!(&world.fired, &log, "wheel wakeup order diverged");
        prop_assert!(world.wheel.is_empty());
    }
}
