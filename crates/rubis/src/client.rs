//! The RUBiS client emulator.
//!
//! A closed population of N emulated clients (the paper: 1000), each
//! cycling through think time → interaction → think time according to a
//! transition table. Session composition is the paper's experimental
//! variable: browse-only, bid-only, or a percentage blend.

use crate::interactions::Interaction;
use crate::transition::{Mix, NextAction, TransitionTable};
use cloudchar_simcore::{Dist, Sample, SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// The request composition driving an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Fraction of sessions running the browsing table (the rest run the
    /// bidding table).
    pub browsing_fraction: f64,
}

impl WorkloadMix {
    /// Browse-only (paper composition 1).
    pub const BROWSING: WorkloadMix = WorkloadMix {
        browsing_fraction: 1.0,
    };
    /// Bid-only (paper composition 2).
    pub const BIDDING: WorkloadMix = WorkloadMix {
        browsing_fraction: 0.0,
    };

    /// A blend: `browse_percent`% browsing sessions.
    pub fn percent_browsing(browse_percent: u32) -> WorkloadMix {
        assert!(browse_percent <= 100);
        WorkloadMix {
            browsing_fraction: f64::from(browse_percent) / 100.0,
        }
    }

    /// The paper's five compositions, in presentation order.
    pub fn paper_compositions() -> [(&'static str, WorkloadMix); 5] {
        [
            ("browsing", WorkloadMix::BROWSING),
            ("bidding", WorkloadMix::BIDDING),
            ("30/70", WorkloadMix::percent_browsing(30)),
            ("50/50", WorkloadMix::percent_browsing(50)),
            ("70/30", WorkloadMix::percent_browsing(70)),
        ]
    }
}

/// Client-side failure handling: per-request timeout, capped exponential
/// backoff with jitter, and session abandonment after repeated failures.
///
/// Mirrors the RUBiS client emulator's HTTP behaviour under server
/// errors: a request that times out or errors is retried with growing
/// pauses; a page that keeps failing is abandoned and the session
/// restarts at the entry page after a longer pause — graceful
/// degradation instead of wedging the closed population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Give up waiting for a response after this long.
    pub timeout_s: f64,
    /// First-retry backoff; doubles per consecutive failure.
    pub backoff_base_s: f64,
    /// Ceiling on the exponential backoff.
    pub backoff_cap_s: f64,
    /// Abandon the page after this many consecutive failures.
    pub abandon_after: u32,
    /// Pause before a fresh session attempt after abandoning.
    pub abandon_pause_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_s: 8.0,
            backoff_base_s: 0.5,
            backoff_cap_s: 8.0,
            abandon_after: 4,
            abandon_pause_s: 30.0,
        }
    }
}

impl RetryPolicy {
    /// Check the policy parameters for sanity.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |name: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and > 0, got {v}"))
            }
        };
        pos("timeout_s", self.timeout_s)?;
        pos("backoff_base_s", self.backoff_base_s)?;
        pos("backoff_cap_s", self.backoff_cap_s)?;
        pos("abandon_pause_s", self.abandon_pause_s)?;
        if self.abandon_after == 0 {
            return Err("abandon_after must be >= 1".to_string());
        }
        Ok(())
    }
}

/// What a client does after a failed request attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retry the same interaction after this backoff delay.
    RetryAfter(SimDuration),
    /// The session abandoned the page: pause this long, then restart
    /// from the entry page.
    Abandon(SimDuration),
}

/// One emulated client session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Session index.
    pub id: u32,
    /// Which mix table this session follows.
    pub mix: Mix,
    /// Current page.
    pub current: Interaction,
    history: Vec<Interaction>,
    /// Interactions completed by this session.
    pub interactions: u64,
    /// Attempt epoch: bumped whenever the session gives up on an
    /// outstanding request (timeout or abandonment) so stale responses
    /// and stale timeout events can be recognised and ignored.
    pub epoch: u64,
    /// Consecutive failed attempts at the current interaction.
    pub consecutive_failures: u32,
    /// Pages abandoned after repeated failures.
    pub abandons: u64,
}

/// The emulated client population.
#[derive(Debug)]
pub struct ClientPopulation {
    sessions: Vec<Session>,
    browsing: TransitionTable,
    bidding: TransitionTable,
    think_browse: Dist,
    think_bid: Dist,
}

impl ClientPopulation {
    /// Mean think time, as configured in the paper (7 s).
    pub const THINK_MEAN_S: f64 = 7.0;

    /// Create `n` sessions split by `mix`.
    pub fn new(n: u32, mix: WorkloadMix, rng: &mut SimRng) -> Self {
        let sessions = (0..n)
            .map(|id| Session {
                id,
                mix: if rng.chance(mix.browsing_fraction) {
                    Mix::Browsing
                } else {
                    Mix::Bidding
                },
                current: TransitionTable::entry(),
                history: vec![TransitionTable::entry()],
                interactions: 0,
                epoch: 0,
                consecutive_failures: 0,
                abandons: 0,
            })
            .collect();
        ClientPopulation {
            sessions,
            browsing: TransitionTable::browsing(),
            bidding: TransitionTable::bidding(),
            // The benchmark's negative-exponential think time. Bidding
            // sessions pause slightly longer (form filling), the effect
            // §4.1 attributes the smoother bid curves to.
            think_browse: Dist::exp(Self::THINK_MEAN_S),
            think_bid: Dist::exp(Self::THINK_MEAN_S * 1.25),
        }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Access a session.
    pub fn session(&self, id: u32) -> &Session {
        &self.sessions[id as usize]
    }

    /// The interaction the session will issue next.
    pub fn current_interaction(&self, id: u32) -> Interaction {
        self.sessions[id as usize].current
    }

    /// Sample the think time before the session's next request.
    pub fn think_time(&self, id: u32, rng: &mut SimRng) -> SimDuration {
        let s = &self.sessions[id as usize];
        let d = match s.mix {
            Mix::Browsing => &self.think_browse,
            Mix::Bidding => &self.think_bid,
        };
        SimDuration::from_secs_f64(d.sample(rng).min(120.0))
    }

    /// Record the completion of the session's current interaction and
    /// move it to its next page. Session end restarts at the entry page
    /// (closed population, as the RUBiS client emulator does).
    pub fn advance(&mut self, id: u32, rng: &mut SimRng) -> Interaction {
        let table = match self.sessions[id as usize].mix {
            Mix::Browsing => &self.browsing,
            Mix::Bidding => &self.bidding,
        };
        let s = &mut self.sessions[id as usize];
        s.interactions += 1;
        match table.next(s.current, rng) {
            NextAction::Goto(next) => {
                s.history.push(next);
                if s.history.len() > 64 {
                    s.history.remove(0);
                }
                s.current = next;
            }
            NextAction::Back => {
                s.history.pop();
                s.current = *s.history.last().unwrap_or(&TransitionTable::entry());
            }
            NextAction::End => {
                s.current = TransitionTable::entry();
                s.history.clear();
                s.history.push(s.current);
            }
        }
        s.current
    }

    /// The session's current attempt epoch (see [`Session::epoch`]).
    pub fn epoch(&self, id: u32) -> u64 {
        self.sessions[id as usize].epoch
    }

    /// Invalidate the session's outstanding attempt (its timeout fired or
    /// it abandoned): responses and timers from earlier epochs must be
    /// dropped. Returns the new epoch.
    pub fn bump_epoch(&mut self, id: u32) -> u64 {
        let s = &mut self.sessions[id as usize];
        s.epoch += 1;
        s.epoch
    }

    /// Record a successful response: the failure streak resets.
    pub fn on_success(&mut self, id: u32) {
        self.sessions[id as usize].consecutive_failures = 0;
    }

    /// Record a failed attempt (timeout or server error) and decide what
    /// the client does next: capped exponential backoff with uniform
    /// jitter in [0.5, 1.5), or abandonment of the page once
    /// `policy.abandon_after` consecutive attempts have failed. On
    /// abandonment the session resets to the entry page, mirroring a user
    /// giving up and starting over later.
    pub fn on_failure(&mut self, id: u32, policy: &RetryPolicy, rng: &mut SimRng) -> RetryDecision {
        let s = &mut self.sessions[id as usize];
        s.consecutive_failures += 1;
        let jitter = 0.5 + rng.f64();
        if s.consecutive_failures >= policy.abandon_after {
            s.consecutive_failures = 0;
            s.abandons += 1;
            s.current = TransitionTable::entry();
            s.history.clear();
            s.history.push(s.current);
            RetryDecision::Abandon(SimDuration::from_secs_f64(policy.abandon_pause_s * jitter))
        } else {
            let exp = policy.backoff_base_s * 2f64.powi(s.consecutive_failures as i32 - 1);
            let backoff = exp.min(policy.backoff_cap_s) * jitter;
            RetryDecision::RetryAfter(SimDuration::from_secs_f64(backoff))
        }
    }

    /// Total pages abandoned across the population.
    pub fn total_abandons(&self) -> u64 {
        self.sessions.iter().map(|s| s.abandons).sum()
    }

    /// Count of sessions currently following the browsing table.
    pub fn browsing_sessions(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.mix == Mix::Browsing)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_split_matches_mix() {
        let mut rng = SimRng::new(1);
        let p = ClientPopulation::new(10_000, WorkloadMix::percent_browsing(30), &mut rng);
        let frac = p.browsing_sessions() as f64 / p.len() as f64;
        assert!((frac - 0.30).abs() < 0.02, "browsing fraction {frac}");
        assert_eq!(
            ClientPopulation::new(100, WorkloadMix::BROWSING, &mut rng).browsing_sessions(),
            100
        );
        assert_eq!(
            ClientPopulation::new(100, WorkloadMix::BIDDING, &mut rng).browsing_sessions(),
            0
        );
    }

    #[test]
    fn sessions_start_at_home() {
        let mut rng = SimRng::new(2);
        let p = ClientPopulation::new(10, WorkloadMix::BIDDING, &mut rng);
        for id in 0..10 {
            assert_eq!(p.current_interaction(id), Interaction::Home);
        }
    }

    #[test]
    fn think_time_is_positive_and_near_mean() {
        let mut rng = SimRng::new(3);
        let p = ClientPopulation::new(2, WorkloadMix::BROWSING, &mut rng);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let t = p.think_time(0, &mut rng).as_secs_f64();
            assert!(t >= 0.0);
            total += t;
        }
        let mean = total / n as f64;
        assert!((mean - 7.0).abs() < 0.25, "mean think {mean}");
    }

    #[test]
    fn bidding_thinks_longer_than_browsing() {
        let mut rng = SimRng::new(4);
        let mut p = ClientPopulation::new(2, WorkloadMix::percent_browsing(50), &mut rng);
        // Force known mixes.
        p.sessions[0].mix = Mix::Browsing;
        p.sessions[1].mix = Mix::Bidding;
        let n = 50_000;
        let (mut a, mut b) = (0.0, 0.0);
        for _ in 0..n {
            a += p.think_time(0, &mut rng).as_secs_f64();
            b += p.think_time(1, &mut rng).as_secs_f64();
        }
        assert!(b / n as f64 > a / n as f64 * 1.1);
    }

    #[test]
    fn advance_progresses_sessions() {
        let mut rng = SimRng::new(5);
        let mut p = ClientPopulation::new(1, WorkloadMix::BIDDING, &mut rng);
        let mut visited = std::collections::HashSet::new();
        for _ in 0..10_000 {
            visited.insert(p.advance(0, &mut rng));
        }
        assert!(visited.len() > 10, "only visited {}", visited.len());
        assert_eq!(p.session(0).interactions, 10_000);
    }

    #[test]
    fn history_is_bounded() {
        let mut rng = SimRng::new(6);
        let mut p = ClientPopulation::new(1, WorkloadMix::BROWSING, &mut rng);
        for _ in 0..100_000 {
            p.advance(0, &mut rng);
        }
        assert!(p.sessions[0].history.len() <= 64);
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let mut rng = SimRng::new(7);
        let mut p = ClientPopulation::new(1, WorkloadMix::BROWSING, &mut rng);
        let policy = RetryPolicy {
            abandon_after: 100, // keep retrying; we only test backoff here
            ..RetryPolicy::default()
        };
        let mut prev_ceiling: f64 = 0.0;
        for attempt in 1..=10 {
            let d = match p.on_failure(0, &policy, &mut rng) {
                RetryDecision::RetryAfter(d) => d.as_secs_f64(),
                RetryDecision::Abandon(_) => panic!("abandoned at attempt {attempt}"),
            };
            let exp = (policy.backoff_base_s * 2f64.powi(attempt - 1)).min(policy.backoff_cap_s);
            assert!(
                (exp * 0.5..exp * 1.5).contains(&d),
                "attempt {attempt}: backoff {d} outside jitter band around {exp}"
            );
            // The cap binds: ceilings never exceed cap × max jitter.
            assert!(d < policy.backoff_cap_s * 1.5);
            prev_ceiling = prev_ceiling.max(d);
        }
    }

    #[test]
    fn abandonment_resets_session_to_entry() {
        let mut rng = SimRng::new(8);
        let mut p = ClientPopulation::new(1, WorkloadMix::BIDDING, &mut rng);
        // Walk the session away from the entry page.
        for _ in 0..20 {
            p.advance(0, &mut rng);
        }
        let policy = RetryPolicy::default();
        let mut decisions = Vec::new();
        for _ in 0..policy.abandon_after {
            decisions.push(p.on_failure(0, &policy, &mut rng));
        }
        assert!(matches!(decisions.pop(), Some(RetryDecision::Abandon(_))));
        assert!(decisions
            .iter()
            .all(|d| matches!(d, RetryDecision::RetryAfter(_))));
        assert_eq!(p.current_interaction(0), TransitionTable::entry());
        assert_eq!(p.session(0).consecutive_failures, 0);
        assert_eq!(p.total_abandons(), 1);
        // A later success streak keeps the counter at zero.
        p.on_success(0);
        assert_eq!(p.session(0).consecutive_failures, 0);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut rng = SimRng::new(9);
        let mut p = ClientPopulation::new(1, WorkloadMix::BROWSING, &mut rng);
        let policy = RetryPolicy::default();
        for _ in 0..policy.abandon_after - 1 {
            let _ = p.on_failure(0, &policy, &mut rng);
        }
        p.on_success(0);
        // The next failure is attempt 1 again, not an abandonment.
        assert!(matches!(
            p.on_failure(0, &policy, &mut rng),
            RetryDecision::RetryAfter(_)
        ));
    }

    #[test]
    fn epoch_bump_invalidates_attempts() {
        let mut rng = SimRng::new(10);
        let mut p = ClientPopulation::new(2, WorkloadMix::BROWSING, &mut rng);
        assert_eq!(p.epoch(0), 0);
        assert_eq!(p.bump_epoch(0), 1);
        assert_eq!(p.bump_epoch(0), 2);
        assert_eq!(p.epoch(0), 2);
        assert_eq!(p.epoch(1), 0, "epochs are per-session");
    }

    #[test]
    fn retry_policy_validation() {
        assert_eq!(RetryPolicy::default().validate(), Ok(()));
        let mut p = RetryPolicy::default();
        p.timeout_s = 0.0;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::default();
        p.abandon_after = 0;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::default();
        p.backoff_cap_s = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn paper_compositions_are_five() {
        let comps = WorkloadMix::paper_compositions();
        assert_eq!(comps.len(), 5);
        assert_eq!(comps[0].1.browsing_fraction, 1.0);
        assert_eq!(comps[1].1.browsing_fraction, 0.0);
    }
}
