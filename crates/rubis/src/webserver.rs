//! The Apache + PHP web/application tier model.
//!
//! RUBiS's PHP implementation merges the web and application servers
//! into one Apache prefork instance (the paper: "the two servers are
//! integrated together in the PHP implementation"). The model captures
//! the mechanisms behind the paper's web-tier observations:
//!
//! * a **worker pool** that starts small and spawns batches of workers
//!   when the request backlog grows — each spawn is a step increase in
//!   resident memory, the "jumps" of Figures 2 and 6;
//! * per-request **access-log appends** and **PHP file-backed session
//!   writes**, the web tier's disk traffic (Figures 3 and 7);
//! * connection-handling CPU on top of the PHP script cost.

use cloudchar_hw::{IoKind, IoRequest};
use cloudchar_simcore::stats::Counter;
use cloudchar_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Apache prefork + PHP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WebConfig {
    /// Workers forked at startup (`StartServers`-ish).
    pub start_workers: u32,
    /// Hard worker limit (`MaxClients`).
    pub max_workers: u32,
    /// Workers forked per spawn decision.
    pub spawn_batch: u32,
    /// Minimum time between spawn decisions.
    pub spawn_cooldown: SimDuration,
    /// Spawn when queued requests exceed this fraction of current
    /// workers.
    pub spawn_backlog_ratio: f64,
    /// Resident bytes per worker (Apache child + mod_php).
    pub worker_memory: u64,
    /// Base resident bytes (parent, shared code, OS page tables).
    pub base_memory: u64,
    /// Bytes per tracked client session (PHP `$_SESSION` in memory).
    pub session_memory: u64,
    /// Transient buffer bytes per in-flight request.
    pub request_buffer: u64,
    /// Access-log bytes appended per request.
    pub log_bytes_per_request: u64,
    /// PHP session file write per dynamic request.
    pub session_write_bytes: u64,
    /// Connection-handling cycles per request (accept, parse, TCP).
    pub conn_cycles: f64,
    /// Response-marshalling cycles per response byte.
    pub cycles_per_resp_byte: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            start_workers: 16,
            max_workers: 150,
            spawn_batch: 32,
            spawn_cooldown: SimDuration::from_secs(60),
            spawn_backlog_ratio: 0.25,
            worker_memory: 2_800 * 1024,
            base_memory: 160 * 1024 * 1024,
            session_memory: 60 * 1024,
            request_buffer: 768 * 1024,
            log_bytes_per_request: 360,
            session_write_bytes: 2_600,
            conn_cycles: 80_000.0,
            cycles_per_resp_byte: 4.0,
        }
    }
}

/// The web/application tier server.
#[derive(Debug)]
pub struct WebAppServer {
    config: WebConfig,
    workers: u32,
    busy: u32,
    queued: u32,
    last_spawn: SimTime,
    /// Client sessions with live PHP session state.
    pub tracked_sessions: u32,
    /// Requests fully served.
    pub requests_served: Counter,
    /// Worker-spawn events (for jump analysis).
    pub spawn_events: Vec<(SimTime, u32)>,
    log_pending: u64,
}

impl WebAppServer {
    /// Start the server with its initial worker pool.
    pub fn new(config: WebConfig) -> Self {
        WebAppServer {
            workers: config.start_workers,
            busy: 0,
            queued: 0,
            last_spawn: SimTime::ZERO,
            tracked_sessions: 0,
            requests_served: Counter::new(),
            spawn_events: Vec::new(),
            config,
            log_pending: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> WebConfig {
        self.config
    }

    /// Current worker count.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Workers currently processing a request.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Requests waiting for a free worker.
    pub fn queued(&self) -> u32 {
        self.queued
    }

    /// A request arrived; returns `true` if a worker is free to start it
    /// immediately, otherwise it is queued and the caller must retry via
    /// [`WebAppServer::try_dequeue`] after a finish.
    pub fn on_arrival(&mut self) -> bool {
        if self.busy < self.workers {
            self.busy += 1;
            true
        } else {
            self.queued += 1;
            false
        }
    }

    /// A request finished; frees its worker.
    pub fn on_finish(&mut self) {
        assert!(self.busy > 0, "finish without a busy worker");
        self.busy -= 1;
        self.requests_served.add(1);
        self.log_pending += self.config.log_bytes_per_request;
    }

    /// A queued request gave up (client-side timeout) before a worker
    /// ever picked it up.
    pub fn drop_queued(&mut self) {
        assert!(self.queued > 0, "drop without a queued request");
        self.queued -= 1;
    }

    /// After a finish, start one queued request if possible. Returns
    /// `true` when a queued request was assigned a worker.
    pub fn try_dequeue(&mut self) -> bool {
        if self.queued > 0 && self.busy < self.workers {
            self.queued -= 1;
            self.busy += 1;
            true
        } else {
            false
        }
    }

    /// Periodic pool management (call every second or so): spawn a batch
    /// when the backlog justifies it. Prefork never shrinks here —
    /// `MaxSpareServers` in the paper-era default config is generous and
    /// the run is short. Returns the number of workers spawned.
    pub fn manage_pool(&mut self, now: SimTime) -> u32 {
        let threshold = (self.workers as f64 * self.config.spawn_backlog_ratio).max(4.0);
        let cooled = now.duration_since(self.last_spawn) >= self.config.spawn_cooldown
            || self.last_spawn == SimTime::ZERO;
        if self.workers < self.config.max_workers
            && cooled
            && (f64::from(self.queued) >= threshold || self.busy == self.workers)
        {
            let spawn = self
                .config
                .spawn_batch
                .min(self.config.max_workers - self.workers);
            self.workers += spawn;
            self.last_spawn = now;
            self.spawn_events.push((now, spawn));
            spawn
        } else {
            0
        }
    }

    /// CPU cycles for connection handling + response marshalling of one
    /// request (added to the PHP script cost).
    pub fn connection_cycles(&self, response_bytes: u64) -> f64 {
        self.config.conn_cycles + self.config.cycles_per_resp_byte * response_bytes as f64
    }

    /// The PHP session-file write each dynamic request performs.
    pub fn session_write(&self) -> IoRequest {
        IoRequest {
            kind: IoKind::Write,
            bytes: self.config.session_write_bytes,
            sequential: false,
        }
    }

    /// Flush buffered access-log bytes (Apache writes through the page
    /// cache; we batch per tick). Returns the write, if any.
    pub fn flush_log(&mut self) -> Option<IoRequest> {
        if self.log_pending == 0 {
            return None;
        }
        let bytes = self.log_pending;
        self.log_pending = 0;
        Some(IoRequest {
            kind: IoKind::Write,
            bytes,
            sequential: true,
        })
    }

    /// Resident memory of the whole tier process tree.
    pub fn memory_bytes(&self) -> u64 {
        self.config.base_memory
            + u64::from(self.workers) * self.config.worker_memory
            + u64::from(self.busy) * self.config.request_buffer
            + u64::from(self.tracked_sessions) * self.config.session_memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_assignment_and_queueing() {
        let mut w = WebAppServer::new(WebConfig {
            start_workers: 2,
            ..WebConfig::default()
        });
        assert!(w.on_arrival());
        assert!(w.on_arrival());
        assert!(!w.on_arrival()); // queued
        assert_eq!(w.busy(), 2);
        assert_eq!(w.queued(), 1);
        w.on_finish();
        assert!(w.try_dequeue());
        assert_eq!(w.busy(), 2);
        assert_eq!(w.queued(), 0);
        assert!(!w.try_dequeue());
    }

    #[test]
    #[should_panic(expected = "finish without a busy worker")]
    fn finish_without_busy_panics() {
        let mut w = WebAppServer::new(WebConfig::default());
        w.on_finish();
    }

    #[test]
    fn pool_spawns_on_backlog_and_respects_cooldown() {
        let cfg = WebConfig {
            start_workers: 8,
            spawn_batch: 8,
            max_workers: 32,
            spawn_cooldown: SimDuration::from_secs(20),
            ..WebConfig::default()
        };
        let mut w = WebAppServer::new(cfg);
        for _ in 0..8 {
            assert!(w.on_arrival());
        }
        for _ in 0..10 {
            w.on_arrival(); // all queued
        }
        let t1 = SimTime::from_secs(5);
        assert_eq!(w.manage_pool(t1), 8);
        assert_eq!(w.workers(), 16);
        // Cooldown: immediate second call does nothing.
        assert_eq!(w.manage_pool(t1 + SimDuration::from_secs(1)), 0);
        // After cooldown, spawns again while backlog persists.
        assert_eq!(w.manage_pool(t1 + SimDuration::from_secs(25)), 8);
        assert_eq!(w.spawn_events.len(), 2);
    }

    #[test]
    fn pool_never_exceeds_max() {
        let cfg = WebConfig {
            start_workers: 8,
            spawn_batch: 100,
            max_workers: 20,
            spawn_cooldown: SimDuration::ZERO,
            ..WebConfig::default()
        };
        let mut w = WebAppServer::new(cfg);
        for _ in 0..50 {
            w.on_arrival();
        }
        w.manage_pool(SimTime::from_secs(1));
        assert_eq!(w.workers(), 20);
        w.manage_pool(SimTime::from_secs(2));
        assert_eq!(w.workers(), 20);
    }

    #[test]
    fn memory_steps_with_worker_spawns() {
        let cfg = WebConfig {
            start_workers: 8,
            spawn_batch: 8,
            spawn_cooldown: SimDuration::ZERO,
            ..WebConfig::default()
        };
        let mut w = WebAppServer::new(cfg);
        let m0 = w.memory_bytes();
        for _ in 0..20 {
            w.on_arrival();
        }
        w.manage_pool(SimTime::from_secs(1));
        let m1 = w.memory_bytes();
        // 8 new workers plus request buffers.
        assert!(m1 > m0 + 8 * cfg.worker_memory);
    }

    #[test]
    fn log_batches_and_flushes() {
        let mut w = WebAppServer::new(WebConfig::default());
        assert!(w.flush_log().is_none());
        w.on_arrival();
        w.on_finish();
        w.on_arrival();
        w.on_finish();
        let io = w.flush_log().unwrap();
        assert_eq!(io.bytes, 720);
        assert!(io.sequential);
        assert!(w.flush_log().is_none());
    }

    #[test]
    fn connection_cycles_scale_with_response() {
        let w = WebAppServer::new(WebConfig::default());
        assert!(w.connection_cycles(20_000) > w.connection_cycles(1_000));
        assert!(w.connection_cycles(0) >= 80_000.0);
    }
}
