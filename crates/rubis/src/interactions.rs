//! The RUBiS interaction set (PHP version).
//!
//! Each interaction is one HTTP transaction against the web/application
//! tier: a request, PHP script execution, zero or more database queries,
//! and an HTML response. The per-interaction resource profile (script
//! cycles, payload sizes, query plan) is the workload's DNA — tier-level
//! demand ratios in the paper emerge from these profiles combined with
//! the transition tables in [`crate::transition`].

use crate::db::Query;
use crate::schema::{ItemId, UserId};
use cloudchar_simcore::{Dist, Sample, SimRng};
use serde::{Deserialize, Serialize};

/// The 23 RUBiS page interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Interaction {
    Home,
    Register,
    RegisterUser,
    Browse,
    BrowseCategories,
    SearchItemsInCategory,
    BrowseRegions,
    BrowseCategoriesInRegion,
    SearchItemsInRegion,
    ViewItem,
    ViewUserInfo,
    ViewBidHistory,
    BuyNowAuth,
    BuyNow,
    StoreBuyNow,
    PutBidAuth,
    PutBid,
    StoreBid,
    PutCommentAuth,
    PutComment,
    StoreComment,
    AboutMeAuth,
    AboutMe,
}

impl Interaction {
    /// All interactions, in enum order.
    pub const ALL: [Interaction; 23] = [
        Interaction::Home,
        Interaction::Register,
        Interaction::RegisterUser,
        Interaction::Browse,
        Interaction::BrowseCategories,
        Interaction::SearchItemsInCategory,
        Interaction::BrowseRegions,
        Interaction::BrowseCategoriesInRegion,
        Interaction::SearchItemsInRegion,
        Interaction::ViewItem,
        Interaction::ViewUserInfo,
        Interaction::ViewBidHistory,
        Interaction::BuyNowAuth,
        Interaction::BuyNow,
        Interaction::StoreBuyNow,
        Interaction::PutBidAuth,
        Interaction::PutBid,
        Interaction::StoreBid,
        Interaction::PutCommentAuth,
        Interaction::PutComment,
        Interaction::StoreComment,
        Interaction::AboutMeAuth,
        Interaction::AboutMe,
    ];

    /// Dense index of the interaction.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&i| i == self).expect("in ALL")
    }

    /// Whether the interaction writes to the database.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            Interaction::RegisterUser
                | Interaction::StoreBuyNow
                | Interaction::StoreBid
                | Interaction::StoreComment
        )
    }

    /// Script name as served by the PHP implementation.
    pub fn script_name(self) -> &'static str {
        match self {
            Interaction::Home => "index.html",
            Interaction::Register => "register.html",
            Interaction::RegisterUser => "RegisterUser.php",
            Interaction::Browse => "browse.html",
            Interaction::BrowseCategories => "BrowseCategories.php",
            Interaction::SearchItemsInCategory => "SearchItemsByCategory.php",
            Interaction::BrowseRegions => "BrowseRegions.php",
            Interaction::BrowseCategoriesInRegion => "BrowseCategories.php?region",
            Interaction::SearchItemsInRegion => "SearchItemsByRegion.php",
            Interaction::ViewItem => "ViewItem.php",
            Interaction::ViewUserInfo => "ViewUserInfo.php",
            Interaction::ViewBidHistory => "ViewBidHistory.php",
            Interaction::BuyNowAuth => "BuyNowAuth.php",
            Interaction::BuyNow => "BuyNow.php",
            Interaction::StoreBuyNow => "StoreBuyNow.php",
            Interaction::PutBidAuth => "PutBidAuth.php",
            Interaction::PutBid => "PutBid.php",
            Interaction::StoreBid => "StoreBid.php",
            Interaction::PutCommentAuth => "PutCommentAuth.php",
            Interaction::PutComment => "PutComment.php",
            Interaction::StoreComment => "StoreComment.php",
            Interaction::AboutMeAuth => "AboutMe.html",
            Interaction::AboutMe => "AboutMe.php",
        }
    }
}

/// Resource profile of one interaction class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionProfile {
    /// HTTP request size distribution (bytes).
    pub request_bytes: Dist,
    /// PHP script CPU demand distribution (cycles), excluding per-query
    /// marshalling (added per query executed).
    pub script_cycles: Dist,
    /// Static HTML skeleton bytes of the response; dynamic content from
    /// query results is added on top.
    pub static_html_bytes: u64,
    /// HTML expansion factor applied to DB result bytes (markup around
    /// each row).
    pub html_expansion: f64,
}

impl InteractionProfile {
    /// The calibrated default profile for an interaction. Script cycle
    /// means are tuned so that 1000 clients at a 7 s think time land the
    /// web tier in the paper's Figure 1 range.
    pub fn of(i: Interaction) -> InteractionProfile {
        use Interaction::*;
        // (script kilo-cycles mean, static html bytes, expansion)
        let (kcycles, static_html, expansion) = match i {
            Home => (120.0, 5_000, 0.0),
            Register => (90.0, 2_600, 0.0),
            RegisterUser => (300.0, 2_400, 1.0),
            Browse => (100.0, 3_400, 0.0),
            BrowseCategories => (280.0, 10_500, 1.0),
            SearchItemsInCategory => (700.0, 26_000, 1.0),
            BrowseRegions => (240.0, 8_800, 1.0),
            BrowseCategoriesInRegion => (300.0, 10_500, 1.0),
            SearchItemsInRegion => (780.0, 25_000, 1.0),
            ViewItem => (480.0, 17_500, 1.0),
            ViewUserInfo => (380.0, 11_500, 1.0),
            ViewBidHistory => (430.0, 13_500, 1.0),
            BuyNowAuth => (140.0, 3_600, 0.0),
            BuyNow => (380.0, 14_000, 1.0),
            StoreBuyNow => (430.0, 3_000, 1.0),
            PutBidAuth => (140.0, 3_600, 0.0),
            PutBid => (430.0, 15_500, 1.0),
            StoreBid => (480.0, 3_000, 1.0),
            PutCommentAuth => (140.0, 3_600, 0.0),
            PutComment => (290.0, 12_000, 1.0),
            StoreComment => (380.0, 3_000, 1.0),
            AboutMeAuth => (120.0, 3_400, 0.0),
            AboutMe => (760.0, 22_500, 1.0),
        };
        InteractionProfile {
            request_bytes: Dist::Uniform {
                lo: 280.0,
                hi: 700.0,
            },
            script_cycles: Dist::Erlang {
                k: 3,
                mean: kcycles * 1_000.0,
            },
            static_html_bytes: static_html,
            html_expansion: expansion,
        }
    }

    /// Sample a request size.
    pub fn sample_request_bytes(&self, rng: &mut SimRng) -> u64 {
        self.request_bytes.sample(rng) as u64
    }

    /// Sample script cycles.
    pub fn sample_script_cycles(&self, rng: &mut SimRng) -> f64 {
        self.script_cycles.sample(rng)
    }

    /// HTML response size given total DB result bytes.
    pub fn response_bytes(&self, db_result_bytes: u64) -> u64 {
        self.static_html_bytes + (db_result_bytes as f64 * self.html_expansion) as u64
    }
}

/// Context needed to instantiate concrete queries: the live entity
/// ranges of the database.
#[derive(Debug, Clone, Copy)]
pub struct EntityRanges {
    /// Number of users currently registered.
    pub users: u32,
    /// Number of items.
    pub items: u32,
    /// Number of categories.
    pub categories: u16,
    /// Number of regions.
    pub regions: u16,
}

impl EntityRanges {
    fn item(&self, rng: &mut SimRng) -> ItemId {
        // Zipf-ish skew: popular items attract most views and bids.
        let z = rng.f64_open();
        ItemId(((z * z) * f64::from(self.items)) as u32 % self.items.max(1))
    }

    fn user(&self, rng: &mut SimRng) -> UserId {
        UserId(rng.below(u64::from(self.users.max(1))) as u32)
    }

    fn category(&self, rng: &mut SimRng) -> crate::schema::CategoryId {
        let z = rng.f64_open();
        crate::schema::CategoryId(
            ((z * z) * f64::from(self.categories)) as u16 % self.categories.max(1),
        )
    }

    fn region(&self, rng: &mut SimRng) -> crate::schema::RegionId {
        crate::schema::RegionId(rng.below(u64::from(self.regions.max(1))) as u16)
    }
}

/// Instantiate the database queries one execution of `i` issues.
pub fn queries_for(i: Interaction, ranges: EntityRanges, rng: &mut SimRng) -> Vec<Query> {
    use Interaction::*;
    match i {
        Home | Register | Browse | BuyNowAuth | PutBidAuth | PutCommentAuth | AboutMeAuth => {
            Vec::new() // static pages / auth forms
        }
        RegisterUser => vec![Query::RegisterUser {
            region: ranges.region(rng),
        }],
        BrowseCategories => vec![Query::SelectCategories],
        SearchItemsInCategory => vec![Query::SearchItemsByCategory {
            category: ranges.category(rng),
            page: (rng.f64() * rng.f64() * 5.0) as u32,
        }],
        BrowseRegions => vec![Query::SelectRegions],
        BrowseCategoriesInRegion => vec![Query::SelectCategories],
        SearchItemsInRegion => vec![Query::SearchItemsByRegion {
            category: ranges.category(rng),
            region: ranges.region(rng),
            page: (rng.f64() * rng.f64() * 3.0) as u32,
        }],
        ViewItem => vec![Query::GetItem {
            item: ranges.item(rng),
        }],
        ViewUserInfo => vec![Query::GetUserInfo {
            user: ranges.user(rng),
        }],
        ViewBidHistory => vec![Query::GetBidHistory {
            item: ranges.item(rng),
        }],
        BuyNow => vec![
            Query::AuthUser {
                user: ranges.user(rng),
            },
            Query::GetItem {
                item: ranges.item(rng),
            },
        ],
        StoreBuyNow => vec![Query::StoreBuyNow {
            buyer: ranges.user(rng),
            item: ranges.item(rng),
        }],
        PutBid => vec![
            Query::AuthUser {
                user: ranges.user(rng),
            },
            Query::GetItem {
                item: ranges.item(rng),
            },
            Query::GetMaxBid {
                item: ranges.item(rng),
            },
        ],
        StoreBid => vec![Query::StoreBid {
            user: ranges.user(rng),
            item: ranges.item(rng),
            increment: rng.range_inclusive(50, 500) as i64,
        }],
        PutComment => vec![
            Query::AuthUser {
                user: ranges.user(rng),
            },
            Query::GetItem {
                item: ranges.item(rng),
            },
        ],
        StoreComment => vec![Query::StoreComment {
            from: ranges.user(rng),
            to: ranges.user(rng),
            item: ranges.item(rng),
        }],
        AboutMe => vec![
            Query::AuthUser {
                user: ranges.user(rng),
            },
            Query::AboutMe {
                user: ranges.user(rng),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges() -> EntityRanges {
        EntityRanges {
            users: 1000,
            items: 500,
            categories: 10,
            regions: 5,
        }
    }

    #[test]
    fn all_is_dense_and_complete() {
        assert_eq!(Interaction::ALL.len(), 23);
        for (idx, &i) in Interaction::ALL.iter().enumerate() {
            assert_eq!(i.index(), idx);
        }
    }

    #[test]
    fn writes_flagged() {
        let writes: Vec<_> = Interaction::ALL.iter().filter(|i| i.is_write()).collect();
        assert_eq!(writes.len(), 4);
    }

    #[test]
    fn write_interactions_issue_write_queries() {
        let mut rng = SimRng::new(1);
        for &i in &Interaction::ALL {
            let qs = queries_for(i, ranges(), &mut rng);
            let any_write = qs.iter().any(|q| q.is_write());
            assert_eq!(
                any_write,
                i.is_write(),
                "{i:?} write flag vs queries mismatch"
            );
        }
    }

    #[test]
    fn profiles_have_positive_costs() {
        let mut rng = SimRng::new(2);
        for &i in &Interaction::ALL {
            let p = InteractionProfile::of(i);
            assert!(p.script_cycles.validate().is_ok());
            let c = p.sample_script_cycles(&mut rng);
            assert!(c > 0.0, "{i:?} cycles {c}");
            let req = p.sample_request_bytes(&mut rng);
            assert!((280..700).contains(&(req as u32)), "{i:?} req {req}");
            assert!(p.response_bytes(0) >= 1_000);
        }
    }

    #[test]
    fn search_pages_are_heavier_than_forms() {
        let search = InteractionProfile::of(Interaction::SearchItemsInCategory);
        let form = InteractionProfile::of(Interaction::PutBidAuth);
        assert!(search.script_cycles.mean().unwrap() > 3.0 * form.script_cycles.mean().unwrap());
    }

    #[test]
    fn queries_reference_valid_entities() {
        let mut rng = SimRng::new(3);
        let r = ranges();
        for _ in 0..500 {
            for &i in &Interaction::ALL {
                for q in queries_for(i, r, &mut rng) {
                    match q {
                        Query::GetItem { item }
                        | Query::GetBidHistory { item }
                        | Query::GetMaxBid { item } => {
                            assert!(item.0 < r.items)
                        }
                        Query::GetUserInfo { user }
                        | Query::AuthUser { user }
                        | Query::AboutMe { user } => {
                            assert!(user.0 < r.users)
                        }
                        Query::SearchItemsByCategory { category, .. } => {
                            assert!(category.0 < r.categories)
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn response_scales_with_db_bytes() {
        let p = InteractionProfile::of(Interaction::SearchItemsInCategory);
        assert!(p.response_bytes(4_000) > p.response_bytes(100));
        let form = InteractionProfile::of(Interaction::Home);
        assert_eq!(form.response_bytes(1_000), form.static_html_bytes);
    }

    #[test]
    fn script_names_unique_enough() {
        use std::collections::HashSet;
        let names: HashSet<_> = Interaction::ALL.iter().map(|i| i.script_name()).collect();
        assert!(names.len() >= 22); // BrowseCategories shares a script with ?region
    }
}
