//! Storage-engine mechanics: pages, the buffer pool and the query cache.
//!
//! The MySQL tier's disk behaviour in the paper (low, bursty read traffic
//! that decays as the run warms up; write traffic proportional to bid
//! activity) is a direct consequence of InnoDB's buffer pool and MySQL's
//! query cache. Both are modelled here at page granularity.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// InnoDB default page size.
pub const PAGE_BYTES: u64 = 16 * 1024;

/// Identifies a table within the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TableId {
    /// `users`
    Users,
    /// `items`
    Items,
    /// `bids`
    Bids,
    /// `comments`
    Comments,
    /// `buy_now`
    BuyNow,
    /// `categories`
    Categories,
    /// `regions`
    Regions,
}

impl TableId {
    /// All tables, for iteration.
    pub const ALL: [TableId; 7] = [
        TableId::Users,
        TableId::Items,
        TableId::Bids,
        TableId::Comments,
        TableId::BuyNow,
        TableId::Categories,
        TableId::Regions,
    ];
}

/// A page address: table + page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageRef {
    /// Owning table.
    pub table: TableId,
    /// Page number within the table.
    pub page: u64,
}

/// Map a row's byte offset to its page.
pub fn page_of(row_index: u64, row_bytes: u64) -> u64 {
    row_index * row_bytes / PAGE_BYTES
}

/// Outcome of a buffer-pool access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Page was resident.
    Hit,
    /// Page had to be read from disk (and possibly evicted a clean page).
    Miss,
    /// Page had to be read from disk and the evicted victim was dirty,
    /// forcing a write-back first.
    MissDirtyEvict,
}

/// A page-granularity LRU buffer pool with dirty-page tracking.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: usize,
    /// page → dirty flag
    resident: HashMap<PageRef, bool>,
    /// LRU order, most recent at the back. May contain stale entries;
    /// `pending` counts occurrences so only a page's *last* entry is
    /// authoritative.
    lru: VecDeque<PageRef>,
    /// Occurrences of each page currently in `lru`.
    pending: HashMap<PageRef, u32>,
    hits: u64,
    misses: u64,
    dirty_evictions: u64,
}

impl BufferPool {
    /// Pool holding `capacity_bytes` of pages (min one page).
    pub fn new(capacity_bytes: u64) -> Self {
        let capacity_pages = (capacity_bytes / PAGE_BYTES).max(1) as usize;
        BufferPool {
            capacity_pages,
            resident: HashMap::with_capacity(capacity_pages),
            lru: VecDeque::with_capacity(capacity_pages),
            pending: HashMap::with_capacity(capacity_pages),
            hits: 0,
            misses: 0,
            dirty_evictions: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.len() as u64 * PAGE_BYTES
    }

    /// Access a page; `write` marks it dirty. Returns what happened.
    pub fn access(&mut self, page: PageRef, write: bool) -> Access {
        match self.resident.entry(page) {
            Entry::Occupied(mut e) => {
                if write {
                    *e.get_mut() = true;
                }
                self.hits += 1;
                self.touch(page);
                Access::Hit
            }
            Entry::Vacant(e) => {
                e.insert(write);
                self.misses += 1;
                self.touch(page);
                let mut dirty_evicted = false;
                while self.resident.len() > self.capacity_pages {
                    if let Some(victim_dirty) = self.evict_lru() {
                        if victim_dirty {
                            dirty_evicted = true;
                            self.dirty_evictions += 1;
                        }
                    } else {
                        break;
                    }
                }
                if dirty_evicted {
                    Access::MissDirtyEvict
                } else {
                    Access::Miss
                }
            }
        }
    }

    /// Hit ratio so far (0 when no accesses).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// (hits, misses, dirty evictions)
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.dirty_evictions)
    }

    fn touch(&mut self, page: PageRef) {
        self.lru.push_back(page);
        *self.pending.entry(page).or_insert(0) += 1;
        // Compact the LRU deque when stale entries dominate: keep only
        // the last occurrence of each resident page.
        if self.lru.len() > self.capacity_pages.saturating_mul(4).max(64) {
            let resident = &self.resident;
            let mut last = HashMap::with_capacity(resident.len());
            for (i, p) in self.lru.iter().enumerate() {
                if resident.contains_key(p) {
                    last.insert(*p, i);
                }
            }
            let mut fresh: Vec<(usize, PageRef)> = last.into_iter().map(|(p, i)| (i, p)).collect();
            fresh.sort_unstable_by_key(|(i, _)| *i);
            self.lru = fresh.iter().map(|&(_, p)| p).collect();
            self.pending = fresh.iter().map(|&(_, p)| (p, 1)).collect();
        }
    }

    /// Evict the least-recently-used resident page. Returns the victim's
    /// dirty flag, or `None` if nothing is evictable.
    fn evict_lru(&mut self) -> Option<bool> {
        while let Some(candidate) = self.lru.pop_front() {
            let stale = match self.pending.get_mut(&candidate) {
                Some(n) => {
                    *n -= 1;
                    let stale = *n > 0; // fresher occurrence exists later
                    if *n == 0 {
                        self.pending.remove(&candidate);
                    }
                    stale
                }
                None => true,
            };
            if stale {
                continue;
            }
            if let Some(dirty) = self.resident.remove(&candidate) {
                return Some(dirty);
            }
        }
        None
    }
}

/// A MySQL-style query cache: SELECT results keyed by query identity,
/// invalidated wholesale per table on any write to that table.
#[derive(Debug)]
pub struct QueryCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// key → (result bytes, table versions at insert)
    entries: HashMap<u64, (u64, Vec<(TableId, u64)>)>,
    versions: HashMap<TableId, u64>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// A cache bounded at `capacity_bytes` of result data.
    pub fn new(capacity_bytes: u64) -> Self {
        QueryCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            versions: TableId::ALL.iter().map(|&t| (t, 0)).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a SELECT by key; returns the cached result size if fresh.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        let fresh = match self.entries.get(&key) {
            Some((bytes, deps)) => {
                if deps.iter().all(|(t, v)| self.versions[t] == *v) {
                    Some(*bytes)
                } else {
                    None
                }
            }
            None => None,
        };
        match fresh {
            Some(bytes) => {
                self.hits += 1;
                Some(bytes)
            }
            None => {
                if let Some((bytes, _)) = self.entries.remove(&key) {
                    self.used_bytes -= bytes;
                }
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a SELECT result of `bytes` depending on `tables`.
    pub fn insert(&mut self, key: u64, bytes: u64, tables: &[TableId]) {
        if bytes > self.capacity_bytes {
            return;
        }
        // Random-ish eviction: drop arbitrary entries until it fits.
        while self.used_bytes + bytes > self.capacity_bytes {
            let Some((&victim, _)) = self.entries.iter().next() else {
                break;
            };
            if let Some((b, _)) = self.entries.remove(&victim) {
                self.used_bytes -= b;
            }
        }
        let deps = tables.iter().map(|&t| (t, self.versions[&t])).collect();
        if let Some((old, _)) = self.entries.insert(key, (bytes, deps)) {
            self.used_bytes -= old;
        }
        self.used_bytes += bytes;
    }

    /// Invalidate every cached result that touched `table`.
    pub fn invalidate(&mut self, table: TableId) {
        // Every table is pre-registered at construction; `or_insert`
        // keeps this total without a panicking lookup.
        *self.versions.entry(table).or_insert(0) += 1;
    }

    /// Bytes of cached results (for memory accounting).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// (hits, misses)
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pref(page: u64) -> PageRef {
        PageRef {
            table: TableId::Items,
            page,
        }
    }

    #[test]
    fn page_math() {
        assert_eq!(page_of(0, 160), 0);
        assert_eq!(page_of(102, 160), 0); // 102*160 = 16320 < 16384
        assert_eq!(page_of(103, 160), 1);
    }

    #[test]
    fn pool_hit_after_miss() {
        let mut bp = BufferPool::new(10 * PAGE_BYTES);
        assert_eq!(bp.access(pref(1), false), Access::Miss);
        assert_eq!(bp.access(pref(1), false), Access::Hit);
        assert_eq!(bp.stats(), (1, 1, 0));
        assert_eq!(bp.resident_pages(), 1);
        assert!((bp.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pool_evicts_lru() {
        let mut bp = BufferPool::new(2 * PAGE_BYTES);
        bp.access(pref(1), false);
        bp.access(pref(2), false);
        bp.access(pref(1), false); // 1 is now MRU
        bp.access(pref(3), false); // evicts 2
        assert_eq!(bp.resident_pages(), 2);
        assert_eq!(bp.access(pref(1), false), Access::Hit);
        assert_eq!(bp.access(pref(2), false), Access::Miss);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut bp = BufferPool::new(PAGE_BYTES); // 1 page
        bp.access(pref(1), true); // dirty
        let a = bp.access(pref(2), false); // evicts dirty 1
        assert_eq!(a, Access::MissDirtyEvict);
        assert_eq!(bp.stats().2, 1);
    }

    #[test]
    fn pool_capacity_respected_under_churn() {
        let mut bp = BufferPool::new(8 * PAGE_BYTES);
        for i in 0..10_000u64 {
            // Hot set of 4 pages interleaved with a cold scan of 50.
            let page = if i % 2 == 0 { i % 4 } else { 100 + i % 50 };
            bp.access(pref(page), i % 3 == 0);
            assert!(bp.resident_pages() <= 8);
        }
        let (h, m, _) = bp.stats();
        assert_eq!(h + m, 10_000);
        assert!(h > 0 && m > 0, "hits {h} misses {m}");
    }

    #[test]
    fn query_cache_roundtrip_and_invalidation() {
        let mut qc = QueryCache::new(1 << 20);
        assert_eq!(qc.lookup(42), None);
        qc.insert(42, 1000, &[TableId::Items]);
        assert_eq!(qc.lookup(42), Some(1000));
        qc.invalidate(TableId::Items);
        assert_eq!(qc.lookup(42), None);
        assert_eq!(qc.stats(), (1, 2));
    }

    #[test]
    fn query_cache_invalidation_is_per_table() {
        let mut qc = QueryCache::new(1 << 20);
        qc.insert(1, 100, &[TableId::Items]);
        qc.insert(2, 200, &[TableId::Users]);
        qc.invalidate(TableId::Items);
        assert_eq!(qc.lookup(1), None);
        assert_eq!(qc.lookup(2), Some(200));
    }

    #[test]
    fn query_cache_respects_capacity() {
        let mut qc = QueryCache::new(1000);
        qc.insert(1, 600, &[TableId::Items]);
        qc.insert(2, 600, &[TableId::Items]); // evicts 1 (or refuses)
        assert!(qc.used_bytes() <= 1000);
        // Oversized entries are refused outright.
        qc.insert(3, 5000, &[TableId::Items]);
        assert!(qc.used_bytes() <= 1000);
        assert_eq!(qc.lookup(3), None);
    }

    #[test]
    fn stale_entry_cleanup_on_lookup() {
        let mut qc = QueryCache::new(1 << 20);
        qc.insert(9, 300, &[TableId::Bids]);
        qc.invalidate(TableId::Bids);
        assert_eq!(qc.lookup(9), None);
        // The stale bytes were reclaimed.
        assert_eq!(qc.used_bytes(), 0);
    }
}
