//! # cloudchar-rubis
//!
//! A faithful model of the RUBiS auction-site benchmark — the workload
//! the paper drives its testbed with. The crate provides:
//!
//! * [`schema`] — the eBay-like table schema and synthetic population
//!   generator;
//! * [`storage`] — InnoDB-style buffer pool and MySQL-style query cache;
//! * [`db`] — the relational engine and the [`db::MySqlServer`] process
//!   model producing CPU + disk work per query;
//! * [`interactions`] — the 23 page interactions with calibrated
//!   resource profiles;
//! * [`transition`] — the browsing and bidding Markov mixes;
//! * [`client`] — the closed-population client emulator (1000 clients,
//!   7 s think time in the paper);
//! * [`cohort`] — the same population as parallel columns, for
//!   100k–1M-client runs (the per-object path stays as its test
//!   oracle);
//! * [`webserver`] — the Apache prefork + PHP tier with worker-pool
//!   dynamics that generate the paper's RAM "jumps";
//! * [`wire`] — typed client↔tier message envelopes for sharded runs.
//!
//! The crate is engine-agnostic: all models are passive state machines
//! driven by `cloudchar-core`'s orchestrator, so the same application
//! runs unchanged on virtualized and non-virtualized deployments.

#![warn(missing_docs)]

pub mod client;
pub mod cohort;
pub mod db;
pub mod interactions;
pub mod schema;
pub mod storage;
pub mod transition;
pub mod webserver;
pub mod wire;

pub use client::{ClientPopulation, RetryDecision, RetryPolicy, Session, WorkloadMix};
pub use cohort::ClientCohort;
pub use db::{Database, DbWork, MySqlConfig, MySqlServer, Query};
pub use interactions::{queries_for, EntityRanges, Interaction, InteractionProfile};
pub use schema::{DbScale, ItemId, UserId};
pub use transition::{Mix, NextAction, TransitionTable};
pub use webserver::{WebAppServer, WebConfig};
pub use wire::{CompletionEnvelope, Outcome, QueryEnvelope, RequestEnvelope};
