//! RUBiS client transition tables.
//!
//! The benchmark drives each emulated client through a Markov chain over
//! the interaction set. Two canonical mixes exist:
//!
//! * **browsing** — read-only navigation (browse, search, view);
//! * **bidding**  — the default mix with 15% read-write interactions
//!   (bids, buy-nows, comments, registrations).
//!
//! The official distribution ships the matrices as spreadsheet files;
//! the tables below are re-derived to preserve the published semantics
//! (state reachability, read-only vs 15%-write ratio, Back/End usage)
//! rather than transcribed cell-for-cell. DESIGN.md records this
//! substitution.

use crate::interactions::Interaction;
use cloudchar_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// Where a transition sends the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextAction {
    /// Go to an interaction.
    Goto(Interaction),
    /// Return to the previous page (browser Back button).
    Back,
    /// End the session.
    End,
}

/// Which canonical mix a table implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mix {
    /// Read-only browsing.
    Browsing,
    /// Default bidding mix (~15% writes).
    Bidding,
}

/// A Markov transition table over the interaction set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionTable {
    /// Which mix this table encodes.
    pub mix: Mix,
    /// `rows[i]` lists `(action, probability)` out of interaction `i`
    /// (indexed by [`Interaction::index`]). Probabilities sum to 1.
    rows: Vec<Vec<(NextAction, f64)>>,
}

impl TransitionTable {
    /// The session entry page.
    pub fn entry() -> Interaction {
        Interaction::Home
    }

    /// Sample the next action from state `from`.
    pub fn next(&self, from: Interaction, rng: &mut SimRng) -> NextAction {
        let row = &self.rows[from.index()];
        let mut target = rng.f64();
        for &(action, p) in row {
            if target < p {
                return action;
            }
            target -= p;
        }
        row.last().map(|&(a, _)| a).unwrap_or(NextAction::End)
    }

    /// Validate: every interaction has a row, probabilities sum to ~1,
    /// and (for the browsing mix) no write interaction is reachable.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows.len() != Interaction::ALL.len() {
            return Err(format!(
                "expected {} rows, got {}",
                Interaction::ALL.len(),
                self.rows.len()
            ));
        }
        for (idx, row) in self.rows.iter().enumerate() {
            let total: f64 = row.iter().map(|(_, p)| p).sum();
            if (total - 1.0).abs() > 1e-9 {
                return Err(format!(
                    "row {idx} ({:?}) sums to {total}",
                    Interaction::ALL[idx]
                ));
            }
            if row.iter().any(|(_, p)| *p < 0.0) {
                return Err(format!("row {idx} has a negative probability"));
            }
            if self.mix == Mix::Browsing {
                for (action, p) in row {
                    if let NextAction::Goto(i) = action {
                        if i.is_write() && *p > 0.0 {
                            return Err(format!("browsing mix reaches write interaction {i:?}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The read-only browsing mix.
    pub fn browsing() -> TransitionTable {
        use Interaction::*;
        use NextAction::*;
        let mut rows = vec![Vec::new(); Interaction::ALL.len()];
        let mut set = |from: Interaction, to: &[(NextAction, f64)]| {
            rows[from.index()] = to.to_vec();
        };
        set(Home, &[(Goto(Browse), 0.95), (End, 0.05)]);
        set(
            Browse,
            &[
                (Goto(BrowseCategories), 0.65),
                (Goto(BrowseRegions), 0.30),
                (End, 0.05),
            ],
        );
        set(
            BrowseCategories,
            &[
                (Goto(SearchItemsInCategory), 0.90),
                (Back, 0.06),
                (End, 0.04),
            ],
        );
        set(
            SearchItemsInCategory,
            &[
                (Goto(ViewItem), 0.50),
                (Goto(SearchItemsInCategory), 0.28), // next page
                (Back, 0.14),
                (End, 0.08),
            ],
        );
        set(
            BrowseRegions,
            &[
                (Goto(BrowseCategoriesInRegion), 0.90),
                (Back, 0.06),
                (End, 0.04),
            ],
        );
        set(
            BrowseCategoriesInRegion,
            &[(Goto(SearchItemsInRegion), 0.90), (Back, 0.06), (End, 0.04)],
        );
        set(
            SearchItemsInRegion,
            &[
                (Goto(ViewItem), 0.48),
                (Goto(SearchItemsInRegion), 0.28),
                (Back, 0.16),
                (End, 0.08),
            ],
        );
        set(
            ViewItem,
            &[
                (Goto(ViewUserInfo), 0.24),
                (Goto(ViewBidHistory), 0.22),
                (Back, 0.46),
                (End, 0.08),
            ],
        );
        set(ViewUserInfo, &[(Back, 0.92), (End, 0.08)]);
        set(ViewBidHistory, &[(Back, 0.92), (End, 0.08)]);
        // Unreachable states in this mix still need well-formed rows.
        for i in [
            Register,
            RegisterUser,
            BuyNowAuth,
            BuyNow,
            StoreBuyNow,
            PutBidAuth,
            PutBid,
            StoreBid,
            PutCommentAuth,
            PutComment,
            StoreComment,
            AboutMeAuth,
            AboutMe,
        ] {
            rows[i.index()] = vec![(End, 1.0)];
        }
        let t = TransitionTable {
            mix: Mix::Browsing,
            rows,
        };
        debug_assert!(t.validate().is_ok());
        t
    }

    /// The default bidding mix (~15% read-write interactions at steady
    /// state).
    pub fn bidding() -> TransitionTable {
        use Interaction::*;
        use NextAction::*;
        let mut rows = vec![Vec::new(); Interaction::ALL.len()];
        let mut set = |from: Interaction, to: &[(NextAction, f64)]| {
            rows[from.index()] = to.to_vec();
        };
        set(
            Home,
            &[
                (Goto(Browse), 0.75),
                (Goto(Register), 0.06),
                (Goto(AboutMeAuth), 0.14),
                (End, 0.05),
            ],
        );
        set(
            Register,
            &[(Goto(RegisterUser), 0.85), (Back, 0.10), (End, 0.05)],
        );
        set(RegisterUser, &[(Goto(Browse), 0.80), (End, 0.20)]);
        set(
            Browse,
            &[
                (Goto(BrowseCategories), 0.65),
                (Goto(BrowseRegions), 0.30),
                (End, 0.05),
            ],
        );
        set(
            BrowseCategories,
            &[
                (Goto(SearchItemsInCategory), 0.90),
                (Back, 0.06),
                (End, 0.04),
            ],
        );
        set(
            SearchItemsInCategory,
            &[
                (Goto(ViewItem), 0.55),
                (Goto(SearchItemsInCategory), 0.22),
                (Back, 0.15),
                (End, 0.08),
            ],
        );
        set(
            BrowseRegions,
            &[
                (Goto(BrowseCategoriesInRegion), 0.90),
                (Back, 0.06),
                (End, 0.04),
            ],
        );
        set(
            BrowseCategoriesInRegion,
            &[(Goto(SearchItemsInRegion), 0.90), (Back, 0.06), (End, 0.04)],
        );
        set(
            SearchItemsInRegion,
            &[
                (Goto(ViewItem), 0.52),
                (Goto(SearchItemsInRegion), 0.22),
                (Back, 0.18),
                (End, 0.08),
            ],
        );
        set(
            ViewItem,
            &[
                (Goto(PutBidAuth), 0.28),
                (Goto(BuyNowAuth), 0.07),
                (Goto(ViewUserInfo), 0.12),
                (Goto(ViewBidHistory), 0.12),
                (Back, 0.33),
                (End, 0.08),
            ],
        );
        set(
            ViewUserInfo,
            &[(Goto(PutCommentAuth), 0.16), (Back, 0.76), (End, 0.08)],
        );
        set(ViewBidHistory, &[(Back, 0.92), (End, 0.08)]);
        set(
            BuyNowAuth,
            &[(Goto(BuyNow), 0.88), (Back, 0.08), (End, 0.04)],
        );
        set(
            BuyNow,
            &[(Goto(StoreBuyNow), 0.70), (Back, 0.24), (End, 0.06)],
        );
        set(
            StoreBuyNow,
            &[(Goto(Browse), 0.60), (Back, 0.20), (End, 0.20)],
        );
        set(
            PutBidAuth,
            &[(Goto(PutBid), 0.88), (Back, 0.08), (End, 0.04)],
        );
        set(PutBid, &[(Goto(StoreBid), 0.75), (Back, 0.19), (End, 0.06)]);
        set(StoreBid, &[(Back, 0.75), (Goto(Browse), 0.15), (End, 0.10)]);
        set(
            PutCommentAuth,
            &[(Goto(PutComment), 0.88), (Back, 0.08), (End, 0.04)],
        );
        set(
            PutComment,
            &[(Goto(StoreComment), 0.80), (Back, 0.14), (End, 0.06)],
        );
        set(
            StoreComment,
            &[(Back, 0.70), (Goto(Browse), 0.15), (End, 0.15)],
        );
        set(
            AboutMeAuth,
            &[(Goto(AboutMe), 0.88), (Back, 0.08), (End, 0.04)],
        );
        set(AboutMe, &[(Goto(Browse), 0.55), (Back, 0.30), (End, 0.15)]);
        let t = TransitionTable {
            mix: Mix::Bidding,
            rows,
        };
        debug_assert!(t.validate().is_ok());
        t
    }

    /// Table for a mix.
    pub fn for_mix(mix: Mix) -> TransitionTable {
        match mix {
            Mix::Browsing => TransitionTable::browsing(),
            Mix::Bidding => TransitionTable::bidding(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn both_tables_validate() {
        TransitionTable::browsing().validate().unwrap();
        TransitionTable::bidding().validate().unwrap();
    }

    /// Walk a table for many steps with a Back stack, returning visit
    /// frequencies.
    fn steady_state(table: &TransitionTable, steps: usize, seed: u64) -> HashMap<Interaction, u64> {
        let mut rng = SimRng::new(seed);
        let mut counts: HashMap<Interaction, u64> = HashMap::new();
        let mut current = TransitionTable::entry();
        let mut history = vec![current];
        for _ in 0..steps {
            *counts.entry(current).or_default() += 1;
            match table.next(current, &mut rng) {
                NextAction::Goto(next) => {
                    history.push(next);
                    current = next;
                }
                NextAction::Back => {
                    history.pop();
                    current = *history.last().unwrap_or(&TransitionTable::entry());
                }
                NextAction::End => {
                    current = TransitionTable::entry();
                    history = vec![current];
                }
            }
        }
        counts
    }

    #[test]
    fn browsing_mix_never_writes() {
        let counts = steady_state(&TransitionTable::browsing(), 100_000, 1);
        for (i, n) in &counts {
            assert!(!i.is_write(), "browsing reached write {i:?} {n} times");
        }
        // The core browse loop is actually exercised.
        assert!(counts[&Interaction::SearchItemsInCategory] > 10_000);
        assert!(counts[&Interaction::ViewItem] > 10_000);
    }

    #[test]
    fn bidding_mix_write_fraction_near_15_percent() {
        let counts = steady_state(&TransitionTable::bidding(), 200_000, 2);
        let total: u64 = counts.values().sum();
        let writes: u64 = counts
            .iter()
            .filter(|(i, _)| i.is_write())
            .map(|(_, n)| n)
            .sum();
        let frac = writes as f64 / total as f64;
        assert!(
            (0.08..0.22).contains(&frac),
            "write fraction {frac} outside RUBiS bidding band"
        );
    }

    #[test]
    fn bidding_reaches_all_major_states() {
        let counts = steady_state(&TransitionTable::bidding(), 300_000, 3);
        for i in [
            Interaction::StoreBid,
            Interaction::StoreBuyNow,
            Interaction::StoreComment,
            Interaction::RegisterUser,
            Interaction::AboutMe,
            Interaction::ViewBidHistory,
        ] {
            assert!(
                counts.get(&i).copied().unwrap_or(0) > 0,
                "{i:?} unreachable"
            );
        }
    }

    #[test]
    fn next_is_deterministic_given_seed() {
        let t = TransitionTable::bidding();
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..1000 {
            assert_eq!(
                t.next(Interaction::ViewItem, &mut a),
                t.next(Interaction::ViewItem, &mut b)
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let t = TransitionTable::browsing();
        let s = serde_json::to_string(&t).unwrap();
        let back: TransitionTable = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}
