//! Typed cross-tier message envelopes.
//!
//! When the simulation is sharded (one shard per physical host plus a
//! client/generator shard), client→server and tier→tier traffic travels
//! over `simcore::shard` channels. These envelopes are the payloads:
//! plain data, no handles into another shard's state, so a message can
//! cross a thread boundary without breaking shard ownership (lint rule
//! CL013). Every envelope carries the session id so the generator can
//! correlate completions with the request it issued.

use crate::interactions::Interaction;

/// A client request dispatched from the generator shard to a serving
/// pod: one page interaction on behalf of one emulated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestEnvelope {
    /// Global session index in the generator's cohort.
    pub session: u32,
    /// Session epoch at issue time; a completion whose epoch no longer
    /// matches is stale (the session already timed out and moved on).
    pub epoch: u64,
    /// The page being requested.
    pub interaction: Interaction,
}

/// Terminal status of one request, from the serving pod's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The page rendered and was sent back to the client.
    Ok,
    /// The server dropped or aborted the request (overload, fault).
    Failed,
}

/// A completion flowing back from a serving pod to the generator shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionEnvelope {
    /// Session the response belongs to.
    pub session: u32,
    /// Epoch copied from the originating [`RequestEnvelope`].
    pub epoch: u64,
    /// The interaction that completed.
    pub interaction: Interaction,
    /// How the request ended.
    pub outcome: Outcome,
}

/// A tier→tier database query hop: what the web tier hands the DB tier
/// when the two run on different shards. The serving pod keeps its own
/// request bookkeeping; this carries only what the DB needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEnvelope {
    /// Pod-local request slot awaiting this query's result.
    pub request: u64,
    /// The interaction whose query plan is being executed.
    pub interaction: Interaction,
    /// Index of the query within the interaction's plan.
    pub step: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_are_plain_copyable_data() {
        let req = RequestEnvelope {
            session: 7,
            epoch: 3,
            interaction: Interaction::ViewItem,
        };
        let done = CompletionEnvelope {
            session: req.session,
            epoch: req.epoch,
            interaction: req.interaction,
            outcome: Outcome::Ok,
        };
        let copy = done; // Copy: no ownership entanglement across shards
        assert_eq!(done, copy);
        assert_eq!(copy.session, 7);
        assert!(matches!(copy.outcome, Outcome::Ok));
        let q = QueryEnvelope {
            request: 1,
            interaction: Interaction::Home,
            step: 0,
        };
        assert_eq!(q, q);
    }
}
