//! The embedded relational engine behind the MySQL tier.
//!
//! [`Database`] stores the RUBiS tables with secondary indexes and
//! executes the structured query set the benchmark's PHP scripts issue.
//! Execution returns the *physical footprint* of the query — pages read
//! and written, CPU cycles, result bytes — which [`MySqlServer`] passes
//! through the buffer pool and query cache to produce actual disk I/O,
//! exactly the causal chain that shapes the paper's MySQL-tier panels.

use crate::schema::{
    generate, Bid, BuyNow, CategoryId, Comment, DbScale, Item, ItemId, RegionId, User, UserId,
};
use crate::storage::{page_of, Access, BufferPool, PageRef, QueryCache, TableId, PAGE_BYTES};
use cloudchar_hw::{IoKind, IoRequest};
use cloudchar_simcore::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Items shown per search result page (RUBiS default).
pub const ITEMS_PER_PAGE: usize = 20;

/// Offset separating index pages from data pages within a table's page
/// space.
const INDEX_PAGE_BASE: u64 = 1 << 40;

/// The structured query set issued by the RUBiS PHP scripts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// `SELECT * FROM categories`
    SelectCategories,
    /// `SELECT * FROM regions`
    SelectRegions,
    /// Items in a category, paginated.
    SearchItemsByCategory {
        /// Category browsed.
        category: CategoryId,
        /// Result page number.
        page: u32,
    },
    /// Items in a category restricted to sellers of a region.
    SearchItemsByRegion {
        /// Category browsed.
        category: CategoryId,
        /// Sellers' region.
        region: RegionId,
        /// Result page number.
        page: u32,
    },
    /// One item plus its seller's summary.
    GetItem {
        /// Item viewed.
        item: ItemId,
    },
    /// A user's profile plus the comments about them.
    GetUserInfo {
        /// Profile owner.
        user: UserId,
    },
    /// Full bid history of an item with bidder names.
    GetBidHistory {
        /// Item.
        item: ItemId,
    },
    /// Current max bid of an item (PutBid form).
    GetMaxBid {
        /// Item.
        item: ItemId,
    },
    /// Login check.
    AuthUser {
        /// User logging in.
        user: UserId,
    },
    /// Everything about me: my bids, items, buy-nows, comments.
    AboutMe {
        /// The authenticated user.
        user: UserId,
    },
    /// Register a new user in a region.
    RegisterUser {
        /// Home region.
        region: RegionId,
    },
    /// Record a bid (reads item, inserts bid, updates item counters).
    StoreBid {
        /// Bidder.
        user: UserId,
        /// Item.
        item: ItemId,
        /// Increment over current max, cents.
        increment: i64,
    },
    /// Record a comment and update the recipient's rating.
    StoreComment {
        /// Author.
        from: UserId,
        /// Recipient.
        to: UserId,
        /// Item concerned.
        item: ItemId,
    },
    /// Record a buy-now purchase (updates item quantity).
    StoreBuyNow {
        /// Buyer.
        buyer: UserId,
        /// Item.
        item: ItemId,
    },
}

impl Query {
    /// Whether the query modifies data.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Query::RegisterUser { .. }
                | Query::StoreBid { .. }
                | Query::StoreComment { .. }
                | Query::StoreBuyNow { .. }
        )
    }

    /// A stable cache key for SELECTs (writes return `None`).
    ///
    /// Search pages and AboutMe are **not cacheable**: the real RUBiS
    /// SQL filters on `end_date > NOW()`, and MySQL's query cache
    /// refuses statements with non-deterministic functions.
    pub fn cache_key(&self) -> Option<u64> {
        if self.is_write() {
            return None;
        }
        if matches!(
            self,
            Query::SearchItemsByCategory { .. }
                | Query::SearchItemsByRegion { .. }
                | Query::AboutMe { .. }
        ) {
            return None;
        }
        // Cheap structural hash; collision risk is irrelevant for a
        // cache model.
        let (tag, a, b, c): (u64, u64, u64, u64) = match *self {
            Query::SelectCategories => (1, 0, 0, 0),
            Query::SelectRegions => (2, 0, 0, 0),
            Query::SearchItemsByCategory { category, page } => {
                (3, u64::from(category.0), u64::from(page), 0)
            }
            Query::SearchItemsByRegion {
                category,
                region,
                page,
            } => (
                4,
                u64::from(category.0),
                u64::from(region.0),
                u64::from(page),
            ),
            Query::GetItem { item } => (5, u64::from(item.0), 0, 0),
            Query::GetUserInfo { user } => (6, u64::from(user.0), 0, 0),
            Query::GetBidHistory { item } => (7, u64::from(item.0), 0, 0),
            Query::GetMaxBid { item } => (8, u64::from(item.0), 0, 0),
            Query::AuthUser { user } => (9, u64::from(user.0), 0, 0),
            Query::AboutMe { user } => (10, u64::from(user.0), 0, 0),
            _ => unreachable!("writes handled above"),
        };
        let mut h = tag;
        for v in [a, b, c] {
            h = h
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(13)
                .wrapping_add(v);
        }
        Some(h)
    }
}

/// Physical footprint of one executed query.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Rows produced/affected.
    pub rows: u64,
    /// Result set size in bytes (wire format).
    pub result_bytes: u64,
    /// CPU cycles of executor work.
    pub cpu_cycles: f64,
    /// Data/index pages read (logical; buffer pool decides disk I/O).
    pub pages: Vec<PageRef>,
    /// Pages dirtied by the query.
    pub dirty_pages: Vec<PageRef>,
    /// Tables the query depends on (for query-cache invalidation).
    pub tables: Vec<TableId>,
}

/// Average row footprints used for page math (bytes).
fn row_bytes(table: TableId) -> u64 {
    match table {
        TableId::Users => User::ROW_BYTES,
        TableId::Items => 480,
        TableId::Bids => Bid::ROW_BYTES,
        TableId::Comments => 360,
        TableId::BuyNow => BuyNow::ROW_BYTES,
        TableId::Categories | TableId::Regions => 64,
    }
}

/// Cost-model constants (cycles). Derived so the MySQL tier lands in the
/// paper's reported range at 1000 clients.
mod cost {
    /// Parse + plan + protocol per query.
    pub const BASE: f64 = 65_000.0;
    /// Per row examined.
    pub const PER_ROW: f64 = 2_200.0;
    /// Per logical page touched.
    pub const PER_PAGE: f64 = 1_100.0;
    /// Extra for writes (row locking, undo, change buffering).
    pub const WRITE_EXTRA: f64 = 50_000.0;
}

/// The in-memory RUBiS database with secondary indexes.
pub struct Database {
    scale: DbScale,
    users: Vec<User>,
    items: Vec<Item>,
    bids: Vec<Bid>,
    comments: Vec<Comment>,
    buy_nows: Vec<BuyNow>,
    items_by_category: Vec<Vec<ItemId>>,
    bids_by_item: HashMap<ItemId, Vec<u32>>,
    comments_by_to: HashMap<UserId, Vec<u32>>,
    items_by_seller: HashMap<UserId, Vec<ItemId>>,
    bids_by_user: HashMap<UserId, Vec<u32>>,
    buy_nows_by_buyer: HashMap<UserId, Vec<u32>>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("users", &self.users.len())
            .field("items", &self.items.len())
            .field("bids", &self.bids.len())
            .field("comments", &self.comments.len())
            .field("buy_nows", &self.buy_nows.len())
            .finish()
    }
}

impl Database {
    /// Generate and index a population.
    pub fn generate(scale: DbScale, rng: &mut SimRng) -> Self {
        let (users, items, bids, comments) = generate(scale, rng);
        let mut db = Database {
            scale,
            users,
            items,
            bids: Vec::new(),
            comments: Vec::new(),
            buy_nows: Vec::new(),
            items_by_category: vec![Vec::new(); usize::from(scale.categories)],
            bids_by_item: HashMap::new(),
            comments_by_to: HashMap::new(),
            items_by_seller: HashMap::new(),
            bids_by_user: HashMap::new(),
            buy_nows_by_buyer: HashMap::new(),
        };
        for item in &db.items {
            db.items_by_category[usize::from(item.category.0)].push(item.id);
            db.items_by_seller
                .entry(item.seller)
                .or_default()
                .push(item.id);
        }
        for bid in bids {
            db.index_bid(bid);
        }
        for comment in comments {
            db.index_comment(comment);
        }
        db
    }

    fn index_bid(&mut self, bid: Bid) {
        let idx = self.bids.len() as u32;
        self.bids_by_item.entry(bid.item).or_default().push(idx);
        self.bids_by_user.entry(bid.user).or_default().push(idx);
        self.bids.push(bid);
    }

    fn index_comment(&mut self, comment: Comment) {
        let idx = self.comments.len() as u32;
        self.comments_by_to.entry(comment.to).or_default().push(idx);
        self.comments.push(comment);
    }

    /// Population scale.
    pub fn scale(&self) -> DbScale {
        self.scale
    }

    /// Current table cardinalities, in [`TableId::ALL`] order.
    pub fn cardinalities(&self) -> [u64; 7] {
        [
            self.users.len() as u64,
            self.items.len() as u64,
            self.bids.len() as u64,
            self.comments.len() as u64,
            self.buy_nows.len() as u64,
            u64::from(self.scale.categories),
            u64::from(self.scale.regions),
        ]
    }

    /// A uniformly random existing item id.
    pub fn random_item(&self, rng: &mut SimRng) -> ItemId {
        ItemId(rng.below(self.items.len() as u64) as u32)
    }

    /// A uniformly random existing user id.
    pub fn random_user(&self, rng: &mut SimRng) -> UserId {
        UserId(rng.below(self.users.len() as u64) as u32)
    }

    /// A random category, skewed toward the hot low-numbered ones.
    pub fn random_category(&self, rng: &mut SimRng) -> CategoryId {
        let z = rng.f64_open();
        CategoryId(((z * z) * f64::from(self.scale.categories)) as u16)
    }

    /// A random region.
    pub fn random_region(&self, rng: &mut SimRng) -> RegionId {
        RegionId(rng.below(u64::from(self.scale.regions)) as u16)
    }

    fn data_page(table: TableId, row: u64) -> PageRef {
        PageRef {
            table,
            page: page_of(row, row_bytes(table)),
        }
    }

    /// B-tree descent pages for an index lookup: a hot root and a
    /// key-dependent leaf.
    fn index_pages(table: TableId, key: u64, out: &mut Vec<PageRef>) {
        out.push(PageRef {
            table,
            page: INDEX_PAGE_BASE,
        });
        out.push(PageRef {
            table,
            page: INDEX_PAGE_BASE + 1 + key % 512,
        });
    }

    /// Execute a query. `now_s` stamps inserted rows.
    pub fn execute(&mut self, q: Query, now_s: u32) -> QueryResult {
        let mut r = QueryResult::default();
        match q {
            Query::SelectCategories => {
                r.tables = vec![TableId::Categories];
                r.rows = u64::from(self.scale.categories);
                r.result_bytes = r.rows * 40;
                r.pages.push(PageRef {
                    table: TableId::Categories,
                    page: 0,
                });
            }
            Query::SelectRegions => {
                r.tables = vec![TableId::Regions];
                r.rows = u64::from(self.scale.regions);
                r.result_bytes = r.rows * 30;
                r.pages.push(PageRef {
                    table: TableId::Regions,
                    page: 0,
                });
            }
            Query::SearchItemsByCategory { category, page } => {
                r.tables = vec![TableId::Items];
                let cat = usize::from(category.0).min(self.items_by_category.len() - 1);
                let ids = &self.items_by_category[cat];
                let start = page as usize * ITEMS_PER_PAGE;
                let slice: Vec<ItemId> = ids
                    .iter()
                    .skip(start)
                    .take(ITEMS_PER_PAGE)
                    .copied()
                    .collect();
                Self::index_pages(TableId::Items, u64::from(category.0), &mut r.pages);
                for id in &slice {
                    r.pages
                        .push(Self::data_page(TableId::Items, u64::from(id.0)));
                }
                r.rows = slice.len() as u64;
                r.result_bytes = 120 + r.rows * 32;
            }
            Query::SearchItemsByRegion {
                category,
                region,
                page,
            } => {
                r.tables = vec![TableId::Items, TableId::Users];
                let cat = usize::from(category.0).min(self.items_by_category.len() - 1);
                let ids = &self.items_by_category[cat];
                // Join through sellers' region: scan the category slice,
                // probing each seller row.
                let mut matched = 0u64;
                let mut examined = 0u64;
                Self::index_pages(TableId::Items, u64::from(category.0), &mut r.pages);
                let skip = page as usize * ITEMS_PER_PAGE;
                for id in ids.iter() {
                    let item = &self.items[id.0 as usize];
                    examined += 1;
                    r.pages
                        .push(Self::data_page(TableId::Items, u64::from(id.0)));
                    r.pages
                        .push(Self::data_page(TableId::Users, u64::from(item.seller.0)));
                    if self.users[item.seller.0 as usize].region == region {
                        matched += 1;
                        if matched as usize >= skip + ITEMS_PER_PAGE {
                            break;
                        }
                    }
                    if examined >= 400 {
                        break; // LIMIT-bounded scan
                    }
                }
                r.rows = matched.min(ITEMS_PER_PAGE as u64);
                r.result_bytes = 120 + r.rows * 32;
                r.cpu_cycles += examined as f64 * cost::PER_ROW * 0.4;
            }
            Query::GetItem { item } => {
                r.tables = vec![TableId::Items, TableId::Users];
                let it = &self.items[item.0 as usize % self.items.len()];
                r.pages
                    .push(Self::data_page(TableId::Items, u64::from(it.id.0)));
                r.pages
                    .push(Self::data_page(TableId::Users, u64::from(it.seller.0)));
                r.rows = 2;
                r.result_bytes = 110 + u64::from(it.description_len) / 6;
            }
            Query::GetUserInfo { user } => {
                r.tables = vec![TableId::Users, TableId::Comments];
                let uid = user.0 as usize % self.users.len();
                r.pages.push(Self::data_page(TableId::Users, uid as u64));
                Self::index_pages(TableId::Comments, uid as u64, &mut r.pages);
                let n = self
                    .comments_by_to
                    .get(&UserId(uid as u32))
                    .map_or(0, |v| v.len());
                for &ci in self
                    .comments_by_to
                    .get(&UserId(uid as u32))
                    .into_iter()
                    .flatten()
                    .take(25)
                {
                    r.pages
                        .push(Self::data_page(TableId::Comments, u64::from(ci)));
                }
                r.rows = 1 + n.min(25) as u64;
                r.result_bytes = 80 + r.rows * 40;
            }
            Query::GetBidHistory { item } => {
                r.tables = vec![TableId::Bids, TableId::Users];
                let iid = ItemId(item.0 % self.items.len() as u32);
                Self::index_pages(TableId::Bids, u64::from(iid.0), &mut r.pages);
                let idxs: Vec<u32> = self
                    .bids_by_item
                    .get(&iid)
                    .into_iter()
                    .flatten()
                    .copied()
                    .collect();
                for &bi in &idxs {
                    r.pages.push(Self::data_page(TableId::Bids, u64::from(bi)));
                    let bidder = self.bids[bi as usize].user;
                    r.pages
                        .push(Self::data_page(TableId::Users, u64::from(bidder.0)));
                }
                r.rows = idxs.len() as u64;
                r.result_bytes = 70 + r.rows * 28;
            }
            Query::GetMaxBid { item } => {
                r.tables = vec![TableId::Items];
                let iid = item.0 as usize % self.items.len();
                r.pages.push(Self::data_page(TableId::Items, iid as u64));
                r.rows = 1;
                r.result_bytes = 40;
            }
            Query::AuthUser { user } => {
                r.tables = vec![TableId::Users];
                let uid = user.0 as usize % self.users.len();
                Self::index_pages(TableId::Users, uid as u64, &mut r.pages);
                r.pages.push(Self::data_page(TableId::Users, uid as u64));
                r.rows = 1;
                r.result_bytes = 50;
            }
            Query::AboutMe { user } => {
                r.tables = vec![
                    TableId::Users,
                    TableId::Bids,
                    TableId::Items,
                    TableId::BuyNow,
                    TableId::Comments,
                ];
                let uid = UserId(user.0 % self.users.len() as u32);
                r.pages
                    .push(Self::data_page(TableId::Users, u64::from(uid.0)));
                let mut rows = 1u64;
                for &bi in self.bids_by_user.get(&uid).into_iter().flatten().take(20) {
                    r.pages.push(Self::data_page(TableId::Bids, u64::from(bi)));
                    rows += 1;
                }
                for id in self
                    .items_by_seller
                    .get(&uid)
                    .into_iter()
                    .flatten()
                    .take(20)
                {
                    r.pages
                        .push(Self::data_page(TableId::Items, u64::from(id.0)));
                    rows += 1;
                }
                for &bn in self
                    .buy_nows_by_buyer
                    .get(&uid)
                    .into_iter()
                    .flatten()
                    .take(20)
                {
                    r.pages
                        .push(Self::data_page(TableId::BuyNow, u64::from(bn)));
                    rows += 1;
                }
                for &ci in self.comments_by_to.get(&uid).into_iter().flatten().take(20) {
                    r.pages
                        .push(Self::data_page(TableId::Comments, u64::from(ci)));
                    rows += 1;
                }
                r.rows = rows;
                r.result_bytes = 120 + rows * 35;
            }
            Query::RegisterUser { region } => {
                r.tables = vec![TableId::Users];
                let id = UserId(self.users.len() as u32);
                self.users.push(User {
                    id,
                    rating: 0,
                    balance: 0,
                    region,
                    items_sold: 0,
                });
                let page = Self::data_page(TableId::Users, u64::from(id.0));
                Self::index_pages(TableId::Users, u64::from(id.0), &mut r.pages);
                r.dirty_pages.push(page);
                r.rows = 1;
                r.result_bytes = 60;
            }
            Query::StoreBid {
                user,
                item,
                increment,
            } => {
                r.tables = vec![TableId::Bids, TableId::Items];
                let iid = (item.0 as usize) % self.items.len();
                let item_page = Self::data_page(TableId::Items, iid as u64);
                r.pages.push(item_page);
                let new_amount = {
                    let it = &mut self.items[iid];
                    let amount = it.max_bid.max(it.initial_price) + increment.max(1);
                    it.max_bid = amount;
                    it.nb_bids += 1;
                    amount
                };
                let bid = Bid {
                    user: UserId(user.0 % self.users.len() as u32),
                    item: ItemId(iid as u32),
                    qty: 1,
                    amount: new_amount,
                    date_s: now_s,
                };
                let bid_row = self.bids.len() as u64;
                self.index_bid(bid);
                Self::index_pages(TableId::Bids, iid as u64, &mut r.pages);
                r.dirty_pages.push(Self::data_page(TableId::Bids, bid_row));
                r.dirty_pages.push(item_page);
                r.rows = 2;
                r.result_bytes = 50;
            }
            Query::StoreComment { from, to, item } => {
                r.tables = vec![TableId::Comments, TableId::Users];
                let to = UserId(to.0 % self.users.len() as u32);
                let user_page = Self::data_page(TableId::Users, u64::from(to.0));
                r.pages.push(user_page);
                self.users[to.0 as usize].rating += 1;
                let comment = Comment {
                    from: UserId(from.0 % self.users.len() as u32),
                    to,
                    item: ItemId(item.0 % self.items.len() as u32),
                    rating: 1,
                    text_len: 200,
                };
                let row = self.comments.len() as u64;
                self.index_comment(comment);
                r.dirty_pages.push(Self::data_page(TableId::Comments, row));
                r.dirty_pages.push(user_page);
                r.rows = 2;
                r.result_bytes = 50;
            }
            Query::StoreBuyNow { buyer, item } => {
                r.tables = vec![TableId::BuyNow, TableId::Items];
                let iid = (item.0 as usize) % self.items.len();
                let item_page = Self::data_page(TableId::Items, iid as u64);
                r.pages.push(item_page);
                self.items[iid].quantity = self.items[iid].quantity.saturating_sub(1);
                let row = self.buy_nows.len() as u64;
                let buyer = UserId(buyer.0 % self.users.len() as u32);
                self.buy_nows.push(BuyNow {
                    buyer,
                    item: ItemId(iid as u32),
                    qty: 1,
                    date_s: now_s,
                });
                self.buy_nows_by_buyer
                    .entry(buyer)
                    .or_default()
                    .push(row as u32);
                r.dirty_pages.push(Self::data_page(TableId::BuyNow, row));
                r.dirty_pages.push(item_page);
                r.rows = 2;
                r.result_bytes = 50;
            }
        }
        r.cpu_cycles += cost::BASE
            + r.rows as f64 * cost::PER_ROW
            + (r.pages.len() + r.dirty_pages.len()) as f64 * cost::PER_PAGE
            + if q.is_write() { cost::WRITE_EXTRA } else { 0.0 };
        r
    }
}

/// Disk and CPU work produced by one query at the mysqld level.
#[derive(Debug, Clone, Default)]
pub struct DbWork {
    /// Executor + protocol CPU cycles.
    pub cpu_cycles: f64,
    /// Disk operations to issue (buffer-pool misses, write-back,
    /// transaction log).
    pub ios: Vec<IoRequest>,
    /// Result bytes returned to the application tier.
    pub response_bytes: u64,
    /// Rows produced/affected.
    pub rows: u64,
    /// Whether the query-cache satisfied the query outright.
    pub query_cache_hit: bool,
}

/// Configuration of the MySQL server model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MySqlConfig {
    /// InnoDB buffer pool size in bytes.
    pub buffer_pool_bytes: u64,
    /// Query cache size in bytes (0 disables it).
    pub query_cache_bytes: u64,
    /// Base resident set of mysqld (code, heap, connection buffers).
    pub base_memory_bytes: u64,
    /// Per-connection memory.
    pub per_connection_bytes: u64,
}

impl Default for MySqlConfig {
    fn default() -> Self {
        MySqlConfig {
            // Modest 2005-era defaults, as a stock RUBiS install would use
            // inside a 2 GB VM.
            buffer_pool_bytes: 72 * 1024 * 1024,
            query_cache_bytes: 16 * 1024 * 1024,
            base_memory_bytes: 65 * 1024 * 1024,
            per_connection_bytes: 192 * 1024,
        }
    }
}

/// The mysqld process model: database + buffer pool + query cache +
/// transaction log.
#[derive(Debug)]
pub struct MySqlServer {
    /// The relational engine.
    pub db: Database,
    config: MySqlConfig,
    pool: BufferPool,
    cache: QueryCache,
    /// Currently open client connections (drives memory accounting).
    pub connections: u32,
    queries_executed: u64,
    log_bytes_pending: u64,
}

impl MySqlServer {
    /// Build the server around a generated database.
    pub fn new(db: Database, config: MySqlConfig) -> Self {
        MySqlServer {
            db,
            pool: BufferPool::new(config.buffer_pool_bytes),
            cache: QueryCache::new(config.query_cache_bytes),
            config,
            connections: 0,
            queries_executed: 0,
            log_bytes_pending: 0,
        }
    }

    /// Pre-warm the buffer pool to `fraction` of its capacity by
    /// touching the hottest data pages of each table round-robin — the
    /// state a long-lived mysqld reaches before measurement starts (the
    /// paper's database had served traffic before its runs).
    pub fn prewarm(&mut self, fraction: f64) {
        let fraction = fraction.clamp(0.0, 1.0);
        let target = (self.pool.capacity_pages() as f64 * fraction) as usize;
        if target == 0 {
            return;
        }
        let cards = self.db.cardinalities();
        let mut round: u64 = 0;
        loop {
            let mut touched_any = false;
            for (i, table) in TableId::ALL.iter().enumerate() {
                let total_pages = (cards[i] * row_bytes(*table)).div_ceil(PAGE_BYTES);
                if round < total_pages {
                    self.pool.access(
                        PageRef {
                            table: *table,
                            page: round,
                        },
                        false,
                    );
                    touched_any = true;
                    if self.pool.resident_pages() >= target {
                        return;
                    }
                }
            }
            if !touched_any {
                return;
            }
            round += 1;
        }
    }

    /// Execute a query through caches, producing CPU and disk work.
    pub fn execute(&mut self, q: Query, now_s: u32) -> DbWork {
        self.queries_executed += 1;
        // Query cache lookup for SELECTs.
        if self.config.query_cache_bytes > 0 {
            if let Some(key) = q.cache_key() {
                if let Some(bytes) = self.cache.lookup(key) {
                    return DbWork {
                        cpu_cycles: 25_000.0, // hash + protocol only
                        ios: Vec::new(),
                        response_bytes: bytes,
                        rows: 0,
                        query_cache_hit: true,
                    };
                }
            }
        }

        let result = self.db.execute(q, now_s);
        let mut ios = Vec::new();
        for page in &result.pages {
            match self.pool.access(*page, false) {
                Access::Hit => {}
                Access::Miss => ios.push(IoRequest {
                    kind: IoKind::Read,
                    bytes: PAGE_BYTES,
                    sequential: false,
                }),
                Access::MissDirtyEvict => {
                    ios.push(IoRequest {
                        kind: IoKind::Write,
                        bytes: PAGE_BYTES,
                        sequential: false,
                    });
                    ios.push(IoRequest {
                        kind: IoKind::Read,
                        bytes: PAGE_BYTES,
                        sequential: false,
                    });
                }
            }
        }
        for page in &result.dirty_pages {
            match self.pool.access(*page, true) {
                Access::Hit | Access::Miss => {}
                Access::MissDirtyEvict => ios.push(IoRequest {
                    kind: IoKind::Write,
                    bytes: PAGE_BYTES,
                    sequential: false,
                }),
            }
        }
        if q.is_write() {
            for t in &result.tables {
                self.cache.invalidate(*t);
            }
            // Redo/binlog: group-committed; accumulate and flush in
            // `log_flush`, but small synchronous record now.
            self.log_bytes_pending += 300 + result.result_bytes;
            // Synchronous redo + binlog records (fsync'd per commit).
            for _ in 0..2 {
                ios.push(IoRequest {
                    kind: IoKind::Write,
                    bytes: 512,
                    sequential: true,
                });
            }
        } else if self.config.query_cache_bytes > 0 {
            if let Some(key) = q.cache_key() {
                self.cache.insert(key, result.result_bytes, &result.tables);
            }
        }

        DbWork {
            cpu_cycles: result.cpu_cycles,
            ios,
            response_bytes: result.result_bytes,
            rows: result.rows,
            query_cache_hit: false,
        }
    }

    /// Periodic group-commit / binlog flush; returns the write to issue,
    /// if any. Call every few hundred milliseconds.
    pub fn log_flush(&mut self) -> Option<IoRequest> {
        if self.log_bytes_pending == 0 {
            return None;
        }
        let bytes = self.log_bytes_pending;
        self.log_bytes_pending = 0;
        Some(IoRequest {
            kind: IoKind::Write,
            bytes,
            sequential: true,
        })
    }

    /// Resident memory of the mysqld process.
    pub fn memory_bytes(&self) -> u64 {
        self.config.base_memory_bytes
            + self.pool.resident_bytes()
            + self.cache.used_bytes()
            + u64::from(self.connections) * self.config.per_connection_bytes
    }

    /// Buffer-pool statistics: (hits, misses, dirty evictions).
    pub fn pool_stats(&self) -> (u64, u64, u64) {
        self.pool.stats()
    }

    /// Query-cache statistics: (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Total queries executed.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> MySqlServer {
        let mut rng = SimRng::new(5);
        let db = Database::generate(DbScale::small(), &mut rng);
        MySqlServer::new(db, MySqlConfig::default())
    }

    #[test]
    fn select_categories_is_cheap() {
        let mut s = server();
        let w = s.execute(Query::SelectCategories, 0);
        assert!(!w.query_cache_hit);
        assert_eq!(w.rows, 5);
        assert!(w.cpu_cycles > 0.0);
        // Second time: query cache.
        let w2 = s.execute(Query::SelectCategories, 0);
        assert!(w2.query_cache_hit);
        assert!(w2.ios.is_empty());
        assert_eq!(w2.response_bytes, w.response_bytes);
    }

    #[test]
    fn cold_reads_produce_disk_io_warm_reads_do_not() {
        let mut rng = SimRng::new(5);
        let db = Database::generate(DbScale::small(), &mut rng);
        let mut s = MySqlServer::new(
            db,
            MySqlConfig {
                query_cache_bytes: 0, // isolate the buffer pool
                ..MySqlConfig::default()
            },
        );
        let q = Query::GetItem { item: ItemId(10) };
        let cold = s.execute(q, 0);
        assert!(!cold.ios.is_empty(), "cold read should miss");
        let warm = s.execute(q, 0);
        assert!(warm.ios.is_empty(), "warm read should hit pool");
        let (h, m, _) = s.pool_stats();
        assert!(h > 0 && m > 0);
    }

    #[test]
    fn store_bid_mutates_and_invalidates() {
        let mut s = server();
        let q_hist = Query::GetBidHistory { item: ItemId(3) };
        let before = s.execute(q_hist, 0);
        let cached = s.execute(q_hist, 0);
        assert!(cached.query_cache_hit);
        let w = s.execute(
            Query::StoreBid {
                user: UserId(1),
                item: ItemId(3),
                increment: 100,
            },
            5,
        );
        assert!(w.ios.iter().any(|io| io.kind == IoKind::Write));
        let after = s.execute(q_hist, 0);
        assert!(!after.query_cache_hit, "cache must be invalidated");
        assert_eq!(after.rows, before.rows + 1, "one more bid in history");
    }

    #[test]
    fn register_user_grows_users() {
        let mut s = server();
        let before = s.db.cardinalities()[0];
        s.execute(
            Query::RegisterUser {
                region: RegionId(0),
            },
            0,
        );
        assert_eq!(s.db.cardinalities()[0], before + 1);
    }

    #[test]
    fn buy_now_decrements_quantity() {
        let mut s = server();
        let q0 = s.db.items[7].quantity;
        s.execute(
            Query::StoreBuyNow {
                buyer: UserId(0),
                item: ItemId(7),
            },
            0,
        );
        assert_eq!(s.db.items[7].quantity, q0 - 1);
        assert_eq!(s.db.cardinalities()[4], 1);
    }

    #[test]
    fn comment_bumps_rating() {
        let mut s = server();
        let r0 = s.db.users[9].rating;
        s.execute(
            Query::StoreComment {
                from: UserId(1),
                to: UserId(9),
                item: ItemId(0),
            },
            0,
        );
        assert_eq!(s.db.users[9].rating, r0 + 1);
    }

    #[test]
    fn log_flush_batches_writes() {
        let mut s = server();
        assert!(s.log_flush().is_none());
        s.execute(
            Query::StoreBid {
                user: UserId(0),
                item: ItemId(0),
                increment: 10,
            },
            0,
        );
        s.execute(
            Query::StoreBid {
                user: UserId(1),
                item: ItemId(1),
                increment: 10,
            },
            0,
        );
        let flush = s.log_flush().expect("pending log bytes");
        assert_eq!(flush.kind, IoKind::Write);
        assert!(flush.sequential);
        assert!(flush.bytes >= 600);
        assert!(s.log_flush().is_none());
    }

    #[test]
    fn memory_grows_with_pool_warmup() {
        let mut s = server();
        let m0 = s.memory_bytes();
        for i in 0..200 {
            s.execute(Query::GetItem { item: ItemId(i) }, 0);
        }
        assert!(s.memory_bytes() > m0, "buffer pool residency should grow");
        s.connections = 50;
        let with_conns = s.memory_bytes();
        assert_eq!(
            with_conns,
            s.memory_bytes().min(with_conns) // stable
        );
        assert!(with_conns > m0);
    }

    #[test]
    fn cache_keys_distinguish_queries() {
        let a = Query::GetItem { item: ItemId(1) }.cache_key().unwrap();
        let b = Query::GetItem { item: ItemId(2) }.cache_key().unwrap();
        let c = Query::GetUserInfo { user: UserId(1) }.cache_key().unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(Query::StoreBid {
            user: UserId(0),
            item: ItemId(0),
            increment: 1
        }
        .cache_key()
        .is_none());
    }

    #[test]
    fn about_me_touches_many_tables() {
        let mut s = server();
        let w = s.execute(Query::AboutMe { user: UserId(3) }, 0);
        assert!(w.rows >= 1);
        assert!(w.response_bytes >= 120);
    }

    #[test]
    fn select_regions_and_max_bid() {
        let mut s = server();
        let w = s.execute(Query::SelectRegions, 0);
        assert_eq!(w.rows, 4);
        let w2 = s.execute(Query::GetMaxBid { item: ItemId(3) }, 0);
        assert_eq!(w2.rows, 1);
        assert!(w2.response_bytes > 0);
    }

    #[test]
    fn auth_user_touches_index_and_row() {
        let mut rng = SimRng::new(5);
        let db = Database::generate(DbScale::small(), &mut rng);
        let mut s = MySqlServer::new(
            db,
            MySqlConfig {
                query_cache_bytes: 0,
                ..MySqlConfig::default()
            },
        );
        let cold = s.execute(Query::AuthUser { user: UserId(42) }, 0);
        assert!(!cold.ios.is_empty());
        let warm = s.execute(Query::AuthUser { user: UserId(42) }, 0);
        assert!(warm.ios.is_empty());
    }

    #[test]
    fn search_by_region_joins_users() {
        let mut s = server();
        let w = s.execute(
            Query::SearchItemsByRegion {
                category: CategoryId(0),
                region: RegionId(1),
                page: 0,
            },
            0,
        );
        assert!(w.rows <= ITEMS_PER_PAGE as u64);
        assert!(w.cpu_cycles > 0.0);
    }

    #[test]
    fn searches_are_not_query_cacheable() {
        // NOW()-dependent SQL: MySQL's query cache refuses them.
        assert!(Query::SearchItemsByCategory {
            category: CategoryId(0),
            page: 0
        }
        .cache_key()
        .is_none());
        assert!(Query::SearchItemsByRegion {
            category: CategoryId(0),
            region: RegionId(0),
            page: 0
        }
        .cache_key()
        .is_none());
        assert!(Query::AboutMe { user: UserId(0) }.cache_key().is_none());
        // Point lookups remain cacheable.
        assert!(Query::GetItem { item: ItemId(0) }.cache_key().is_some());
    }

    #[test]
    fn prewarm_fills_requested_fraction() {
        let mut rng = SimRng::new(6);
        let db = Database::generate(DbScale::small(), &mut rng);
        let mut s = MySqlServer::new(db, MySqlConfig::default());
        let cap = 72 * 1024 * 1024 / 16384; // pool pages
        s.prewarm(0.5);
        let resident_mid = s.memory_bytes();
        s.prewarm(1.0);
        let resident_full = s.memory_bytes();
        assert!(resident_full >= resident_mid);
        // The small DB has fewer pages than half the pool, so prewarm
        // stops when the tables are exhausted.
        let _ = cap;
    }

    #[test]
    fn prewarm_zero_is_noop() {
        let mut rng = SimRng::new(7);
        let db = Database::generate(DbScale::small(), &mut rng);
        let mut s = MySqlServer::new(db, MySqlConfig::default());
        let before = s.memory_bytes();
        s.prewarm(0.0);
        assert_eq!(s.memory_bytes(), before);
    }

    #[test]
    fn get_user_info_reads_comments() {
        let mut s = server();
        let w = s.execute(Query::GetUserInfo { user: UserId(5) }, 0);
        assert!(w.rows >= 1);
        assert!(w.response_bytes >= 80);
    }

    #[test]
    fn search_pagination_bounds() {
        let mut s = server();
        let w0 = s.execute(
            Query::SearchItemsByCategory {
                category: CategoryId(0),
                page: 0,
            },
            0,
        );
        assert!(w0.rows <= ITEMS_PER_PAGE as u64);
        let w_far = s.execute(
            Query::SearchItemsByCategory {
                category: CategoryId(0),
                page: 10_000,
            },
            0,
        );
        assert_eq!(w_far.rows, 0);
    }
}
