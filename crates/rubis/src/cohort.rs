//! Columnar client cohort: the population of [`crate::client::Session`]
//! objects flattened into parallel arrays.
//!
//! At the paper's scale (1000 clients) the per-object representation in
//! [`crate::client`] is fine; at 100k–1M clients a million small heap
//! objects and a million pending think-timer events dominate the run.
//! [`ClientCohort`] keeps one dense column per session field plus a flat
//! fixed-capacity history ring per client, so a per-tick advance touches
//! a handful of cache lines and never allocates.
//!
//! Equivalence contract: every method draws from the RNG in exactly the
//! order [`crate::client::ClientPopulation`] does and mutates the same
//! logical state, so a cohort run is bit-identical to an oracle run.
//! The oracle stays in-tree and `tests/prop_cohort.rs` proves the
//! equivalence operation by operation over arbitrary seeds, mixes, and
//! failure sequences.

use crate::client::{RetryDecision, RetryPolicy, WorkloadMix};
use crate::interactions::Interaction;
use crate::transition::{Mix, NextAction, TransitionTable};
use cloudchar_simcore::{Dist, Sample, SimDuration, SimRng};

/// Per-client history depth, matching the oracle's 64-entry bound.
const HISTORY_CAP: usize = 64;

/// The emulated client population, stored column-wise.
///
/// Column `i` of every array belongs to client `i`. The per-client
/// browsing history is a flat ring (`hist`, `HISTORY_CAP` slots per
/// client) indexed by `hist_head`/`hist_len`, replicating the oracle's
/// bounded `Vec` push/pop/trim semantics without per-client allocation.
#[derive(Debug)]
pub struct ClientCohort {
    mix: Vec<Mix>,
    current: Vec<Interaction>,
    interactions: Vec<u64>,
    epoch: Vec<u64>,
    consecutive_failures: Vec<u32>,
    abandons: Vec<u64>,
    hist: Vec<Interaction>,
    hist_head: Vec<u8>,
    hist_len: Vec<u8>,
    browsing: TransitionTable,
    bidding: TransitionTable,
    think_browse: Dist,
    think_bid: Dist,
}

impl ClientCohort {
    /// Mean think time, as configured in the paper (7 s).
    pub const THINK_MEAN_S: f64 = 7.0;

    /// Create `n` clients split by `mix`.
    ///
    /// Draws one `chance(browsing_fraction)` per client in id order —
    /// the same stream consumption as the oracle's constructor.
    pub fn new(n: u32, mix: WorkloadMix, rng: &mut SimRng) -> Self {
        let n = n as usize;
        let entry = TransitionTable::entry();
        let mut mixes = Vec::with_capacity(n);
        for _ in 0..n {
            mixes.push(if rng.chance(mix.browsing_fraction) {
                Mix::Browsing
            } else {
                Mix::Bidding
            });
        }
        ClientCohort {
            mix: mixes,
            current: vec![entry; n],
            interactions: vec![0; n],
            epoch: vec![0; n],
            consecutive_failures: vec![0; n],
            abandons: vec![0; n],
            hist: vec![entry; n * HISTORY_CAP],
            hist_head: vec![0; n],
            // Every session starts with `[entry]` on its history stack.
            hist_len: vec![1; n],
            browsing: TransitionTable::browsing(),
            bidding: TransitionTable::bidding(),
            think_browse: Dist::exp(Self::THINK_MEAN_S),
            think_bid: Dist::exp(Self::THINK_MEAN_S * 1.25),
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.mix.len()
    }

    /// Whether the cohort is empty.
    pub fn is_empty(&self) -> bool {
        self.mix.is_empty()
    }

    /// Which mix table the client follows.
    pub fn mix_of(&self, id: u32) -> Mix {
        self.mix[id as usize]
    }

    /// Interactions completed by the client.
    pub fn interactions_of(&self, id: u32) -> u64 {
        self.interactions[id as usize]
    }

    /// The client's consecutive failed attempts at its current page.
    pub fn failures_of(&self, id: u32) -> u32 {
        self.consecutive_failures[id as usize]
    }

    /// Depth of the client's history stack (bounded by `HISTORY_CAP`).
    pub fn history_len(&self, id: u32) -> usize {
        self.hist_len[id as usize] as usize
    }

    /// The interaction the client will issue next.
    pub fn current_interaction(&self, id: u32) -> Interaction {
        self.current[id as usize]
    }

    /// Sample the think time before the client's next request.
    pub fn think_time(&self, id: u32, rng: &mut SimRng) -> SimDuration {
        let d = match self.mix[id as usize] {
            Mix::Browsing => &self.think_browse,
            Mix::Bidding => &self.think_bid,
        };
        SimDuration::from_secs_f64(d.sample(rng).min(120.0))
    }

    /// Push `page` onto the client's history ring, evicting the oldest
    /// entry once the ring is full — the columnar equivalent of the
    /// oracle's `push` + `remove(0)` trim.
    fn hist_push(&mut self, i: usize, page: Interaction) {
        let head = self.hist_head[i] as usize;
        let len = self.hist_len[i] as usize;
        let base = i * HISTORY_CAP;
        if len < HISTORY_CAP {
            self.hist[base + (head + len) % HISTORY_CAP] = page;
            self.hist_len[i] = (len + 1) as u8;
        } else {
            self.hist[base + head] = page;
            self.hist_head[i] = ((head + 1) % HISTORY_CAP) as u8;
        }
    }

    /// Pop the top of the client's history ring and return the new top,
    /// or the entry page when the ring drains — the oracle's
    /// `pop` + `last().unwrap_or(entry)`.
    fn hist_pop_back(&mut self, i: usize) -> Interaction {
        let len = self.hist_len[i] as usize;
        if len > 0 {
            self.hist_len[i] = (len - 1) as u8;
        }
        let len = self.hist_len[i] as usize;
        if len == 0 {
            TransitionTable::entry()
        } else {
            let head = self.hist_head[i] as usize;
            self.hist[i * HISTORY_CAP + (head + len - 1) % HISTORY_CAP]
        }
    }

    /// Reset the client's history ring to `[entry]`.
    fn hist_reset(&mut self, i: usize) {
        self.hist_head[i] = 0;
        self.hist_len[i] = 1;
        self.hist[i * HISTORY_CAP] = TransitionTable::entry();
    }

    /// Record the completion of the client's current interaction and
    /// move it to its next page (one transition-table draw, exactly as
    /// the oracle's `advance`).
    pub fn advance(&mut self, id: u32, rng: &mut SimRng) -> Interaction {
        let i = id as usize;
        let table = match self.mix[i] {
            Mix::Browsing => &self.browsing,
            Mix::Bidding => &self.bidding,
        };
        self.interactions[i] += 1;
        match table.next(self.current[i], rng) {
            NextAction::Goto(next) => {
                self.hist_push(i, next);
                self.current[i] = next;
            }
            NextAction::Back => {
                self.current[i] = self.hist_pop_back(i);
            }
            NextAction::End => {
                self.current[i] = TransitionTable::entry();
                self.hist_reset(i);
            }
        }
        self.current[i]
    }

    /// The client's current attempt epoch.
    pub fn epoch(&self, id: u32) -> u64 {
        self.epoch[id as usize]
    }

    /// Invalidate the client's outstanding attempt (timeout fired or it
    /// abandoned): wakeups and responses from earlier epochs must be
    /// dropped. Returns the new epoch.
    pub fn bump_epoch(&mut self, id: u32) -> u64 {
        let i = id as usize;
        self.epoch[i] += 1;
        self.epoch[i]
    }

    /// Record a successful response: the failure streak resets.
    pub fn on_success(&mut self, id: u32) {
        self.consecutive_failures[id as usize] = 0;
    }

    /// Record a failed attempt and decide what the client does next:
    /// capped exponential backoff with uniform jitter in `[0.5, 1.5)`,
    /// or abandonment (reset to the entry page) once
    /// `policy.abandon_after` consecutive attempts have failed. One
    /// jitter draw per call, exactly as the oracle.
    pub fn on_failure(&mut self, id: u32, policy: &RetryPolicy, rng: &mut SimRng) -> RetryDecision {
        let i = id as usize;
        self.consecutive_failures[i] += 1;
        let jitter = 0.5 + rng.f64();
        if self.consecutive_failures[i] >= policy.abandon_after {
            self.consecutive_failures[i] = 0;
            self.abandons[i] += 1;
            self.current[i] = TransitionTable::entry();
            self.hist_reset(i);
            RetryDecision::Abandon(SimDuration::from_secs_f64(policy.abandon_pause_s * jitter))
        } else {
            let exp = policy.backoff_base_s * 2f64.powi(self.consecutive_failures[i] as i32 - 1);
            let backoff = exp.min(policy.backoff_cap_s) * jitter;
            RetryDecision::RetryAfter(SimDuration::from_secs_f64(backoff))
        }
    }

    /// Total pages abandoned across the cohort.
    pub fn total_abandons(&self) -> u64 {
        self.abandons.iter().sum()
    }

    /// Count of clients currently following the browsing table.
    pub fn browsing_sessions(&self) -> usize {
        self.mix.iter().filter(|&&m| m == Mix::Browsing).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_matches_oracle_rng_stream() {
        use crate::client::ClientPopulation;
        let mut ra = SimRng::new(42);
        let mut rb = SimRng::new(42);
        let cohort = ClientCohort::new(500, WorkloadMix::percent_browsing(70), &mut ra);
        let oracle = ClientPopulation::new(500, WorkloadMix::percent_browsing(70), &mut rb);
        assert_eq!(cohort.len(), oracle.len());
        assert_eq!(cohort.browsing_sessions(), oracle.browsing_sessions());
        for id in 0..500 {
            assert_eq!(cohort.mix_of(id), oracle.session(id).mix);
        }
        // Both consumed the same number of draws.
        assert_eq!(ra.next_u64_raw(), rb.next_u64_raw());
    }

    #[test]
    fn history_ring_trims_like_bounded_vec() {
        let mut rng = SimRng::new(6);
        let mut c = ClientCohort::new(1, WorkloadMix::BROWSING, &mut rng);
        for _ in 0..100_000 {
            c.advance(0, &mut rng);
        }
        assert!(c.history_len(0) <= HISTORY_CAP);
    }

    #[test]
    fn back_from_drained_history_lands_on_entry() {
        let mut rng = SimRng::new(1);
        let mut c = ClientCohort::new(1, WorkloadMix::BROWSING, &mut rng);
        // Drain the stack manually: pop the initial entry, then pop again.
        assert_eq!(c.hist_pop_back(0), TransitionTable::entry());
        assert_eq!(c.history_len(0), 0);
        assert_eq!(c.hist_pop_back(0), TransitionTable::entry());
        assert_eq!(c.history_len(0), 0);
    }

    #[test]
    fn abandonment_resets_to_entry() {
        let mut rng = SimRng::new(8);
        let mut c = ClientCohort::new(1, WorkloadMix::BIDDING, &mut rng);
        for _ in 0..20 {
            c.advance(0, &mut rng);
        }
        let policy = RetryPolicy::default();
        let mut last = None;
        for _ in 0..policy.abandon_after {
            last = Some(c.on_failure(0, &policy, &mut rng));
        }
        assert!(matches!(last, Some(RetryDecision::Abandon(_))));
        assert_eq!(c.current_interaction(0), TransitionTable::entry());
        assert_eq!(c.failures_of(0), 0);
        assert_eq!(c.total_abandons(), 1);
    }

    #[test]
    fn epochs_are_per_client() {
        let mut rng = SimRng::new(10);
        let mut c = ClientCohort::new(2, WorkloadMix::BROWSING, &mut rng);
        assert_eq!(c.epoch(0), 0);
        assert_eq!(c.bump_epoch(0), 1);
        assert_eq!(c.bump_epoch(0), 2);
        assert_eq!(c.epoch(1), 0);
    }
}
