//! The RUBiS auction-site schema and synthetic data generator.
//!
//! RUBiS models eBay: registered users in regions, items in categories,
//! bids, buy-now purchases and comments. The table shapes follow the
//! benchmark's MySQL schema; row byte sizes approximate the InnoDB
//! on-disk footprint and drive the storage engine's page mathematics.

use cloudchar_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// User identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);
/// Item identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemId(pub u32);
/// Category identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CategoryId(pub u16);
/// Region identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u16);

/// A registered user (RUBiS `users` table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// Primary key.
    pub id: UserId,
    /// Seller/buyer rating accumulated from comments.
    pub rating: i32,
    /// Account balance in cents.
    pub balance: i64,
    /// Home region.
    pub region: RegionId,
    /// Number of items sold (denormalized counter).
    pub items_sold: u32,
}

impl User {
    /// Approximate InnoDB row footprint (columns + nickname/password
    /// strings + row header).
    pub const ROW_BYTES: u64 = 160;
}

/// An auction item (RUBiS `items` table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Primary key.
    pub id: ItemId,
    /// Seller.
    pub seller: UserId,
    /// Category.
    pub category: CategoryId,
    /// Starting price in cents.
    pub initial_price: i64,
    /// Current highest bid in cents (0 when no bids).
    pub max_bid: i64,
    /// Number of bids received (denormalized counter).
    pub nb_bids: u32,
    /// Buy-now price in cents (0 = not offered).
    pub buy_now: i64,
    /// Remaining quantity.
    pub quantity: u32,
    /// Length of the description text in bytes (drives row size).
    pub description_len: u32,
}

impl Item {
    /// Fixed part of the row; the description adds `description_len`.
    pub const ROW_BYTES_FIXED: u64 = 120;

    /// Total row footprint.
    pub fn row_bytes(&self) -> u64 {
        Self::ROW_BYTES_FIXED + u64::from(self.description_len)
    }
}

/// A bid (RUBiS `bids` table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bid {
    /// Bidding user.
    pub user: UserId,
    /// Item bid on.
    pub item: ItemId,
    /// Quantity requested.
    pub qty: u32,
    /// Bid amount in cents.
    pub amount: i64,
    /// Bid time (coarse, in simulation seconds).
    pub date_s: u32,
}

impl Bid {
    /// Approximate InnoDB row footprint.
    pub const ROW_BYTES: u64 = 56;
}

/// A comment left for a user (RUBiS `comments` table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comment {
    /// Author.
    pub from: UserId,
    /// Recipient (the seller/buyer being rated).
    pub to: UserId,
    /// Item the transaction concerned.
    pub item: ItemId,
    /// Rating delta (−5..=5).
    pub rating: i8,
    /// Comment text length in bytes.
    pub text_len: u32,
}

impl Comment {
    /// Fixed part of the row; the text adds `text_len`.
    pub const ROW_BYTES_FIXED: u64 = 48;
}

/// A buy-now purchase (RUBiS `buy_now` table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuyNow {
    /// Buyer.
    pub buyer: UserId,
    /// Item bought.
    pub item: ItemId,
    /// Quantity bought.
    pub qty: u32,
    /// Purchase time (simulation seconds).
    pub date_s: u32,
}

impl BuyNow {
    /// Approximate InnoDB row footprint.
    pub const ROW_BYTES: u64 = 40;
}

/// Database population sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbScale {
    /// Registered users.
    pub users: u32,
    /// Items currently up for auction.
    pub active_items: u32,
    /// Average historical bids per item at generation time.
    pub bids_per_item: u32,
    /// Comments at generation time.
    pub comments: u32,
    /// Number of categories.
    pub categories: u16,
    /// Number of regions.
    pub regions: u16,
}

impl DbScale {
    /// The RUBiS default database the paper's deployment used:
    /// 1 M users is the published default, but the workload only touches
    /// active items; we keep the index-relevant population.
    pub fn paper() -> Self {
        DbScale {
            users: 100_000,
            active_items: 33_000,
            bids_per_item: 10,
            comments: 50_000,
            categories: 20,
            regions: 62,
        }
    }

    /// A tiny population for unit tests.
    pub fn small() -> Self {
        DbScale {
            users: 500,
            active_items: 200,
            bids_per_item: 3,
            comments: 100,
            categories: 5,
            regions: 4,
        }
    }
}

/// Generate a synthetic population with the benchmark's distributions:
/// items spread over categories by a truncated Zipf-ish skew, description
/// lengths log-normal-ish, prices uniform.
pub fn generate(
    scale: DbScale,
    rng: &mut SimRng,
) -> (Vec<User>, Vec<Item>, Vec<Bid>, Vec<Comment>) {
    assert!(scale.users > 0 && scale.active_items > 0 && scale.categories > 0 && scale.regions > 0);
    let mut users = Vec::with_capacity(scale.users as usize);
    for i in 0..scale.users {
        users.push(User {
            id: UserId(i),
            rating: rng.range_inclusive(0, 20) as i32 - 5,
            balance: rng.range_inclusive(0, 500_000) as i64,
            region: RegionId(rng.below(u64::from(scale.regions)) as u16),
            items_sold: 0,
        });
    }

    let mut items = Vec::with_capacity(scale.active_items as usize);
    for i in 0..scale.active_items {
        // Category skew: low-numbered categories are hot, matching the
        // benchmark's uneven ebay_simple_categories distribution.
        let z = rng.f64_open();
        let cat = ((z * z) * f64::from(scale.categories)) as u16;
        let seller = UserId(rng.below(u64::from(scale.users)) as u32);
        let initial = rng.range_inclusive(100, 100_000) as i64;
        items.push(Item {
            id: ItemId(i),
            seller,
            category: CategoryId(cat.min(scale.categories - 1)),
            initial_price: initial,
            max_bid: 0,
            nb_bids: 0,
            buy_now: if rng.chance(0.4) { initial * 2 } else { 0 },
            quantity: rng.range_inclusive(1, 10) as u32,
            description_len: (50.0 * (1.0 + 9.0 * rng.f64() * rng.f64())) as u32 * 8,
        });
        users[seller.0 as usize].items_sold += 1;
    }

    let mut bids = Vec::new();
    for item in items.iter_mut() {
        let n = rng.range_inclusive(0, u64::from(scale.bids_per_item) * 2) as u32;
        let mut price = item.initial_price;
        for _ in 0..n {
            price += rng.range_inclusive(50, 1_000) as i64;
            bids.push(Bid {
                user: UserId(rng.below(u64::from(scale.users)) as u32),
                item: item.id,
                qty: 1,
                amount: price,
                date_s: 0,
            });
        }
        item.nb_bids = n;
        item.max_bid = if n > 0 { price } else { 0 };
    }

    let mut comments = Vec::with_capacity(scale.comments as usize);
    for _ in 0..scale.comments {
        let from = UserId(rng.below(u64::from(scale.users)) as u32);
        let to = UserId(rng.below(u64::from(scale.users)) as u32);
        comments.push(Comment {
            from,
            to,
            item: ItemId(rng.below(u64::from(scale.active_items)) as u32),
            rating: rng.range_inclusive(0, 10) as i8 - 5,
            text_len: rng.range_inclusive(20, 800) as u32,
        });
    }

    (users, items, bids, comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_scale() {
        let mut rng = SimRng::new(1);
        let scale = DbScale::small();
        let (users, items, bids, comments) = generate(scale, &mut rng);
        assert_eq!(users.len(), 500);
        assert_eq!(items.len(), 200);
        assert_eq!(comments.len(), 100);
        // Average ~3 bids/item drawn from U[0,6].
        let avg = bids.len() as f64 / items.len() as f64;
        assert!((2.0..4.5).contains(&avg), "avg bids {avg}");
    }

    #[test]
    fn denormalized_counters_consistent() {
        let mut rng = SimRng::new(2);
        let (users, items, bids, _) = generate(DbScale::small(), &mut rng);
        let total_nb: u32 = items.iter().map(|i| i.nb_bids).sum();
        assert_eq!(total_nb as usize, bids.len());
        let sold: u32 = users.iter().map(|u| u.items_sold).sum();
        assert_eq!(sold as usize, items.len());
        // max_bid reflects the bid chain.
        for item in &items {
            if item.nb_bids > 0 {
                assert!(item.max_bid > item.initial_price);
            } else {
                assert_eq!(item.max_bid, 0);
            }
        }
    }

    #[test]
    fn ids_are_dense_and_in_range() {
        let mut rng = SimRng::new(3);
        let scale = DbScale::small();
        let (users, items, bids, comments) = generate(scale, &mut rng);
        for (i, u) in users.iter().enumerate() {
            assert_eq!(u.id.0 as usize, i);
            assert!(u.region.0 < scale.regions);
        }
        for (i, it) in items.iter().enumerate() {
            assert_eq!(it.id.0 as usize, i);
            assert!(it.category.0 < scale.categories);
            assert!(it.seller.0 < scale.users);
        }
        for b in &bids {
            assert!(b.user.0 < scale.users);
            assert!((b.item.0 as usize) < items.len());
        }
        for c in &comments {
            assert!(c.from.0 < scale.users && c.to.0 < scale.users);
        }
    }

    #[test]
    fn deterministic_generation() {
        let (u1, i1, b1, c1) = generate(DbScale::small(), &mut SimRng::new(7));
        let (u2, i2, b2, c2) = generate(DbScale::small(), &mut SimRng::new(7));
        assert_eq!(u1, u2);
        assert_eq!(i1, i2);
        assert_eq!(b1, b2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn row_sizes() {
        assert_eq!(User::ROW_BYTES, 160);
        let item = Item {
            id: ItemId(0),
            seller: UserId(0),
            category: CategoryId(0),
            initial_price: 1,
            max_bid: 0,
            nb_bids: 0,
            buy_now: 0,
            quantity: 1,
            description_len: 400,
        };
        assert_eq!(item.row_bytes(), 520);
    }
}
