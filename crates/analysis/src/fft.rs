//! Dependency-free real-input FFT powering the periodogram.
//!
//! The naive Goertzel periodogram is O(n) *per bin*, O(n²) for the full
//! spectrum — the dominant cost of characterizing long series. This
//! module computes every DFT bin in O(n log n): an iterative radix-2
//! Cooley–Tukey transform for power-of-two lengths, and Bluestein's
//! chirp-z algorithm (which re-expresses an arbitrary-length DFT as a
//! power-of-two convolution) for everything else. No external crate,
//! f64 throughout.
//!
//! [`FftScratch`] owns every buffer, twiddle table and chirp filter, so
//! repeated transforms of same-length series (the catalog loop: 518
//! metrics × a few hosts, all with one sample count) allocate nothing
//! after the first call.

/// Complex value as a `(re, im)` pair.
type C = (f64, f64);

#[inline]
fn cmul(a: C, b: C) -> C {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Reusable FFT workspace: transform buffers plus cached twiddle and
/// chirp tables keyed by the lengths they were built for.
#[derive(Debug, Clone, Default)]
pub struct FftScratch {
    /// Main transform buffer (length `m`, the power-of-two size).
    a: Vec<C>,
    /// Bluestein chirp factors `exp(-iπ j²/n)` for the current `n`.
    chirp: Vec<C>,
    /// FFT of the Bluestein filter for the current `(n, m)`.
    bfft: Vec<C>,
    /// Twiddles `exp(-2πi k/m)` for `k < m/2`, for the current `m`.
    twiddles: Vec<C>,
    /// Length the chirp/filter tables were built for (0 = none).
    chirp_n: usize,
    /// Power-of-two size the twiddle table was built for (0 = none).
    twiddle_m: usize,
}

fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

fn bit_reverse_permute(buf: &mut [C]) {
    let n = buf.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
}

impl FftScratch {
    /// Fresh workspace; buffers grow on first use.
    pub fn new() -> Self {
        FftScratch::default()
    }

    fn ensure_twiddles(&mut self, m: usize) {
        if self.twiddle_m == m {
            return;
        }
        self.twiddles.clear();
        self.twiddles.reserve(m / 2);
        for k in 0..m / 2 {
            let angle = -std::f64::consts::TAU * k as f64 / m as f64;
            self.twiddles.push((angle.cos(), angle.sin()));
        }
        self.twiddle_m = m;
    }

    /// In-place power-of-two FFT of `buf` (forward, or inverse when
    /// `inverse` — inverse leaves the 1/m scaling to the caller).
    fn fft_pow2(twiddles: &[C], buf: &mut [C], inverse: bool) {
        let n = buf.len();
        debug_assert!(n.is_power_of_two() && twiddles.len() == n / 2);
        bit_reverse_permute(buf);
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let (tr, mut ti) = twiddles[k * step];
                    if inverse {
                        ti = -ti;
                    }
                    let u = buf[start + k];
                    let v = cmul(buf[start + k + half], (tr, ti));
                    buf[start + k] = (u.0 + v.0, u.1 + v.1);
                    buf[start + k + half] = (u.0 - v.0, u.1 - v.1);
                }
            }
            len <<= 1;
        }
    }

    /// Build the Bluestein chirp table and transformed filter for `n`
    /// with convolution size `m`.
    fn ensure_chirp(&mut self, n: usize, m: usize) {
        if self.chirp_n == n && self.bfft.len() == m {
            return;
        }
        // chirp[j] = exp(-iπ j²/n); reduce j² mod 2n before the float
        // division so the angle stays in [0, 2π) even for huge j.
        self.chirp.clear();
        self.chirp.reserve(n);
        let two_n = 2 * n as u64;
        for j in 0..n as u64 {
            let r = (j * j) % two_n;
            let angle = -std::f64::consts::PI * r as f64 / n as f64;
            self.chirp.push((angle.cos(), angle.sin()));
        }
        // Filter b[j] = conj(chirp[|j|]) laid out circularly, then
        // transformed once; reused for every series of this length.
        self.bfft.clear();
        self.bfft.resize(m, (0.0, 0.0));
        for j in 0..n {
            let c = self.chirp[j];
            let conj = (c.0, -c.1);
            self.bfft[j] = conj;
            if j != 0 {
                self.bfft[m - j] = conj;
            }
        }
        Self::fft_pow2(&self.twiddles, &mut self.bfft, false);
        self.chirp_n = n;
    }

    /// Power spectrum of a real series: `out[k-1] = |X(k)|²` for DFT
    /// bins `k = 1..=n/2`, where `X` is the length-`n` DFT of `xs`.
    /// `out` is cleared and refilled (no allocation once warm).
    pub fn power_spectrum_into(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        let n = xs.len();
        out.clear();
        if n < 2 {
            return;
        }
        if n.is_power_of_two() {
            self.ensure_twiddles(n);
            self.a.clear();
            self.a.extend(xs.iter().map(|&x| (x, 0.0)));
            Self::fft_pow2(&self.twiddles, &mut self.a, false);
            out.extend((1..=n / 2).map(|k| {
                let (re, im) = self.a[k];
                re * re + im * im
            }));
            return;
        }
        // Bluestein: X(k) = chirp[k] · (a ⊛ b)[k] with a[j] = x[j]·chirp[j].
        let m = next_pow2(2 * n - 1);
        self.ensure_twiddles(m);
        self.ensure_chirp(n, m);
        self.a.clear();
        self.a.resize(m, (0.0, 0.0));
        for j in 0..n {
            self.a[j] = (xs[j] * self.chirp[j].0, xs[j] * self.chirp[j].1);
        }
        Self::fft_pow2(&self.twiddles, &mut self.a, false);
        for (av, bv) in self.a.iter_mut().zip(&self.bfft) {
            *av = cmul(*av, *bv);
        }
        Self::fft_pow2(&self.twiddles, &mut self.a, true);
        // |chirp[k]| = 1, so |X(k)|² = |conv[k]|²; fold the inverse
        // FFT's deferred 1/m into the squared magnitude.
        let inv_m2 = 1.0 / (m as f64 * m as f64);
        out.extend((1..=n / 2).map(|k| {
            let (re, im) = self.a[k];
            (re * re + im * im) * inv_m2
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference DFT power at bin `k`.
    fn dft_power(xs: &[f64], k: usize) -> f64 {
        let n = xs.len() as f64;
        let (mut re, mut im) = (0.0, 0.0);
        for (j, &x) in xs.iter().enumerate() {
            let angle = -std::f64::consts::TAU * k as f64 * j as f64 / n;
            re += x * angle.cos();
            im += x * angle.sin();
        }
        re * re + im * im
    }

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft_pow2_and_bluestein() {
        let mut scratch = FftScratch::new();
        let mut out = Vec::new();
        for n in [8usize, 16, 64, 256, 10, 12, 100, 600, 37, 101] {
            let xs = noise(n, n as u64 + 1);
            scratch.power_spectrum_into(&xs, &mut out);
            assert_eq!(out.len(), n / 2, "n = {n}");
            let scale: f64 = xs.iter().map(|x| x * x).sum::<f64>() * n as f64;
            for (i, &p) in out.iter().enumerate() {
                let want = dft_power(&xs, i + 1);
                assert!(
                    (p - want).abs() <= 1e-10 * (1.0 + scale),
                    "n = {n}, bin {}: fft {p}, dft {want}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_lengths() {
        let mut scratch = FftScratch::new();
        let mut out = Vec::new();
        let a = noise(48, 3);
        let b = noise(600, 4);
        scratch.power_spectrum_into(&a, &mut out);
        scratch.power_spectrum_into(&b, &mut out);
        assert_eq!(out.len(), 300);
        // Back to the first length: cached tables must rebuild correctly.
        scratch.power_spectrum_into(&a, &mut out);
        let want = dft_power(&a, 5);
        assert!((out[4] - want).abs() <= 1e-9 * (1.0 + want));
    }

    #[test]
    fn degenerate_lengths_are_empty() {
        let mut scratch = FftScratch::new();
        let mut out = vec![1.0];
        scratch.power_spectrum_into(&[], &mut out);
        assert!(out.is_empty());
        scratch.power_spectrum_into(&[1.0], &mut out);
        assert!(out.is_empty());
    }
}
