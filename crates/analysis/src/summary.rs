//! Summary statistics of workload time series.
//!
//! §4.1 of the paper observes that "the workload curves for different
//! types of resources display different shapes/distributions with
//! different means and variances. But for each type of resource, the
//! workload dynamics show some patterns that can be quantified by formal
//! models." This module computes those quantities.

use cloudchar_simcore::stats::{Comoments, Moments};
use serde::{Deserialize, Serialize};

/// Descriptive statistics of one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation.
    pub cv: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Sum over the run (aggregate demand).
    pub total: f64,
}

/// Assemble a [`Summary`] from precomputed moments and a sorted copy —
/// the shared core used by [`summarize`] and `SeriesScratch`, so both
/// paths produce bit-identical results. `m.count` must be non-zero and
/// `sorted` sorted ascending with `m.count` elements.
pub(crate) fn summary_from_parts(m: &Moments, sorted: &[f64]) -> Summary {
    let n = m.count;
    let total = m.sum;
    let mean = total / n as f64;
    let variance = m.variance();
    let std_dev = variance.sqrt();
    let q = |p: f64| {
        let idx = ((n as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    Summary {
        n,
        mean,
        variance,
        std_dev,
        cv: if mean.is_normal() {
            std_dev / mean
        } else {
            0.0
        },
        min: m.min,
        max: m.max,
        p50: q(0.5),
        p95: q(0.95),
        total,
    }
}

/// Compute a [`Summary`]; returns `None` for an empty series or one
/// containing non-finite samples.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    // One fused pass gives count/finiteness/mean/variance/total/min/max;
    // only the percentiles still need the sorted copy.
    let m = Moments::of(xs);
    if m.count == 0 || !m.all_finite {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(summary_from_parts(&m, &sorted))
}

/// Sample autocorrelation at integer lag `k` (Pearson of the series with
/// its k-shifted self). Returns `None` when the overlap is < 2 samples
/// or the series is constant.
pub fn autocorrelation(xs: &[f64], k: usize) -> Option<f64> {
    if xs.len() < k + 2 {
        return None;
    }
    let n = xs.len() - k;
    let a = &xs[..n];
    let b = &xs[k..];
    pearson(a, b)
}

/// Pearson correlation of two equal-length slices, computed with the
/// one-pass Welford co-moment accumulator
/// ([`cloudchar_simcore::stats::Comoments`]) — numerically stable on
/// large-mean series, where the textbook Σxy − ΣxΣy/n form cancels
/// catastrophically. Returns `None` on length mismatch, fewer than two
/// samples, or a constant/non-finite series.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    Comoments::of(a, b).pearson()
}

/// Sample autocorrelation at every lag `0..=max_lag`, derived from one
/// pass of prefix sums (entry `k` matches [`autocorrelation`]`(xs, k)`
/// semantics: `None` when the overlap is short or constant).
pub fn autocorrelations(xs: &[f64], max_lag: usize) -> Vec<Option<f64>> {
    crate::lag::cross_correlation_scan(xs, xs, max_lag)
        .into_iter()
        .filter(|&(shift, _)| shift >= 0)
        .map(|(_, c)| c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.total, 15.0);
        assert!((s.cv - 2.0f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn p95_order() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = summarize(&xs).unwrap();
        assert!(s.p95 >= 94.0 && s.p95 <= 97.0, "p95 {}", s.p95);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0];
        assert!((pearson(&a, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&a, &[5.0, 5.0, 5.0]).is_none()); // constant
        assert!(pearson(&a, &[1.0]).is_none()); // length mismatch
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (i as f64 * std::f64::consts::TAU / 20.0).sin())
            .collect();
        let r20 = autocorrelation(&xs, 20).unwrap();
        let r10 = autocorrelation(&xs, 10).unwrap();
        assert!(r20 > 0.95, "period lag should correlate, got {r20}");
        assert!(r10 < -0.9, "half-period lag anti-correlates, got {r10}");
    }

    #[test]
    fn autocorrelation_needs_overlap() {
        assert!(autocorrelation(&[1.0, 2.0], 5).is_none());
    }

    #[test]
    fn pearson_is_stable_on_large_mean_series() {
        // Offset 1e12 destroys the textbook Σxy − ΣxΣy/n form; the
        // Welford co-moment path must still see perfect correlation.
        let a: Vec<f64> = (0..100).map(|i| 1e12 + i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 1e12 + 2.0 * i as f64).collect();
        let r = pearson(&a, &b).unwrap();
        assert!((r - 1.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn autocorrelations_match_per_lag_calls() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (i as f64 * std::f64::consts::TAU / 20.0).sin() + 0.01 * i as f64)
            .collect();
        let all = autocorrelations(&xs, 25);
        assert_eq!(all.len(), 26);
        for (k, got) in all.iter().enumerate() {
            let want = autocorrelation(&xs, k);
            match (got, want) {
                (Some(g), Some(w)) => assert!((g - w).abs() < 1e-9, "lag {k}: {g} vs {w}"),
                (g, w) => assert_eq!(g.is_some(), w.is_some(), "lag {k}"),
            }
        }
    }
}
