//! Histogram workload models.
//!
//! The paper's related work leans on histogram-based workload modelling
//! ("Web server performance analysis using histogram workload models",
//! its reference \[7\]); this module provides that representation: an
//! equal-width histogram of a demand series that can be compared
//! against another (1-D earth-mover's distance) and sampled as a
//! synthetic workload model.

use serde::{Deserialize, Serialize};

/// An equal-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramModel {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Bin counts.
    pub counts: Vec<u64>,
    /// Total observations.
    pub total: u64,
}

impl HistogramModel {
    /// Build from data with `bins` equal-width bins spanning the data
    /// range. Returns `None` for empty data or non-positive bin count.
    pub fn fit(xs: &[f64], bins: usize) -> Option<HistogramModel> {
        if xs.is_empty() || bins == 0 {
            return None;
        }
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; bins];
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        for &x in xs {
            let idx = (((x - lo) / width) * bins as f64) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        Some(HistogramModel {
            lo,
            hi,
            counts,
            total: xs.len() as u64,
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Normalized frequencies (sum to 1).
    pub fn frequencies(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total.max(1) as f64)
            .collect()
    }

    /// Midpoint value of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Model mean (from bin midpoints).
    pub fn mean(&self) -> f64 {
        self.frequencies()
            .iter()
            .enumerate()
            .map(|(i, f)| f * self.bin_mid(i))
            .sum()
    }

    /// 1-D earth-mover's (Wasserstein-1) distance to another model with
    /// the *same* binning, in units of the value axis. `None` when the
    /// bin counts differ.
    pub fn emd(&self, other: &HistogramModel) -> Option<f64> {
        if self.bins() != other.bins() {
            return None;
        }
        let fa = self.frequencies();
        let fb = other.frequencies();
        let width = (self.hi.max(other.hi) - self.lo.min(other.lo)) / self.bins() as f64;
        let mut carry = 0.0;
        let mut dist = 0.0;
        for i in 0..self.bins() {
            carry += fa[i] - fb[i];
            dist += carry.abs() * width;
        }
        Some(dist)
    }

    /// Inverse-CDF sample given a uniform `u ∈ [0, 1)`: returns a value
    /// drawn from the histogram model (bin midpoint interpolation).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let target = u * self.total as f64;
        let mut cum = 0.0;
        let width = (self.hi - self.lo) / self.bins() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                // Interpolate within the bin.
                let frac = if c > 0 {
                    (target - cum) / c as f64
                } else {
                    0.5
                };
                return self.lo + (i as f64 + frac.clamp(0.0, 1.0)) * width;
            }
            cum = next;
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_counts_everything() {
        let xs = [1.0, 2.0, 2.5, 3.0, 10.0];
        let h = HistogramModel::fit(&xs, 3).unwrap();
        assert_eq!(h.total, 5);
        assert_eq!(h.counts.iter().sum::<u64>(), 5);
        assert_eq!(h.lo, 1.0);
        assert_eq!(h.hi, 10.0);
        let f: f64 = h.frequencies().iter().sum();
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_zero_bins_is_none() {
        assert!(HistogramModel::fit(&[], 4).is_none());
        assert!(HistogramModel::fit(&[1.0], 0).is_none());
    }

    #[test]
    fn constant_data_lands_in_one_bin() {
        let h = HistogramModel::fit(&[5.0; 100], 4).unwrap();
        assert_eq!(h.counts.iter().filter(|&&c| c > 0).count(), 1);
        assert_eq!(h.total, 100);
    }

    #[test]
    fn mean_approximates_data_mean() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = HistogramModel::fit(&xs, 50).unwrap();
        let data_mean = 499.5;
        assert!((h.mean() - data_mean).abs() < 10.0, "mean {}", h.mean());
    }

    #[test]
    fn emd_identity_and_separation() {
        let a = HistogramModel::fit(&[1.0, 2.0, 3.0, 4.0], 4).unwrap();
        assert_eq!(a.emd(&a), Some(0.0));
        // A mass shift of one full bin over distance `width`.
        let b = HistogramModel {
            lo: a.lo,
            hi: a.hi,
            counts: vec![0, 2, 1, 1],
            total: 4,
        };
        let d = a.emd(&b).unwrap();
        assert!(d > 0.0);
        // Mismatched binning refuses.
        let c = HistogramModel::fit(&[1.0, 2.0], 8).unwrap();
        assert!(a.emd(&c).is_none());
    }

    #[test]
    fn emd_is_symmetric() {
        let a = HistogramModel::fit(&[1.0, 1.0, 2.0, 5.0, 9.0], 5).unwrap();
        let b = HistogramModel::fit(&[1.0, 4.0, 4.0, 8.0, 9.0], 5).unwrap();
        // Same range [1,9] → same binning.
        let d1 = a.emd(&b).unwrap();
        let d2 = b.emd(&a).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn quantile_spans_the_range() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = HistogramModel::fit(&xs, 10).unwrap();
        let q0 = h.quantile(0.0);
        let q5 = h.quantile(0.5);
        let q1 = h.quantile(1.0);
        assert!(q0 <= q5 && q5 <= q1);
        assert!((q5 - 49.5).abs() < 11.0, "median {q5}");
        assert!(q1 <= h.hi);
    }
}
