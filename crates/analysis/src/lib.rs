//! # cloudchar-analysis
//!
//! Workload-characterization analytics over the testbed's sampled time
//! series — the quantitative claims of the paper's Section 4 made
//! executable:
//!
//! * [`summary`] — means, variances, CVs, percentiles, autocorrelation
//!   ("different shapes/distributions with different means and
//!   variances");
//! * [`lag`] — cross-correlation lag between the web and database tiers;
//! * [`jumps`] — RAM level-shift detection (browse jumps vs smooth bid
//!   curves, earlier jumps on physical machines);
//! * [`ratios`] — the aggregate demand ratio calculus behind R1–R4;
//! * [`fit`] — moment-based distribution fitting with KS ranking
//!   ("patterns that can be quantified by formal models");
//! * [`spectrum`] — periodogram-based periodicity detection (commit
//!   intervals, flush ticks);
//! * [`fft`] — the dependency-free real-input FFT behind the
//!   periodogram;
//! * [`scratch`] — the reusable shared-pass workspace
//!   ([`SeriesScratch`]) that makes profiling thousands of series
//!   allocation-free;
//! * [`online`] — incremental sliding-window kernels
//!   ([`OnlineProfiler`]) that maintain the same statistics live, one
//!   sample at a time, with the batch engines as the oracle.

#![warn(missing_docs)]

pub mod fft;
pub mod fit;
pub mod histogram;
pub mod jumps;
pub mod lag;
pub mod online;
pub mod ratios;
pub mod scratch;
pub mod spectrum;
pub mod summary;

pub use fft::FftScratch;
pub use fit::{best_fit, fit_all, FitResult, Fitted};
pub use histogram::HistogramModel;
pub use jumps::{detect_jumps, is_smoother, Jump};
pub use lag::{cross_correlation, cross_correlation_scan, find_lag, find_lag_naive, LagResult};
pub use online::{OnlineProfile, OnlineProfiler};
pub use ratios::{
    aggregate_ratio, demand_ratio, elementwise_sum, mean_ratio, percent_more, Resource,
    ResourceRatios,
};
pub use scratch::SeriesScratch;
pub use spectrum::{dominant_periods, goertzel_periodogram, goertzel_power, periodogram, Peak};
pub use summary::{autocorrelation, autocorrelations, pearson, summarize, Summary};
