//! # cloudchar-analysis
//!
//! Workload-characterization analytics over the testbed's sampled time
//! series — the quantitative claims of the paper's Section 4 made
//! executable:
//!
//! * [`summary`] — means, variances, CVs, percentiles, autocorrelation
//!   ("different shapes/distributions with different means and
//!   variances");
//! * [`lag`] — cross-correlation lag between the web and database tiers;
//! * [`jumps`] — RAM level-shift detection (browse jumps vs smooth bid
//!   curves, earlier jumps on physical machines);
//! * [`ratios`] — the aggregate demand ratio calculus behind R1–R4;
//! * [`fit`] — moment-based distribution fitting with KS ranking
//!   ("patterns that can be quantified by formal models");
//! * [`spectrum`] — periodogram-based periodicity detection (commit
//!   intervals, flush ticks).

#![warn(missing_docs)]

pub mod fit;
pub mod histogram;
pub mod jumps;
pub mod lag;
pub mod ratios;
pub mod spectrum;
pub mod summary;

pub use fit::{best_fit, fit_all, FitResult, Fitted};
pub use histogram::HistogramModel;
pub use jumps::{detect_jumps, is_smoother, Jump};
pub use lag::{cross_correlation, find_lag, LagResult};
pub use ratios::{
    aggregate_ratio, demand_ratio, elementwise_sum, mean_ratio, percent_more, Resource,
    ResourceRatios,
};
pub use spectrum::{dominant_periods, periodogram, Peak};
pub use summary::{autocorrelation, pearson, summarize, Summary};
