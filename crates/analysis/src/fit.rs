//! Moment-based distribution fitting.
//!
//! The paper's future work proposes "formal methods to model the
//! workload dynamics"; its §4.1 already notes the per-resource curves
//! follow identifiable distributions. This module fits candidate
//! families by matching moments and ranks them with a
//! Kolmogorov–Smirnov distance, providing the "quantified by formal
//! models" step.

use serde::{Deserialize, Serialize};

/// A fitted distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fitted {
    /// Normal(μ, σ).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Exponential with mean `mean`.
    Exponential {
        /// Mean (1/λ).
        mean: f64,
    },
    /// LogNormal with underlying (μ, σ).
    LogNormal {
        /// Underlying normal mean.
        mu: f64,
        /// Underlying normal std-dev.
        sigma: f64,
    },
    /// Uniform(lo, hi).
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl Fitted {
    /// CDF of the fitted distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            Fitted::Normal { mean, std_dev } => {
                if std_dev <= 0.0 {
                    return if x >= mean { 1.0 } else { 0.0 };
                }
                0.5 * (1.0 + erf((x - mean) / (std_dev * std::f64::consts::SQRT_2)))
            }
            Fitted::Exponential { mean } => {
                if x <= 0.0 || mean <= 0.0 {
                    0.0
                } else {
                    1.0 - (-x / mean).exp()
                }
            }
            Fitted::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    return 0.0;
                }
                if sigma <= 0.0 {
                    return if x.ln() >= mu { 1.0 } else { 0.0 };
                }
                0.5 * (1.0 + erf((x.ln() - mu) / (sigma * std::f64::consts::SQRT_2)))
            }
            Fitted::Uniform { lo, hi } => {
                if hi <= lo {
                    return if x >= lo { 1.0 } else { 0.0 };
                }
                ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
            }
        }
    }
}

/// Abramowitz–Stegun 7.1.26 approximation of the error function
/// (|error| < 1.5e-7, ample for fit ranking).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Result of fitting one family to data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// The fitted distribution.
    pub dist: Fitted,
    /// Kolmogorov–Smirnov distance to the empirical CDF.
    pub ks: f64,
}

/// KS distance between data and a fitted CDF.
pub fn ks_distance(sorted: &[f64], dist: &Fitted) -> f64 {
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((f - hi).abs());
    }
    d
}

/// Fit all candidate families by moments and rank by KS distance
/// (best first). Returns an empty vector for fewer than 8 samples or
/// when any sample is non-finite (moments would be meaningless).
pub fn fit_all(xs: &[f64]) -> Vec<FitResult> {
    if xs.len() < 8 || xs.iter().any(|x| !x.is_finite()) {
        return Vec::new();
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    fit_sorted(&sorted, mean, var)
}

/// Fit candidates against a pre-sorted, all-finite copy with its mean
/// and population variance already computed — the shared-pass entry
/// used by `SeriesScratch` (and by [`fit_all`], so both produce
/// identical results).
pub(crate) fn fit_sorted(sorted: &[f64], mean: f64, var: f64) -> Vec<FitResult> {
    if sorted.len() < 8 {
        return Vec::new();
    }
    let std = var.sqrt();
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];

    let mut fits = vec![
        Fitted::Normal { mean, std_dev: std },
        Fitted::Uniform { lo, hi },
    ];
    if mean > 0.0 && lo >= 0.0 {
        fits.push(Fitted::Exponential { mean });
    }
    if lo > 0.0 {
        // Moment-match the lognormal: σ² = ln(1 + var/mean²).
        let sigma2 = (1.0 + var / (mean * mean)).ln();
        fits.push(Fitted::LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        });
    }

    let mut results: Vec<FitResult> = fits
        .into_iter()
        .map(|dist| FitResult {
            dist,
            ks: ks_distance(&sorted, &dist),
        })
        .collect();
    results.sort_by(|a, b| a.ks.total_cmp(&b.ks));
    results
}

/// Fit and return the best family.
pub fn best_fit(xs: &[f64]) -> Option<FitResult> {
    fit_all(xs).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_samples(mean: f64, n: usize, seed: u64) -> Vec<f64> {
        // Local deterministic LCG: analysis must not depend on simcore.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                -mean * u.ln()
            })
            .collect()
    }

    fn normal_samples(mu: f64, sigma: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let u1 = next();
                let u2 = next();
                mu + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect()
    }

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!(erf(4.0) > 0.99999);
    }

    #[test]
    fn cdf_sanity() {
        let n = Fitted::Normal {
            mean: 0.0,
            std_dev: 1.0,
        };
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(n.cdf(3.0) > 0.99);
        let e = Fitted::Exponential { mean: 2.0 };
        assert_eq!(e.cdf(-1.0), 0.0);
        assert!((e.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        let u = Fitted::Uniform { lo: 0.0, hi: 10.0 };
        assert_eq!(u.cdf(5.0), 0.5);
        assert_eq!(u.cdf(20.0), 1.0);
    }

    #[test]
    fn exponential_data_fits_exponential_best() {
        let xs = exp_samples(5.0, 4000, 7);
        let best = best_fit(&xs).unwrap();
        assert!(
            matches!(best.dist, Fitted::Exponential { .. }),
            "best was {:?}",
            best.dist
        );
        assert!(best.ks < 0.05, "ks {}", best.ks);
    }

    #[test]
    fn normal_data_fits_normal_best() {
        let xs = normal_samples(100.0, 5.0, 4000, 11);
        let best = best_fit(&xs).unwrap();
        assert!(
            matches!(best.dist, Fitted::Normal { .. } | Fitted::LogNormal { .. }),
            "best was {:?}",
            best.dist
        );
        // A tight normal far from zero: lognormal ≈ normal, both fine.
        assert!(best.ks < 0.05, "ks {}", best.ks);
    }

    #[test]
    fn too_few_samples_yields_nothing() {
        assert!(fit_all(&[1.0, 2.0, 3.0]).is_empty());
        assert!(best_fit(&[]).is_none());
    }

    #[test]
    fn non_finite_samples_yield_nothing() {
        let mut xs = vec![1.0; 16];
        xs[7] = f64::NAN;
        assert!(fit_all(&xs).is_empty());
        xs[7] = f64::INFINITY;
        assert!(fit_all(&xs).is_empty());
        assert!(best_fit(&xs).is_none());
    }

    #[test]
    fn results_sorted_by_ks() {
        let xs = exp_samples(1.0, 1000, 3);
        let all = fit_all(&xs);
        assert!(all.len() >= 3);
        for w in all.windows(2) {
            assert!(w[0].ks <= w[1].ks);
        }
    }
}
