//! Level-shift ("jump") detection in memory series.
//!
//! §4.1: "the browsing requests experience one or more jumps demanding
//! more RAM, while the bidding requests have a more smooth curve"; §4.2
//! adds that in the non-virtualized system the jumps "happen earlier in
//! time". A jump is a sustained step in the level of the series —
//! detected here by comparing the means of adjacent sliding windows,
//! derived in O(1) each from one pass of prefix sums.

use serde::{Deserialize, Serialize};

/// One detected level shift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jump {
    /// Sample index where the new level begins.
    pub index: usize,
    /// Level change (after-mean − before-mean); positive for upward
    /// jumps.
    pub magnitude: f64,
}

/// Shared jump-detection core over precomputed prefix sums
/// (`prefix[i] = Σ xs[..i]`, length n + 1): each sliding-window mean is
/// an O(1) prefix difference instead of an O(window) re-summation, so
/// the scan is O(n) total. `raw` and `out` are reused buffers; the
/// merged jumps land in `out`.
pub(crate) fn detect_jumps_prefix(
    prefix: &[f64],
    window: usize,
    threshold: f64,
    raw: &mut Vec<Jump>,
    out: &mut Vec<Jump>,
) {
    assert!(window >= 1, "window must be >= 1");
    assert!(threshold > 0.0, "threshold must be positive");
    debug_assert!(!prefix.is_empty());
    raw.clear();
    out.clear();
    let n = prefix.len() - 1;
    if n < 2 * window {
        return;
    }
    let w = window as f64;
    for i in window..=(n - window) {
        let before = (prefix[i] - prefix[i - window]) / w;
        let after = (prefix[i + window] - prefix[i]) / w;
        let delta = after - before;
        if delta.abs() >= threshold {
            raw.push(Jump {
                index: i,
                magnitude: delta,
            });
        }
    }
    // Merge runs of detections closer than one window.
    for &j in raw.iter() {
        match out.last_mut() {
            Some(last) if j.index - last.index < window => {
                if j.magnitude.abs() > last.magnitude.abs() {
                    *last = j;
                }
            }
            _ => out.push(j),
        }
    }
}

/// Detect sustained level shifts.
///
/// * `window` — samples per side used to estimate the local level;
/// * `threshold` — minimum |level change| to count as a jump, in
///   absolute units of the series.
///
/// Adjacent detections within one window are merged (the largest kept).
pub fn detect_jumps(xs: &[f64], window: usize, threshold: f64) -> Vec<Jump> {
    let mut prefix = Vec::with_capacity(xs.len() + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
        prefix.push(acc);
    }
    let mut raw = Vec::new();
    let mut merged = Vec::new();
    detect_jumps_prefix(&prefix, window, threshold, &mut raw, &mut merged);
    merged
}

/// Smoothness comparison: `true` when `a` has strictly fewer detected
/// jumps than `b` under the same parameters — the paper's browse-vs-bid
/// RAM contrast.
pub fn is_smoother(a: &[f64], b: &[f64], window: usize, threshold: f64) -> bool {
    detect_jumps(a, window, threshold).len() < detect_jumps(b, window, threshold).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series(levels: &[(usize, f64)]) -> Vec<f64> {
        let mut xs = Vec::new();
        for &(n, level) in levels {
            xs.extend(std::iter::repeat(level).take(n));
        }
        xs
    }

    #[test]
    fn detects_single_step() {
        let xs = step_series(&[(50, 100.0), (50, 200.0)]);
        let jumps = detect_jumps(&xs, 10, 50.0);
        assert_eq!(jumps.len(), 1);
        let j = jumps[0];
        assert!((45..=55).contains(&j.index), "index {}", j.index);
        assert!((j.magnitude - 100.0).abs() < 1.0);
    }

    #[test]
    fn detects_multiple_steps_and_direction() {
        let xs = step_series(&[(40, 100.0), (40, 250.0), (40, 150.0)]);
        let jumps = detect_jumps(&xs, 8, 60.0);
        assert_eq!(jumps.len(), 2);
        assert!(jumps[0].magnitude > 0.0);
        assert!(jumps[1].magnitude < 0.0);
        assert!(jumps[0].index < jumps[1].index);
    }

    #[test]
    fn flat_series_has_no_jumps() {
        let xs = vec![42.0; 200];
        assert!(detect_jumps(&xs, 10, 1.0).is_empty());
    }

    #[test]
    fn gradual_ramp_below_threshold_ignored() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
        // Window mean difference of a 0.1-slope ramp over window 10 is 1.0.
        assert!(detect_jumps(&xs, 10, 5.0).is_empty());
    }

    #[test]
    fn short_series_is_empty() {
        assert!(detect_jumps(&[1.0, 2.0, 3.0], 10, 0.5).is_empty());
    }

    #[test]
    fn smoother_comparison() {
        let smooth = step_series(&[(100, 100.0)]);
        let jumpy = step_series(&[(30, 100.0), (30, 300.0), (40, 500.0)]);
        assert!(is_smoother(&smooth, &jumpy, 8, 80.0));
        assert!(!is_smoother(&jumpy, &smooth, 8, 80.0));
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_zero_threshold() {
        detect_jumps(&[1.0; 100], 10, 0.0);
    }
}
