//! Inter-tier lag detection.
//!
//! §4.1: "there exist some lags between workload changes of the database
//! server and the web and application servers as the client requests are
//! received and processed first by the web server before being sent to
//! the back-end database server." We quantify that lag as the shift
//! maximizing the cross-correlation between the two tiers' demand
//! series.
//!
//! The production scan ([`cross_correlation_scan`] / [`find_lag`])
//! centers both series once and derives every window mean and variance
//! from prefix sums — O(1) per shift plus one fused dot product —
//! instead of re-deriving the Pearson statistics from scratch at each
//! shift. The original per-shift path is kept as
//! [`cross_correlation`] / [`find_lag_naive`], the test oracle (CL007).

use crate::summary::pearson;
use serde::{Deserialize, Serialize};

/// Result of a lag scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LagResult {
    /// Lag (in samples) of `follower` behind `leader` at the correlation
    /// peak. Positive = follower trails leader.
    pub lag_samples: i64,
    /// Correlation at the peak.
    pub correlation: f64,
}

/// Cross-correlation of `leader` and `follower` at a signed shift.
/// Positive `shift` compares `leader[t]` with `follower[t + shift]`.
///
/// **Test oracle only** (CL007): recomputes the full Pearson statistics
/// for the one requested shift. Production scans go through
/// [`cross_correlation_scan`].
pub fn cross_correlation(leader: &[f64], follower: &[f64], shift: i64) -> Option<f64> {
    let n = leader.len().min(follower.len());
    if n == 0 {
        return None;
    }
    let (a, b) = if shift >= 0 {
        let s = shift as usize;
        if s >= n {
            return None;
        }
        (&leader[..n - s], &follower[s..n])
    } else {
        let s = (-shift) as usize;
        if s >= n {
            return None;
        }
        (&leader[s..n], &follower[..n - s])
    };
    pearson(a, b)
}

/// Prefix-sum state for the all-shift Pearson scan: both series are
/// centered by their global means once, then every window sum and sum of
/// squares is an O(1) prefix-sum difference. Pearson correlation is
/// invariant under subtracting a constant from a whole series, so each
/// shift's result is algebraically identical to the naive per-window
/// computation — while the centering keeps the prefix differences
/// operating on near-zero-mean data, avoiding the catastrophic
/// cancellation a raw Σxy − ΣxΣy/n form would suffer on large-mean
/// series.
struct PairScan {
    ca: Vec<f64>,
    cb: Vec<f64>,
    /// Prefix sums of `ca` / `ca²` / `cb` / `cb²` (length n + 1).
    sa: Vec<f64>,
    saa: Vec<f64>,
    sb: Vec<f64>,
    sbb: Vec<f64>,
}

impl PairScan {
    fn new(leader: &[f64], follower: &[f64], n: usize) -> Self {
        let ma = leader[..n].iter().sum::<f64>() / n as f64;
        let mb = follower[..n].iter().sum::<f64>() / n as f64;
        let ca: Vec<f64> = leader[..n].iter().map(|x| x - ma).collect();
        let cb: Vec<f64> = follower[..n].iter().map(|x| x - mb).collect();
        let prefix = |xs: &[f64], sq: bool| -> Vec<f64> {
            let mut out = Vec::with_capacity(n + 1);
            out.push(0.0);
            let mut acc = 0.0;
            for &x in xs {
                acc += if sq { x * x } else { x };
                out.push(acc);
            }
            out
        };
        PairScan {
            sa: prefix(&ca, false),
            saa: prefix(&ca, true),
            sb: prefix(&cb, false),
            sbb: prefix(&cb, true),
            ca,
            cb,
        }
    }

    /// Pearson at one signed shift: O(1) window statistics from the
    /// prefix sums plus one fused dot product over the overlap.
    fn at(&self, shift: i64) -> Option<f64> {
        let n = self.ca.len();
        let s = shift.unsigned_abs() as usize;
        if s >= n {
            return None;
        }
        let k = n - s;
        if k < 2 {
            return None;
        }
        // Positive shift: leader window starts at 0, follower at s;
        // negative: the reverse.
        let (oa, ob) = if shift >= 0 { (0, s) } else { (s, 0) };
        let sum_x = self.sa[oa + k] - self.sa[oa];
        let sxx = self.saa[oa + k] - self.saa[oa];
        let sum_y = self.sb[ob + k] - self.sb[ob];
        let syy = self.sbb[ob + k] - self.sbb[ob];
        let xy: f64 = self.ca[oa..oa + k]
            .iter()
            .zip(&self.cb[ob..ob + k])
            .map(|(x, y)| x * y)
            .sum();
        let kf = k as f64;
        let cov = xy - sum_x * sum_y / kf;
        let va = sxx - sum_x * sum_x / kf;
        let vb = syy - sum_y * sum_y / kf;
        // Mirror `pearson`'s constant-window guard; the prefix-sum form
        // can also round a constant window to a tiny negative variance.
        if va <= 0.0 || vb <= 0.0 || !va.is_normal() || !vb.is_normal() {
            return None;
        }
        Some(cov / (va.sqrt() * vb.sqrt()))
    }
}

/// Cross-correlation at every shift in `[-max_lag, +max_lag]`, in one
/// pass of prefix sums. Returns `(shift, correlation)` pairs in
/// ascending shift order; a shift is `None` exactly when the naive
/// [`cross_correlation`] would return `None` (no overlap, overlap < 2,
/// or a constant window).
pub fn cross_correlation_scan(
    leader: &[f64],
    follower: &[f64],
    max_lag: usize,
) -> Vec<(i64, Option<f64>)> {
    let shifts = -(max_lag as i64)..=(max_lag as i64);
    let n = leader.len().min(follower.len());
    if n == 0 {
        return shifts.map(|s| (s, None)).collect();
    }
    let scan = PairScan::new(leader, follower, n);
    shifts.map(|s| (s, scan.at(s))).collect()
}

/// Scan shifts in `[-max_lag, +max_lag]` and return the peak.
pub fn find_lag(leader: &[f64], follower: &[f64], max_lag: usize) -> Option<LagResult> {
    let n = leader.len().min(follower.len());
    if n == 0 {
        return None;
    }
    let scan = PairScan::new(leader, follower, n);
    let mut best: Option<LagResult> = None;
    for shift in -(max_lag as i64)..=(max_lag as i64) {
        if let Some(c) = scan.at(shift) {
            let better = match best {
                None => true,
                Some(b) => c > b.correlation,
            };
            if better {
                best = Some(LagResult {
                    lag_samples: shift,
                    correlation: c,
                });
            }
        }
    }
    best
}

/// The pre-prefix-sum lag scan, re-deriving Pearson per shift through
/// [`cross_correlation`] — O(n) mean/variance work at every shift.
///
/// **Test oracle only** (CL007): kept verbatim so proptests and the
/// analysis benchmark can race the prefix-sum scan against the original
/// implementation.
pub fn find_lag_naive(leader: &[f64], follower: &[f64], max_lag: usize) -> Option<LagResult> {
    let mut best: Option<LagResult> = None;
    for shift in -(max_lag as i64)..=(max_lag as i64) {
        if let Some(c) = cross_correlation(leader, follower, shift) {
            let better = match best {
                None => true,
                Some(b) => c > b.correlation,
            };
            if better {
                best = Some(LagResult {
                    lag_samples: shift,
                    correlation: c,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noisy signal and the same signal delayed by `d` samples.
    fn delayed_pair(d: usize, n: usize) -> (Vec<f64>, Vec<f64>) {
        let base: Vec<f64> = (0..n + d)
            .map(|i| {
                let t = i as f64;
                (t / 13.0).sin() * 10.0 + (t / 47.0).cos() * 4.0
            })
            .collect();
        let leader = base[d..].to_vec();
        let follower = base[..n].to_vec();
        (leader, follower)
    }

    #[test]
    fn detects_known_delay() {
        let (leader, follower) = delayed_pair(3, 400);
        let r = find_lag(&leader, &follower, 10).unwrap();
        assert_eq!(r.lag_samples, 3);
        assert!(r.correlation > 0.99);
    }

    #[test]
    fn zero_lag_for_identical_series() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 / 7.0).sin()).collect();
        let r = find_lag(&xs, &xs, 5).unwrap();
        assert_eq!(r.lag_samples, 0);
        assert!((r.correlation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lag_when_follower_leads() {
        let (leader, follower) = delayed_pair(4, 400);
        // Swap roles: now the "leader" argument actually trails.
        let r = find_lag(&follower, &leader, 10).unwrap();
        assert_eq!(r.lag_samples, -4);
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(find_lag(&[], &[], 5).is_none());
        assert!(cross_correlation(&[1.0, 2.0], &[1.0, 2.0], 5).is_none());
        let scan = cross_correlation_scan(&[1.0, 2.0], &[1.0, 2.0], 5);
        assert_eq!(scan.len(), 11);
        assert!(scan
            .iter()
            .filter(|(s, _)| s.unsigned_abs() >= 2)
            .all(|(_, c)| c.is_none()));
    }

    #[test]
    fn scan_matches_naive_cross_correlation_at_every_shift() {
        let (leader, follower) = delayed_pair(5, 300);
        // Add a large common offset (mean/σ ≈ 1e5): the scan must stay
        // accurate on large-mean series, where a raw Σxy − ΣxΣy/n form
        // would cancel badly.
        let leader: Vec<f64> = leader.iter().map(|x| x + 1e6).collect();
        let follower: Vec<f64> = follower.iter().map(|x| x + 1e6).collect();
        for (shift, got) in cross_correlation_scan(&leader, &follower, 20) {
            let want = cross_correlation(&leader, &follower, shift);
            match (got, want) {
                (Some(g), Some(w)) => {
                    assert!((g - w).abs() < 1e-9, "shift {shift}: scan {g} vs naive {w}")
                }
                (g, w) => assert_eq!(g.is_some(), w.is_some(), "shift {shift}: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn fast_and_naive_find_lag_agree() {
        let (leader, follower) = delayed_pair(7, 500);
        let fast = find_lag(&leader, &follower, 12).unwrap();
        let naive = find_lag_naive(&leader, &follower, 12).unwrap();
        assert_eq!(fast.lag_samples, naive.lag_samples);
        assert!((fast.correlation - naive.correlation).abs() < 1e-9);
    }
}
