//! Inter-tier lag detection.
//!
//! §4.1: "there exist some lags between workload changes of the database
//! server and the web and application servers as the client requests are
//! received and processed first by the web server before being sent to
//! the back-end database server." We quantify that lag as the shift
//! maximizing the cross-correlation between the two tiers' demand
//! series.

use crate::summary::pearson;
use serde::{Deserialize, Serialize};

/// Result of a lag scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LagResult {
    /// Lag (in samples) of `follower` behind `leader` at the correlation
    /// peak. Positive = follower trails leader.
    pub lag_samples: i64,
    /// Correlation at the peak.
    pub correlation: f64,
}

/// Cross-correlation of `leader` and `follower` at a signed shift.
/// Positive `shift` compares `leader[t]` with `follower[t + shift]`.
pub fn cross_correlation(leader: &[f64], follower: &[f64], shift: i64) -> Option<f64> {
    let n = leader.len().min(follower.len());
    if n == 0 {
        return None;
    }
    let (a, b) = if shift >= 0 {
        let s = shift as usize;
        if s >= n {
            return None;
        }
        (&leader[..n - s], &follower[s..n])
    } else {
        let s = (-shift) as usize;
        if s >= n {
            return None;
        }
        (&leader[s..n], &follower[..n - s])
    };
    pearson(a, b)
}

/// Scan shifts in `[-max_lag, +max_lag]` and return the peak.
pub fn find_lag(leader: &[f64], follower: &[f64], max_lag: usize) -> Option<LagResult> {
    let mut best: Option<LagResult> = None;
    for shift in -(max_lag as i64)..=(max_lag as i64) {
        if let Some(c) = cross_correlation(leader, follower, shift) {
            let better = match best {
                None => true,
                Some(b) => c > b.correlation,
            };
            if better {
                best = Some(LagResult {
                    lag_samples: shift,
                    correlation: c,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noisy signal and the same signal delayed by `d` samples.
    fn delayed_pair(d: usize, n: usize) -> (Vec<f64>, Vec<f64>) {
        let base: Vec<f64> = (0..n + d)
            .map(|i| {
                let t = i as f64;
                (t / 13.0).sin() * 10.0 + (t / 47.0).cos() * 4.0
            })
            .collect();
        let leader = base[d..].to_vec();
        let follower = base[..n].to_vec();
        (leader, follower)
    }

    #[test]
    fn detects_known_delay() {
        let (leader, follower) = delayed_pair(3, 400);
        let r = find_lag(&leader, &follower, 10).unwrap();
        assert_eq!(r.lag_samples, 3);
        assert!(r.correlation > 0.99);
    }

    #[test]
    fn zero_lag_for_identical_series() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 / 7.0).sin()).collect();
        let r = find_lag(&xs, &xs, 5).unwrap();
        assert_eq!(r.lag_samples, 0);
        assert!((r.correlation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lag_when_follower_leads() {
        let (leader, follower) = delayed_pair(4, 400);
        // Swap roles: now the "leader" argument actually trails.
        let r = find_lag(&follower, &leader, 10).unwrap();
        assert_eq!(r.lag_samples, -4);
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(find_lag(&[], &[], 5).is_none());
        assert!(cross_correlation(&[1.0, 2.0], &[1.0, 2.0], 5).is_none());
    }
}
