//! Incremental sliding-window characterization kernels.
//!
//! The batch pipeline recomputes every statistic from the full series
//! on each call — O(W log W) per profile once the sort and the FFT are
//! counted. That is the wrong shape for live monitoring, where one new
//! sample arrives per 2 s tick and the window shifts by one: almost all
//! of the work is recomputation of unchanged state. [`OnlineProfiler`]
//! replaces the per-tick recompute with incremental updates:
//!
//! * **sliding moments** — Welford add plus the exact algebraic evict
//!   (`mean' = (n·mean − x)/(n−1)`, `m2' = m2 − (x−mean')(x−mean)`),
//!   O(1) per sample;
//! * **sliding DFT periodogram** — every bin `k ∈ 1..=W/2` advances by
//!   one complex rotation per sample
//!   (`S_k' = (S_k − x_old + x_new)·e^{+2πik/W}`), so the full spectrum
//!   costs O(W) rotations per tick instead of an O(W log W) transform;
//!   works for any window length (no power-of-two or Bluestein padding);
//! * **sliding autocorrelation** — one co-moment add/evict per
//!   configured lag, pairing the new sample with its lag-`k` ring
//!   neighbor;
//! * **rolling jump candidates** — the two `jump_window`-mean deltas of
//!   the batch detector, computed once per sample from raw ring values
//!   (candidates are immutable once their after-window completes) and
//!   replayed against the emission-time threshold.
//!
//! **Drift bounding.** The evict updates are exact algebra but not
//! exact floating point; error accumulates linearly in the number of
//! evictions. Two deamortized rescans bound it: every push directly
//! recomputes *one* DFT bin from the ring (full spectrum cycle every
//! W/2 pushes), and every W pushes the moments, sum and lag co-moments
//! are recomputed in batch summation order. The residual error is
//! ~W·ε relative — orders of magnitude inside the 1e-9 oracle
//! tolerance the tests pin.
//!
//! **Oracle strategy.** The batch engines stay authoritative: the tests
//! in this module drive random series through both paths and require
//! agreement within 1e-9 on every emitted statistic, and the `online`
//! benchmark re-asserts parity before timing. Non-finite samples enter
//! the accumulators as 0.0 (with a resident count, so the state heals
//! as they evict) and suppress emission exactly like `summarize`'s
//! `Option` guard.

use crate::jumps::Jump;
use crate::spectrum::{self, Peak};
use crate::summary::{self, Summary};
use cloudchar_simcore::stats::{Comoments, Moments, WindowRing};
use serde::{Deserialize, Serialize};

/// Non-finite samples are carried in the incremental accumulators as
/// 0.0 so the state never poisons; a resident count gates emission.
fn sanitize(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Sliding co-moment accumulator over `(x[i], x[i+k])` pairs: the
/// incremental counterpart of [`Comoments::of`], with an exact
/// algebraic evict.
#[derive(Debug, Clone, Copy, Default)]
struct SlideCo {
    count: usize,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl SlideCo {
    fn add(&mut self, x: f64, y: f64) {
        self.count += 1;
        let n = self.count as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        self.cxy += dx * (y - self.mean_y);
        self.m2x += dx * (x - self.mean_x);
        self.m2y += dy * (y - self.mean_y);
    }

    fn evict(&mut self, x: f64, y: f64) {
        if self.count <= 1 {
            *self = SlideCo::default();
            return;
        }
        let n = self.count as f64;
        let mx_prev = (n * self.mean_x - x) / (n - 1.0);
        let my_prev = (n * self.mean_y - y) / (n - 1.0);
        self.cxy -= (x - mx_prev) * (y - self.mean_y);
        self.m2x -= (x - mx_prev) * (x - self.mean_x);
        self.m2y -= (y - my_prev) * (y - self.mean_y);
        self.mean_x = mx_prev;
        self.mean_y = my_prev;
        self.count -= 1;
    }

    /// View as batch [`Comoments`]. Drift can push an exactly-zero M2
    /// a hair negative; clamping restores the batch invariant (M2 ≥ 0)
    /// so `pearson`'s constant-series guard keeps firing.
    fn comoments(&self) -> Comoments {
        Comoments {
            count: self.count,
            mean_x: self.mean_x,
            mean_y: self.mean_y,
            m2x: self.m2x.max(0.0),
            m2y: self.m2y.max(0.0),
            cxy: self.cxy,
            all_finite: true,
        }
    }
}

/// One live window snapshot: what the batch per-series profile reports,
/// emitted from incremental state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineProfile {
    /// Samples pushed into the profiler so far (window position).
    pub samples_seen: u64,
    /// Samples currently in the window (`min(samples_seen, window)`).
    pub window_len: usize,
    /// Descriptive statistics of the window; `None` while the window is
    /// empty or holds non-finite samples (the `summarize` guard).
    pub summary: Option<Summary>,
    /// Autocorrelation per configured lag, `autocorrelation` semantics.
    pub autocorr: Vec<(usize, Option<f64>)>,
    /// Merged level shifts inside the window (indices window-relative).
    pub jumps: Vec<Jump>,
    /// Dominant periodic component of the full window, if any.
    pub dominant: Option<Peak>,
}

/// Incremental per-series profiler over a fixed-length sliding window.
///
/// Feed one sample per tick with [`push`](OnlineProfiler::push) (O(W)
/// rotations, no allocation); snapshot the current window with
/// [`profile_into`](OnlineProfiler::profile_into) whenever a profile is
/// wanted. Periodicity is reported once the window is full — the
/// sliding DFT is defined over exactly `window` samples.
#[derive(Debug, Clone)]
pub struct OnlineProfiler {
    window: usize,
    lags: Vec<usize>,
    jump_window: usize,
    min_power: f64,
    max_peaks: usize,

    ring: WindowRing,
    /// Jump candidate deltas keyed by absolute sample index: the newest
    /// entry is the candidate at `samples_seen − jump_window`.
    cands: WindowRing,
    total: u64,
    /// Non-finite samples currently resident in the window.
    nonfinite: usize,

    // Sliding moments of the sanitized window (count = ring.len()).
    mean: f64,
    m2: f64,
    sum: f64,
    co: Vec<SlideCo>,

    // Sliding DFT bins k = 1..=window/2 and the shared twiddle table
    // cos/sin(2πj/window).
    bins_re: Vec<f64>,
    bins_im: Vec<f64>,
    cos_t: Vec<f64>,
    sin_t: Vec<f64>,
    /// Next bin to deamortized-rescan (cycles 1..=window/2 once full).
    refresh_k: usize,
    /// Pushes since the last full moments/co-moments rescan.
    since_rescan: usize,

    // Emission scratch, reused across snapshots.
    sorted: Vec<f64>,
    peaks: Vec<Peak>,
    ranked: Vec<Peak>,
    raw_jumps: Vec<Jump>,
}

impl OnlineProfiler {
    /// Profiler over a `window`-sample sliding window with the batch
    /// characterization defaults: lag set `[1]`, jump window 15, peak
    /// policy (min power 0.10, 1 peak).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be >= 1");
        let kbins = window / 2;
        let mut cos_t = Vec::with_capacity(window);
        let mut sin_t = Vec::with_capacity(window);
        for j in 0..window {
            let angle = std::f64::consts::TAU * j as f64 / window as f64;
            cos_t.push(angle.cos());
            sin_t.push(angle.sin());
        }
        OnlineProfiler {
            window,
            lags: vec![1],
            jump_window: 15,
            min_power: 0.10,
            max_peaks: 1,
            ring: WindowRing::new(window),
            cands: WindowRing::new(window),
            total: 0,
            nonfinite: 0,
            mean: 0.0,
            m2: 0.0,
            sum: 0.0,
            co: vec![SlideCo::default()],
            bins_re: vec![0.0; kbins],
            bins_im: vec![0.0; kbins],
            cos_t,
            sin_t,
            refresh_k: 0,
            since_rescan: 0,
            sorted: Vec::new(),
            peaks: Vec::new(),
            ranked: Vec::new(),
            raw_jumps: Vec::new(),
        }
    }

    /// Replace the autocorrelation lag set (each lag ≥ 1).
    pub fn with_lags(mut self, lags: &[usize]) -> Self {
        assert!(lags.iter().all(|&k| k >= 1), "lags must be >= 1");
        assert!(self.total == 0, "configure before pushing samples");
        self.lags = lags.to_vec();
        self.co = vec![SlideCo::default(); lags.len()];
        self
    }

    /// Replace the jump detection half-window (≥ 1 samples per side).
    pub fn with_jump_window(mut self, jump_window: usize) -> Self {
        assert!(jump_window >= 1, "jump window must be >= 1");
        assert!(self.total == 0, "configure before pushing samples");
        self.jump_window = jump_window;
        self
    }

    /// Replace the peak ranking policy (minimum normalized power and
    /// maximum reported peaks).
    pub fn with_peak_policy(mut self, min_power: f64, max_peaks: usize) -> Self {
        self.min_power = min_power;
        self.max_peaks = max_peaks;
        self
    }

    /// Window capacity in samples.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether the window is full (periodicity becomes available).
    pub fn is_full(&self) -> bool {
        self.ring.is_full()
    }

    /// Samples pushed over the profiler's lifetime.
    pub fn samples_seen(&self) -> u64 {
        self.total
    }

    /// Forget all samples, keeping configuration and buffers.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.cands.clear();
        self.total = 0;
        self.nonfinite = 0;
        self.mean = 0.0;
        self.m2 = 0.0;
        self.sum = 0.0;
        for c in &mut self.co {
            *c = SlideCo::default();
        }
        self.bins_re.iter_mut().for_each(|b| *b = 0.0);
        self.bins_im.iter_mut().for_each(|b| *b = 0.0);
        self.refresh_k = 0;
        self.since_rescan = 0;
    }

    /// Absorb one sample: evict-and-add every incremental accumulator,
    /// advance the sliding DFT, record the newest jump candidate, and
    /// run the deamortized drift rescans. No allocation.
    pub fn push(&mut self, x: f64) {
        let xs = sanitize(x);
        let w = self.window;
        self.total += 1;
        let evicted = self.ring.push(x);
        let len = self.ring.len();

        if !x.is_finite() {
            self.nonfinite += 1;
        }
        if let Some(o) = evicted {
            if !o.is_finite() {
                self.nonfinite -= 1;
            }
        }

        // Sliding moments: exact-algebra evict, then Welford add.
        if let Some(o) = evicted {
            let os = sanitize(o);
            if w == 1 {
                self.mean = 0.0;
                self.m2 = 0.0;
            } else {
                let n = w as f64;
                let mean_prev = (n * self.mean - os) / (n - 1.0);
                self.m2 -= (os - mean_prev) * (os - self.mean);
                self.mean = mean_prev;
            }
            self.sum -= os;
        }
        let n = len as f64;
        let d = xs - self.mean;
        self.mean += d / n;
        self.m2 += d * (xs - self.mean);
        self.sum += xs;

        // Sliding co-moments per lag. After the push the window is
        // new[0..len]; the evicted pair was (old[0], old[k]) =
        // (evicted, new[k−1]) and the added pair is
        // (new[len−1−k], x_new).
        for (i, &k) in self.lags.iter().enumerate() {
            if len > k {
                if let Some(o) = evicted {
                    let y = sanitize(self.ring.get(k - 1));
                    self.co[i].evict(sanitize(o), y);
                }
                let px = sanitize(self.ring.get(len - 1 - k));
                self.co[i].add(px, xs);
            }
        }

        // Sliding DFT: every bin absorbs (x_new − x_old) then rotates
        // one sample forward. During warm-up the implicit window is
        // zero-padded on the old side, so x_old is 0.
        let diff = xs - sanitize(evicted.unwrap_or(0.0));
        for i in 0..self.bins_re.len() {
            let re = self.bins_re[i] + diff;
            let im = self.bins_im[i];
            let (c, s) = (self.cos_t[i + 1], self.sin_t[i + 1]);
            self.bins_re[i] = re * c - im * s;
            self.bins_im[i] = re * s + im * c;
        }

        // Newest jump candidate: the delta of the two adjacent
        // jump-window means ending at this sample, from raw ring values
        // (drift-free, immutable once computed).
        let wj = self.jump_window;
        if len >= 2 * wj {
            let mut before = 0.0;
            for i in (len - 2 * wj)..(len - wj) {
                before += self.ring.get(i);
            }
            let mut after = 0.0;
            for i in (len - wj)..len {
                after += self.ring.get(i);
            }
            let delta = after / wj as f64 - before / wj as f64;
            self.cands.push(delta);
        }

        // Deamortized rescans: one DFT bin per push once the window is
        // full (full spectrum cycle every window/2 pushes) ...
        if self.ring.is_full() && !self.bins_re.is_empty() {
            self.refresh_k = if self.refresh_k >= self.bins_re.len() {
                1
            } else {
                self.refresh_k + 1
            };
            self.rescan_bin(self.refresh_k);
        }
        // ... and a full moments/co-moments rescan every window pushes.
        self.since_rescan += 1;
        if self.since_rescan >= w {
            self.rescan_moments();
            self.since_rescan = 0;
        }
    }

    /// Directly recompute DFT bin `k` from the ring (batch phase
    /// convention: sample 0 at the oldest slot), replacing the rotated
    /// value and discarding its accumulated drift.
    fn rescan_bin(&mut self, k: usize) {
        let w = self.window;
        let mut re = 0.0;
        let mut im = 0.0;
        let mut idx = 0usize;
        for v in self.ring.iter() {
            let x = sanitize(v);
            re += x * self.cos_t[idx];
            im -= x * self.sin_t[idx];
            idx += k;
            if idx >= w {
                idx -= w;
            }
        }
        self.bins_re[k - 1] = re;
        self.bins_im[k - 1] = im;
    }

    /// Recompute moments, sum and every lag co-moment in batch
    /// summation order (oldest → newest), zeroing accumulated drift.
    fn rescan_moments(&mut self) {
        let mut count = 0usize;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut sum = 0.0;
        for v in self.ring.iter() {
            let x = sanitize(v);
            count += 1;
            let d = x - mean;
            mean += d / count as f64;
            m2 += d * (x - mean);
            sum += x;
        }
        self.mean = mean;
        self.m2 = m2;
        self.sum = sum;
        let len = self.ring.len();
        for (i, &k) in self.lags.iter().enumerate() {
            let mut co = SlideCo::default();
            if len > k {
                for j in 0..(len - k) {
                    co.add(sanitize(self.ring.get(j)), sanitize(self.ring.get(j + k)));
                }
            }
            self.co[i] = co;
        }
    }

    /// Batch-order co-moments over raw ring pairs — the fallback used
    /// while non-finite samples are resident, so NaN propagation (and
    /// the resulting `None`) matches the batch path exactly.
    fn ring_comoments(&self, k: usize) -> Comoments {
        let len = self.ring.len();
        let mut count = 0usize;
        let mut mean_x = 0.0;
        let mut mean_y = 0.0;
        let mut m2x = 0.0;
        let mut m2y = 0.0;
        let mut cxy = 0.0;
        let mut all_finite = true;
        if len > k {
            for i in 0..(len - k) {
                let x = self.ring.get(i);
                let y = self.ring.get(i + k);
                count += 1;
                let n = count as f64;
                let dx = x - mean_x;
                let dy = y - mean_y;
                mean_x += dx / n;
                mean_y += dy / n;
                cxy += dx * (y - mean_y);
                m2x += dx * (x - mean_x);
                m2y += dy * (y - mean_y);
                all_finite &= x.is_finite() && y.is_finite();
            }
        }
        Comoments {
            count,
            mean_x,
            mean_y,
            m2x,
            m2y,
            cxy,
            all_finite,
        }
    }

    /// Snapshot the current window into `out`, reusing its buffers —
    /// allocation-free once the vectors are warm. Summary and jumps are
    /// suppressed (like `summarize`) while non-finite samples are
    /// resident; periodicity additionally requires a full window.
    pub fn profile_into(&mut self, out: &mut OnlineProfile) {
        let len = self.ring.len();
        out.samples_seen = self.total;
        out.window_len = len;
        out.summary = None;
        out.autocorr.clear();
        out.jumps.clear();
        out.dominant = None;
        let clean = self.nonfinite == 0;

        if clean && len > 0 {
            self.sorted.clear();
            self.sorted.extend(self.ring.iter());
            self.sorted.sort_by(f64::total_cmp);
            let m = Moments {
                count: len,
                mean: self.sum / len as f64,
                m2: self.m2.max(0.0),
                sum: self.sum,
                min: self.sorted[0],
                max: self.sorted[len - 1],
                all_finite: true,
            };
            out.summary = Some(summary::summary_from_parts(&m, &self.sorted));
        }

        for (i, &k) in self.lags.iter().enumerate() {
            let r = if len < k + 2 {
                None
            } else if clean {
                self.co[i].comoments().pearson()
            } else {
                self.ring_comoments(k).pearson()
            };
            out.autocorr.push((k, r));
        }

        if clean && self.ring.is_full() {
            let w = self.window;
            let total_power = self.m2.max(0.0);
            self.peaks.clear();
            if w >= 8 && total_power > 0.0 {
                for (i, (&re, &im)) in self.bins_re.iter().zip(&self.bins_im).enumerate() {
                    let k = i + 1;
                    let p = re * re + im * im;
                    self.peaks.push(Peak {
                        period_samples: w as f64 / k as f64,
                        power: (if 2 * k == w { 1.0 } else { 2.0 }) * p / (w as f64 * total_power),
                    });
                }
            }
            spectrum::rank_peaks(
                &self.peaks,
                self.min_power,
                self.max_peaks,
                &mut self.ranked,
            );
            out.dominant = self.ranked.first().copied();
        }

        if let Some(s) = &out.summary {
            let threshold = (s.mean.abs() * 0.10).max(1e-9);
            let wj = self.jump_window;
            if len >= 2 * wj {
                self.raw_jumps.clear();
                let newest = self.cands.len() - 1;
                for i in wj..=(len - wj) {
                    // Candidate for window index i: the newest candidate
                    // sits at window index len − wj.
                    let idx = newest - ((len - wj) - i);
                    let delta = self.cands.get(idx);
                    if delta.abs() >= threshold {
                        self.raw_jumps.push(Jump {
                            index: i,
                            magnitude: delta,
                        });
                    }
                }
                for &j in &self.raw_jumps {
                    match out.jumps.last_mut() {
                        Some(last) if j.index - last.index < wj => {
                            if j.magnitude.abs() > last.magnitude.abs() {
                                *last = j;
                            }
                        }
                        _ => out.jumps.push(j),
                    }
                }
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`profile_into`](OnlineProfiler::profile_into).
    pub fn profile(&mut self) -> OnlineProfile {
        let mut out = OnlineProfile::default();
        self.profile_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeriesScratch;

    /// House pseudo-noise series: offset sine plus noise plus a level
    /// step after the midpoint — the same recipe the scratch tests use.
    fn series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                100.0
                    + 20.0 * (i as f64 * std::f64::consts::TAU / 30.0).sin()
                    + 5.0 * noise
                    + if i > n / 2 { 40.0 } else { 0.0 }
            })
            .collect()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    /// Batch reference profile of one window slice, replicating the
    /// characterization defaults (`profile_loaded` semantics).
    fn batch_profile(
        scratch: &mut SeriesScratch,
        xs: &[f64],
        lags: &[usize],
        jump_window: usize,
        min_power: f64,
        max_peaks: usize,
    ) -> (Option<Summary>, Vec<Option<f64>>, Vec<Jump>, Option<Peak>) {
        scratch.load(xs);
        let summary = scratch.summary();
        let autocorr: Vec<Option<f64>> = lags.iter().map(|&k| scratch.autocorrelation(k)).collect();
        let jumps = match &summary {
            Some(s) => {
                let threshold = (s.mean.abs() * 0.10).max(1e-9);
                scratch.detect_jumps(jump_window, threshold).to_vec()
            }
            None => Vec::new(),
        };
        let dominant = scratch
            .dominant_periods(min_power, max_peaks)
            .first()
            .copied();
        (summary, autocorr, jumps, dominant)
    }

    fn assert_profile_matches(
        online: &OnlineProfile,
        batch: &(Option<Summary>, Vec<Option<f64>>, Vec<Jump>, Option<Peak>),
        full: bool,
        ctx: &str,
    ) {
        let (bs, bac, bj, bd) = batch;
        match (&online.summary, bs) {
            (Some(o), Some(b)) => {
                assert_eq!(o.n, b.n, "{ctx}: n");
                for (name, ov, bv) in [
                    ("mean", o.mean, b.mean),
                    ("variance", o.variance, b.variance),
                    ("std_dev", o.std_dev, b.std_dev),
                    ("cv", o.cv, b.cv),
                    ("min", o.min, b.min),
                    ("max", o.max, b.max),
                    ("p50", o.p50, b.p50),
                    ("p95", o.p95, b.p95),
                    ("total", o.total, b.total),
                ] {
                    assert!(close(ov, bv), "{ctx}: summary.{name} {ov} vs {bv}");
                }
            }
            (None, None) => {}
            (o, b) => panic!("{ctx}: summary presence {} vs {}", o.is_some(), b.is_some()),
        }
        assert_eq!(online.autocorr.len(), bac.len(), "{ctx}: lag count");
        for ((k, oa), ba) in online.autocorr.iter().zip(bac) {
            match (oa, ba) {
                (Some(ov), Some(bv)) => {
                    assert!(close(*ov, *bv), "{ctx}: autocorr[{k}] {ov} vs {bv}")
                }
                (None, None) => {}
                (o, b) => panic!(
                    "{ctx}: autocorr[{k}] presence {} vs {}",
                    o.is_some(),
                    b.is_some()
                ),
            }
        }
        assert_eq!(online.jumps.len(), bj.len(), "{ctx}: jump count");
        for (oj, bjj) in online.jumps.iter().zip(bj) {
            assert_eq!(oj.index, bjj.index, "{ctx}: jump index");
            assert!(
                close(oj.magnitude, bjj.magnitude),
                "{ctx}: jump magnitude {} vs {}",
                oj.magnitude,
                bjj.magnitude
            );
        }
        // Periodicity is defined only over full windows online.
        if full {
            match (&online.dominant, bd) {
                (Some(op), Some(bp)) => {
                    assert_eq!(op.period_samples, bp.period_samples, "{ctx}: period");
                    assert!(
                        close(op.power, bp.power),
                        "{ctx}: power {} vs {}",
                        op.power,
                        bp.power
                    );
                }
                (None, None) => {}
                (o, b) => panic!(
                    "{ctx}: dominant presence {} vs {}",
                    o.is_some(),
                    b.is_some()
                ),
            }
        } else {
            assert!(online.dominant.is_none(), "{ctx}: partial-window spectrum");
        }
    }

    /// The core parity property: at every push, online ≡ batch over the
    /// trailing window — through warm-up, the first eviction and deep
    /// into steady state; window = 1 and window = len included.
    #[test]
    fn online_matches_batch_at_every_push() {
        let mut scratch = SeriesScratch::new();
        for (seed, n) in [(1u64, 180usize), (7, 120)] {
            let xs = series(n, seed);
            for window in [1usize, 7, 32, 60, n] {
                let mut p = OnlineProfiler::new(window);
                let mut out = OnlineProfile::default();
                for t in 0..n {
                    p.push(xs[t]);
                    p.profile_into(&mut out);
                    let lo = (t + 1).saturating_sub(window);
                    let slice = &xs[lo..=t];
                    assert_eq!(out.window_len, slice.len());
                    assert_eq!(out.samples_seen, (t + 1) as u64);
                    let batch = batch_profile(&mut scratch, slice, &[1], 15, 0.10, 1);
                    assert_profile_matches(
                        &out,
                        &batch,
                        slice.len() == window,
                        &format!("seed {seed} window {window} t {t}"),
                    );
                }
            }
        }
    }

    /// Multi-lag autocorrelation parity across eviction boundaries.
    #[test]
    fn multi_lag_autocorrelation_matches_batch() {
        let xs = series(150, 11);
        let lags = [1usize, 2, 5, 30];
        let window = 48;
        let mut p = OnlineProfiler::new(window).with_lags(&lags);
        let mut out = OnlineProfile::default();
        let mut scratch = SeriesScratch::new();
        for t in 0..xs.len() {
            p.push(xs[t]);
            p.profile_into(&mut out);
            let lo = (t + 1).saturating_sub(window);
            scratch.load(&xs[lo..=t]);
            for (i, &k) in lags.iter().enumerate() {
                let (ok, ov) = out.autocorr[i];
                assert_eq!(ok, k);
                let bv = scratch.autocorrelation(k);
                match (ov, bv) {
                    (Some(a), Some(b)) => assert!(close(a, b), "t {t} lag {k}: {a} vs {b}"),
                    (None, None) => {}
                    (a, b) => panic!("t {t} lag {k}: {} vs {}", a.is_some(), b.is_some()),
                }
            }
        }
    }

    /// A constant run must stay degenerate through evictions: variance
    /// 0, no autocorrelation, no spectrum, no jumps — exactly as batch.
    #[test]
    fn constant_run_stays_degenerate() {
        let window = 40;
        let mut p = OnlineProfiler::new(window);
        let mut out = OnlineProfile::default();
        let mut scratch = SeriesScratch::new();
        let xs = vec![5.0; 130];
        for t in 0..xs.len() {
            p.push(xs[t]);
            p.profile_into(&mut out);
            let s = out.summary.as_ref().expect("constant summary");
            assert_eq!(s.mean, 5.0, "t {t}");
            assert_eq!(s.variance, 0.0, "t {t}");
            assert_eq!(out.autocorr[0].1, None, "t {t}");
            assert!(out.dominant.is_none(), "t {t}");
            assert!(out.jumps.is_empty(), "t {t}");
            let lo = (t + 1).saturating_sub(window);
            let batch = batch_profile(&mut scratch, &xs[lo..=t], &[1], 15, 0.10, 1);
            assert_profile_matches(&out, &batch, t + 1 >= window, &format!("t {t}"));
        }
    }

    /// Non-finite samples suppress emission exactly like `summarize`'s
    /// guard, and the incremental state heals once they evict.
    #[test]
    fn nan_guard_matches_summarize_and_heals() {
        let window = 24;
        let mut xs = series(100, 3);
        xs[40] = f64::NAN;
        xs[41] = f64::INFINITY;
        let mut p = OnlineProfiler::new(window);
        let mut out = OnlineProfile::default();
        let mut scratch = SeriesScratch::new();
        for t in 0..xs.len() {
            p.push(xs[t]);
            p.profile_into(&mut out);
            let lo = (t + 1).saturating_sub(window);
            let slice = &xs[lo..=t];
            let dirty = slice.iter().any(|x| !x.is_finite());
            assert_eq!(out.summary.is_none(), dirty, "t {t}");
            let batch = batch_profile(&mut scratch, slice, &[1], 15, 0.10, 1);
            assert_profile_matches(&out, &batch, slice.len() == window, &format!("nan t {t}"));
        }
        // The run ends clean: the final window profiles normally.
        assert!(out.summary.is_some());
    }

    /// Drift regression: tens of thousands of evictions without an
    /// external reload must stay within the 1e-9 oracle envelope — the
    /// deamortized rescans are what bound the error.
    #[test]
    fn deamortized_rescan_bounds_drift() {
        let window = 64;
        let n = 50 * window;
        let xs = series(n, 17);
        let mut p = OnlineProfiler::new(window);
        let mut out = OnlineProfile::default();
        let mut scratch = SeriesScratch::new();
        for t in 0..n {
            p.push(xs[t]);
            // Sparse compares at an awkward stride (and the very end) —
            // enough to catch drift at arbitrary rescan phases.
            if t % 97 == 0 || t == n - 1 {
                p.profile_into(&mut out);
                let lo = (t + 1).saturating_sub(window);
                let batch = batch_profile(&mut scratch, &xs[lo..=t], &[1], 15, 0.10, 1);
                assert_profile_matches(&out, &batch, t + 1 >= window, &format!("drift t {t}"));
            }
        }
    }

    /// The full sliding periodogram (not just the ranked peak) matches
    /// the batch FFT spectrum bin-for-bin on a full window.
    #[test]
    fn sliding_dft_matches_fft_spectrum() {
        for window in [60usize, 64, 101] {
            let xs = series(3 * window, 23);
            let mut p = OnlineProfiler::new(window).with_peak_policy(0.0, usize::MAX);
            for &x in &xs {
                p.push(x);
            }
            let mut out = OnlineProfile::default();
            p.profile_into(&mut out);
            let tail = &xs[xs.len() - window..];
            let batch = crate::periodogram(tail);
            assert_eq!(p.peaks.len(), batch.len(), "window {window}");
            for (o, b) in p.peaks.iter().zip(&batch) {
                assert_eq!(o.period_samples, b.period_samples);
                assert!(
                    close(o.power, b.power),
                    "window {window} period {}: {} vs {}",
                    o.period_samples,
                    o.power,
                    b.power
                );
            }
        }
    }

    #[test]
    fn reset_forgets_the_stream() {
        let xs = series(90, 5);
        let mut p = OnlineProfiler::new(30);
        for &x in &xs {
            p.push(x);
        }
        p.reset();
        assert_eq!(p.samples_seen(), 0);
        assert!(p.is_empty());
        // After a reset the profiler behaves like a fresh one.
        let mut fresh = OnlineProfiler::new(30);
        for &x in &xs[..45] {
            p.push(x);
            fresh.push(x);
        }
        assert_eq!(p.profile(), fresh.profile());
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn rejects_zero_window() {
        let _ = OnlineProfiler::new(0);
    }
}
