//! Aggregate demand ratios.
//!
//! The paper condenses its figures into ratio claims:
//!
//! * R1 (§4.1): front-end vs back-end demand — "6.11, 3.29, 5.71, and
//!   55.56 times more CPU cycles, RAM space, disk read/write, and
//!   network data";
//! * R2 (§4.1): aggregated VM demand vs hypervisor — "16.84, 0.58,
//!   0.47, and 0.98 times";
//! * R3 (§4.2): non-virtualized vs virtualized aggregates — "3.47,
//!   0.97, 0.6 and 0.98 times";
//! * R4 (§4.2): physical demand deltas — "+88% CPU, +21% RAM, +2%
//!   network, −25% disk".
//!
//! This module provides the ratio calculus over demand series; the
//! experiment layer (`cloudchar-core`) assembles the paper's specific
//! numerator/denominator pairs.

use serde::{Deserialize, Serialize};

/// The four resource dimensions of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// CPU cycles per sample.
    Cpu,
    /// Used RAM (MB) per sample.
    Ram,
    /// Disk read+write KB per sample.
    Disk,
    /// Network rx+tx KB per sample.
    Net,
}

impl Resource {
    /// All four, in the paper's presentation order.
    pub const ALL: [Resource; 4] = [Resource::Cpu, Resource::Ram, Resource::Disk, Resource::Net];
}

/// A ratio across all four resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRatios {
    /// CPU ratio.
    pub cpu: f64,
    /// RAM ratio.
    pub ram: f64,
    /// Disk ratio.
    pub disk: f64,
    /// Network ratio.
    pub net: f64,
}

impl ResourceRatios {
    /// Access by resource.
    pub fn get(&self, r: Resource) -> f64 {
        match r {
            Resource::Cpu => self.cpu,
            Resource::Ram => self.ram,
            Resource::Disk => self.disk,
            Resource::Net => self.net,
        }
    }
}

/// Guarded quotient: `None` unless the denominator is a nonzero finite
/// number and the quotient itself is finite.
fn checked_div(num: f64, den: f64) -> Option<f64> {
    // `is_normal()` rejects zero, subnormals, infinities and NaN without
    // a bare float comparison; a subnormal denominator would only yield
    // an overflowing, physically meaningless ratio.
    if !den.is_normal() {
        return None;
    }
    let r = num / den;
    r.is_finite().then_some(r)
}

/// Ratio of aggregate (summed) demand: `Σa / Σb`.
///
/// For *rate* resources (CPU cycles, disk KB, net KB per sample) this is
/// the paper's "aggregated workload demands" comparison. Returns `None`
/// when either input is empty or the denominator sums to zero.
pub fn aggregate_ratio(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    checked_div(sa, sb)
}

/// Ratio of per-sample means: appropriate for *level* resources (RAM),
/// where summing over time has no physical meaning. Returns `None` when
/// either input is empty or the denominator mean is zero.
pub fn mean_ratio(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let ma: f64 = a.iter().sum::<f64>() / a.len() as f64;
    let mb: f64 = b.iter().sum::<f64>() / b.len() as f64;
    checked_div(ma, mb)
}

/// Demand ratio using the appropriate statistic per resource: aggregate
/// for rates, mean for RAM.
pub fn demand_ratio(resource: Resource, a: &[f64], b: &[f64]) -> Option<f64> {
    match resource {
        Resource::Ram => mean_ratio(a, b),
        _ => aggregate_ratio(a, b),
    }
}

/// Percentage difference of `a` relative to `b`: `100·(a/b − 1)`.
pub fn percent_more(ratio: f64) -> f64 {
    100.0 * (ratio - 1.0)
}

/// Element-wise sum of several series (e.g. web-tier + db-tier demand).
/// Shorter series are zero-extended.
pub fn elementwise_sum(series: &[&[f64]]) -> Vec<f64> {
    let n = series.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out = vec![0.0; n];
    for s in series {
        for (i, v) in s.iter().enumerate() {
            out[i] += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_and_mean() {
        let a = [2.0, 4.0, 6.0];
        let b = [1.0, 2.0, 3.0];
        assert!((aggregate_ratio(&a, &b).unwrap() - 2.0).abs() < 1e-12);
        assert!((mean_ratio(&a, &b).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_is_none() {
        assert_eq!(aggregate_ratio(&[1.0], &[0.0]), None);
        assert_eq!(mean_ratio(&[1.0], &[0.0]), None);
    }

    #[test]
    fn empty_inputs_are_none() {
        assert_eq!(aggregate_ratio(&[], &[1.0]), None);
        assert_eq!(aggregate_ratio(&[1.0], &[]), None);
        assert_eq!(mean_ratio(&[], &[1.0]), None);
        assert_eq!(mean_ratio(&[1.0], &[]), None);
        for r in Resource::ALL {
            assert_eq!(demand_ratio(r, &[], &[]), None);
        }
    }

    #[test]
    fn non_finite_denominator_is_none() {
        assert_eq!(aggregate_ratio(&[1.0], &[f64::NAN]), None);
        assert_eq!(aggregate_ratio(&[1.0], &[f64::INFINITY]), None);
        assert_eq!(mean_ratio(&[f64::INFINITY], &[1.0]), None);
    }

    #[test]
    fn demand_ratio_dispatch() {
        let a = [10.0, 10.0];
        let b = [5.0, 5.0];
        for r in Resource::ALL {
            assert!((demand_ratio(r, &a, &b).unwrap() - 2.0).abs() < 1e-12);
        }
        // Different lengths: mean vs aggregate disagree.
        let long = [10.0, 10.0, 10.0, 10.0];
        let short = [10.0, 10.0];
        assert!((demand_ratio(Resource::Ram, &long, &short).unwrap() - 1.0).abs() < 1e-12);
        assert!((demand_ratio(Resource::Cpu, &long, &short).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percent_more_signs() {
        assert!((percent_more(1.88) - 88.0).abs() < 1e-9);
        assert!((percent_more(0.75) + 25.0).abs() < 1e-9);
    }

    #[test]
    fn elementwise_sum_pads() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0];
        let s = elementwise_sum(&[&a, &b]);
        assert_eq!(s, vec![11.0, 2.0, 3.0]);
        assert!(elementwise_sum(&[]).is_empty());
    }

    #[test]
    fn resource_accessors() {
        let r = ResourceRatios {
            cpu: 1.0,
            ram: 2.0,
            disk: 3.0,
            net: 4.0,
        };
        assert_eq!(r.get(Resource::Cpu), 1.0);
        assert_eq!(r.get(Resource::Net), 4.0);
        assert_eq!(Resource::ALL.len(), 4);
    }
}
