//! Periodicity detection via the periodogram.
//!
//! Workload series often carry periodic components — the ext3 5-second
//! commit, Apache log-flush ticks, MySQL group commits — superimposed on
//! the request process. The paper's "patterns that can be quantified by
//! formal models" include exactly such structure; this module estimates
//! the power spectrum with the Goertzel recurrence (O(n) per frequency,
//! no FFT dependency) and reports dominant periods.

use serde::{Deserialize, Serialize};

/// One spectral peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Period in samples.
    pub period_samples: f64,
    /// Normalized power in `[0, 1]` (fraction of total AC power).
    pub power: f64,
}

/// Power of the frequency `k / n` cycles-per-sample via Goertzel.
fn goertzel_power(xs: &[f64], k: usize) -> f64 {
    let n = xs.len() as f64;
    let w = std::f64::consts::TAU * k as f64 / n;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in xs {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // |X(k)|^2 of the DFT bin.
    s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2
}

/// Periodogram over DFT bins `1..n/2`, with the mean removed. Returns
/// `(period_samples, normalized_power)` per bin; empty for fewer than 8
/// samples or constant input.
pub fn periodogram(xs: &[f64]) -> Vec<Peak> {
    let n = xs.len();
    if n < 8 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = xs.iter().map(|x| x - mean).collect();
    let total_power: f64 = centered.iter().map(|x| x * x).sum();
    if total_power <= 0.0 {
        return Vec::new();
    }
    (1..=n / 2)
        .map(|k| {
            let p = goertzel_power(&centered, k);
            Peak {
                period_samples: n as f64 / k as f64,
                // Each bin's share of total AC power (factor 2 for the
                // conjugate bin, except Nyquist).
                power: (if 2 * k == n { 1.0 } else { 2.0 }) * p / (n as f64 * total_power),
            }
        })
        .collect()
}

/// The strongest periodic components, most powerful first, keeping only
/// peaks above `min_power` (fraction of AC power).
pub fn dominant_periods(xs: &[f64], min_power: f64, max_peaks: usize) -> Vec<Peak> {
    let mut peaks = periodogram(xs);
    peaks.retain(|p| p.power >= min_power);
    peaks.sort_by(|a, b| b.power.total_cmp(&a.power));
    peaks.truncate(max_peaks);
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(period: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / period).sin())
            .collect()
    }

    #[test]
    fn pure_sine_peaks_at_its_period() {
        // Period 16 over 256 samples — an exact DFT bin.
        let xs = sine(16.0, 256);
        let peaks = dominant_periods(&xs, 0.1, 3);
        assert!(!peaks.is_empty());
        assert!((peaks[0].period_samples - 16.0).abs() < 1e-9);
        assert!(peaks[0].power > 0.9, "power {}", peaks[0].power);
    }

    #[test]
    fn two_tones_found_in_order() {
        let a = sine(32.0, 256);
        let b = sine(8.0, 256);
        let xs: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 3.0 * x + 1.0 * y).collect();
        let peaks = dominant_periods(&xs, 0.01, 4);
        assert!(peaks.len() >= 2);
        assert!((peaks[0].period_samples - 32.0).abs() < 1e-9);
        assert!((peaks[1].period_samples - 8.0).abs() < 1e-9);
        assert!(peaks[0].power > peaks[1].power);
    }

    #[test]
    fn dc_offset_is_ignored() {
        let xs: Vec<f64> = sine(16.0, 128).iter().map(|x| x + 1000.0).collect();
        let peaks = dominant_periods(&xs, 0.1, 2);
        assert!((peaks[0].period_samples - 16.0).abs() < 1e-9);
    }

    #[test]
    fn constant_and_short_series_are_empty() {
        assert!(periodogram(&[5.0; 100]).is_empty());
        assert!(periodogram(&[1.0, 2.0, 3.0]).is_empty());
    }

    #[test]
    fn white_noise_has_no_dominant_peak() {
        // Deterministic pseudo-noise.
        let mut state = 12345u64;
        let xs: Vec<f64> = (0..512)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let peaks = dominant_periods(&xs, 0.2, 3);
        assert!(peaks.is_empty(), "noise produced peaks {peaks:?}");
    }

    #[test]
    fn powers_sum_to_one() {
        let xs = sine(10.0, 200);
        let total: f64 = periodogram(&xs).iter().map(|p| p.power).sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }
}
