//! Periodicity detection via the periodogram.
//!
//! Workload series often carry periodic components — the ext3 5-second
//! commit, Apache log-flush ticks, MySQL group commits — superimposed on
//! the request process. The paper's "patterns that can be quantified by
//! formal models" include exactly such structure; this module estimates
//! the power spectrum and reports dominant periods.
//!
//! The production path computes the full spectrum with the dependency-
//! free real-input FFT in [`crate::fft`] — O(n log n) for all bins. The
//! original Goertzel recurrence (O(n) *per bin*, O(n²) total) is kept
//! in-tree as [`goertzel_power`]/[`goertzel_periodogram`], the accuracy
//! oracle for tests and benchmarks; lint rule CL007 forbids calling it
//! from production code.

use crate::fft::FftScratch;
use serde::{Deserialize, Serialize};

/// One spectral peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Period in samples.
    pub period_samples: f64,
    /// Normalized power in `[0, 1]` (fraction of total AC power).
    pub power: f64,
}

/// Power of the frequency `k / n` cycles-per-sample via the Goertzel
/// recurrence — O(n) per bin.
///
/// **Test oracle only** (CL007): production code goes through the FFT
/// path in [`periodogram`] / [`crate::SeriesScratch`].
pub fn goertzel_power(xs: &[f64], k: usize) -> f64 {
    let n = xs.len() as f64;
    let w = std::f64::consts::TAU * k as f64 / n;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in xs {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // |X(k)|^2 of the DFT bin.
    s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2
}

/// The pre-FFT periodogram, bin by bin through [`goertzel_power`] —
/// O(n²) for the full spectrum.
///
/// **Test oracle only** (CL007): kept verbatim so proptests and the
/// analysis benchmark can race the FFT path against the original
/// implementation.
pub fn goertzel_periodogram(xs: &[f64]) -> Vec<Peak> {
    let n = xs.len();
    if n < 8 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = xs.iter().map(|x| x - mean).collect();
    let total_power: f64 = centered.iter().map(|x| x * x).sum();
    if total_power <= 0.0 {
        return Vec::new();
    }
    (1..=n / 2)
        .map(|k| {
            let p = goertzel_power(&centered, k);
            Peak {
                period_samples: n as f64 / k as f64,
                power: (if 2 * k == n { 1.0 } else { 2.0 }) * p / (n as f64 * total_power),
            }
        })
        .collect()
}

/// Shared periodogram core over an already-centered series: fills
/// `peaks` with one [`Peak`] per DFT bin `1..=n/2`, using `power` as the
/// raw-spectrum buffer. Produces nothing for short (< 8 samples) or
/// zero-power (constant) input. Allocation-free once the buffers are
/// warm.
pub(crate) fn periodogram_into(
    centered: &[f64],
    total_power: f64,
    fft: &mut FftScratch,
    power: &mut Vec<f64>,
    peaks: &mut Vec<Peak>,
) {
    peaks.clear();
    let n = centered.len();
    if n < 8 || total_power <= 0.0 {
        return;
    }
    fft.power_spectrum_into(centered, power);
    peaks.extend(power.iter().enumerate().map(|(i, &p)| {
        let k = i + 1;
        Peak {
            period_samples: n as f64 / k as f64,
            // Each bin's share of total AC power (factor 2 for the
            // conjugate bin, except Nyquist).
            power: (if 2 * k == n { 1.0 } else { 2.0 }) * p / (n as f64 * total_power),
        }
    }));
}

/// Periodogram over DFT bins `1..=n/2`, with the mean removed. Returns
/// `(period_samples, normalized_power)` per bin; empty for fewer than 8
/// samples or constant input. Computed with the real-input FFT —
/// O(n log n) for the whole spectrum.
pub fn periodogram(xs: &[f64]) -> Vec<Peak> {
    let mut scratch = crate::SeriesScratch::new();
    scratch.load(xs);
    scratch.periodogram().to_vec()
}

/// The strongest periodic components, most powerful first, keeping only
/// peaks above `min_power` (fraction of AC power).
pub fn dominant_periods(xs: &[f64], min_power: f64, max_peaks: usize) -> Vec<Peak> {
    let mut scratch = crate::SeriesScratch::new();
    scratch.load(xs);
    scratch.dominant_periods(min_power, max_peaks).to_vec()
}

/// Rank a full periodogram: drop peaks below `min_power`, sort by power
/// descending, keep at most `max_peaks`. Shared by the free function and
/// [`crate::SeriesScratch`] so ranking semantics stay identical.
pub(crate) fn rank_peaks(peaks: &[Peak], min_power: f64, max_peaks: usize, out: &mut Vec<Peak>) {
    out.clear();
    out.extend(peaks.iter().filter(|p| p.power >= min_power));
    out.sort_by(|a, b| b.power.total_cmp(&a.power));
    out.truncate(max_peaks);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(period: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / period).sin())
            .collect()
    }

    #[test]
    fn pure_sine_peaks_at_its_period() {
        // Period 16 over 256 samples — an exact DFT bin.
        let xs = sine(16.0, 256);
        let peaks = dominant_periods(&xs, 0.1, 3);
        assert!(!peaks.is_empty());
        assert!((peaks[0].period_samples - 16.0).abs() < 1e-9);
        assert!(peaks[0].power > 0.9, "power {}", peaks[0].power);
    }

    #[test]
    fn two_tones_found_in_order() {
        let a = sine(32.0, 256);
        let b = sine(8.0, 256);
        let xs: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 3.0 * x + 1.0 * y).collect();
        let peaks = dominant_periods(&xs, 0.01, 4);
        assert!(peaks.len() >= 2);
        assert!((peaks[0].period_samples - 32.0).abs() < 1e-9);
        assert!((peaks[1].period_samples - 8.0).abs() < 1e-9);
        assert!(peaks[0].power > peaks[1].power);
    }

    #[test]
    fn dc_offset_is_ignored() {
        let xs: Vec<f64> = sine(16.0, 128).iter().map(|x| x + 1000.0).collect();
        let peaks = dominant_periods(&xs, 0.1, 2);
        assert!((peaks[0].period_samples - 16.0).abs() < 1e-9);
    }

    #[test]
    fn constant_and_short_series_are_empty() {
        assert!(periodogram(&[5.0; 100]).is_empty());
        assert!(periodogram(&[1.0, 2.0, 3.0]).is_empty());
    }

    #[test]
    fn white_noise_has_no_dominant_peak() {
        // Deterministic pseudo-noise.
        let mut state = 12345u64;
        let xs: Vec<f64> = (0..512)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect();
        let peaks = dominant_periods(&xs, 0.2, 3);
        assert!(peaks.is_empty(), "noise produced peaks {peaks:?}");
    }

    #[test]
    fn powers_sum_to_one() {
        let xs = sine(10.0, 200);
        let total: f64 = periodogram(&xs).iter().map(|p| p.power).sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn fft_path_matches_goertzel_oracle() {
        // Odd, even, power-of-two and awkward prime lengths, sines and
        // noise: every bin of the FFT periodogram must match the
        // Goertzel oracle to 1e-9 normalized power.
        let mut state = 99u64;
        let mut noise = |n: usize| -> Vec<f64> {
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 100.0
                })
                .collect()
        };
        for n in [8usize, 9, 64, 101, 256, 600] {
            for xs in [sine(7.3, n), noise(n)] {
                let fast = periodogram(&xs);
                let oracle = goertzel_periodogram(&xs);
                assert_eq!(fast.len(), oracle.len(), "n = {n}");
                for (f, o) in fast.iter().zip(&oracle) {
                    assert_eq!(f.period_samples, o.period_samples);
                    assert!(
                        (f.power - o.power).abs() < 1e-9,
                        "n = {n}, period {}: fft {} vs goertzel {}",
                        f.period_samples,
                        f.power,
                        o.power
                    );
                }
            }
        }
    }
}
