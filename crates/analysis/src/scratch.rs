//! Reusable per-series analysis workspace.
//!
//! Characterizing one series needs the same raw material over and over:
//! the mean, the centered values, a sorted copy, prefix sums, an FFT
//! plan. The free functions in this crate each rebuild that material
//! per call, which is fine for one-off use but wasteful in the catalog
//! loops of `core::characterize` and `core::report`, where thousands of
//! series are profiled back to back.
//!
//! [`SeriesScratch`] computes the shared passes once per [`load`] and
//! hands them to every downstream analysis — summary, distribution fit,
//! periodogram, jump detection, autocorrelation — reusing its buffers
//! across series so the steady-state loop allocates nothing.
//!
//! [`load`]: SeriesScratch::load

use crate::fft::FftScratch;
use crate::fit::{self, FitResult};
use crate::jumps::{self, Jump};
use crate::spectrum::{self, Peak};
use crate::summary::{self, Summary};
use cloudchar_simcore::stats::{Comoments, Moments};

/// Shared-pass workspace for analyzing one series at a time.
///
/// Load a series with [`SeriesScratch::load`], then call any of the
/// analysis methods; intermediate products (centering, sorting, prefix
/// sums, the FFT plan, the periodogram) are computed at most once per
/// load and every buffer is reused across loads.
#[derive(Debug, Clone)]
pub struct SeriesScratch {
    /// Raw copy of the loaded series.
    values: Vec<f64>,
    /// `values` with the mean removed.
    centered: Vec<f64>,
    /// Sorted copy (built lazily for percentiles and fitting).
    sorted: Vec<f64>,
    /// Prefix sums of `values` (built lazily for sliding windows).
    prefix: Vec<f64>,
    /// Raw `|X(k)|²` spectrum buffer.
    power: Vec<f64>,
    /// Full periodogram (one peak per DFT bin, built lazily).
    peaks: Vec<Peak>,
    /// Ranked output buffer for [`SeriesScratch::dominant_periods`].
    ranked: Vec<Peak>,
    /// Pre-merge jump candidate buffer.
    raw_jumps: Vec<Jump>,
    /// Merged jump output buffer.
    jumps: Vec<Jump>,
    /// FFT plan and twiddle/chirp caches.
    fft: FftScratch,
    /// Fused one-pass moments of the loaded series.
    moments: Moments,
    /// Arithmetic mean (`sum / n`; 0 for an empty series).
    mean: f64,
    /// Total AC power `Σ (x − mean)²`.
    total_power: f64,
    sorted_valid: bool,
    prefix_valid: bool,
    peaks_valid: bool,
}

impl Default for SeriesScratch {
    fn default() -> Self {
        SeriesScratch::new()
    }
}

impl SeriesScratch {
    /// Fresh workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SeriesScratch {
            values: Vec::new(),
            centered: Vec::new(),
            sorted: Vec::new(),
            prefix: Vec::new(),
            power: Vec::new(),
            peaks: Vec::new(),
            ranked: Vec::new(),
            raw_jumps: Vec::new(),
            jumps: Vec::new(),
            fft: FftScratch::new(),
            moments: Moments::of(&[]),
            mean: 0.0,
            total_power: 0.0,
            sorted_valid: false,
            prefix_valid: false,
            peaks_valid: false,
        }
    }

    /// Load a series: copies it, computes the fused moments, centers it
    /// and accumulates the total AC power in one shared pass.
    /// Invalidates all lazily-built products of the previous load.
    pub fn load(&mut self, xs: &[f64]) -> &mut Self {
        self.begin_load();
        self.extend_load(xs);
        self.finish_load();
        self
    }

    /// Start an incremental load (the streaming counterpart of
    /// [`load`](SeriesScratch::load)): clears the value buffer so
    /// decoded chunks can be appended with
    /// [`extend_load`](SeriesScratch::extend_load).
    pub fn begin_load(&mut self) {
        self.values.clear();
    }

    /// Append one decoded chunk of the series being loaded.
    pub fn extend_load(&mut self, xs: &[f64]) {
        self.values.extend_from_slice(xs);
    }

    /// Finish an incremental load: computes the fused moments, centers
    /// the series and accumulates the total AC power — bit-identical to
    /// a single [`load`](SeriesScratch::load) of the concatenation.
    pub fn finish_load(&mut self) {
        self.moments = Moments::of(&self.values);
        self.mean = if self.moments.count > 0 {
            self.moments.sum / self.moments.count as f64
        } else {
            0.0
        };
        self.centered.clear();
        self.centered
            .extend(self.values.iter().map(|x| x - self.mean));
        self.total_power = self.centered.iter().map(|x| x * x).sum();
        self.sorted_valid = false;
        self.prefix_valid = false;
        self.peaks_valid = false;
    }

    /// Number of loaded samples.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The loaded series.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Fused one-pass moments of the loaded series.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// Arithmetic mean of the loaded series (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    fn ensure_sorted(&mut self) {
        if self.sorted_valid {
            return;
        }
        self.sorted.clear();
        self.sorted.extend_from_slice(&self.values);
        self.sorted.sort_by(f64::total_cmp);
        self.sorted_valid = true;
    }

    fn ensure_prefix(&mut self) {
        if self.prefix_valid {
            return;
        }
        self.prefix.clear();
        self.prefix.reserve(self.values.len() + 1);
        self.prefix.push(0.0);
        let mut acc = 0.0;
        for &x in &self.values {
            acc += x;
            self.prefix.push(acc);
        }
        self.prefix_valid = true;
    }

    fn ensure_peaks(&mut self) {
        if self.peaks_valid {
            return;
        }
        spectrum::periodogram_into(
            &self.centered,
            self.total_power,
            &mut self.fft,
            &mut self.power,
            &mut self.peaks,
        );
        self.peaks_valid = true;
    }

    /// Descriptive statistics — same result as [`crate::summarize`].
    pub fn summary(&mut self) -> Option<Summary> {
        if self.moments.count == 0 || !self.moments.all_finite {
            return None;
        }
        self.ensure_sorted();
        Some(summary::summary_from_parts(&self.moments, &self.sorted))
    }

    /// Best distribution fit by KS distance — same result as
    /// [`crate::best_fit`], sharing the sorted copy and moments with the
    /// other analyses instead of recomputing them.
    pub fn best_fit(&mut self) -> Option<FitResult> {
        let n = self.values.len();
        if n < 8 || !self.moments.all_finite {
            return None;
        }
        self.ensure_sorted();
        let var = self.total_power / n as f64;
        fit::fit_sorted(&self.sorted, self.mean, var)
            .into_iter()
            .next()
    }

    /// Full periodogram over DFT bins `1..=n/2` — same result as
    /// [`crate::periodogram`], computed once per load with the cached
    /// FFT plan. Empty for short (< 8 samples) or constant series.
    pub fn periodogram(&mut self) -> &[Peak] {
        self.ensure_peaks();
        &self.peaks
    }

    /// Strongest periodic components, most powerful first — same result
    /// as [`crate::dominant_periods`].
    pub fn dominant_periods(&mut self, min_power: f64, max_peaks: usize) -> &[Peak] {
        self.ensure_peaks();
        spectrum::rank_peaks(&self.peaks, min_power, max_peaks, &mut self.ranked);
        &self.ranked
    }

    /// Sample autocorrelation at lag `k` — same semantics as
    /// [`crate::autocorrelation`], allocation-free.
    pub fn autocorrelation(&self, k: usize) -> Option<f64> {
        let len = self.values.len();
        if len < k + 2 {
            return None;
        }
        let n = len - k;
        Comoments::of(&self.values[..n], &self.values[k..]).pearson()
    }

    /// Sustained level shifts — same result as [`crate::detect_jumps`],
    /// using the shared prefix sums and reused buffers.
    pub fn detect_jumps(&mut self, window: usize, threshold: f64) -> &[Jump] {
        self.ensure_prefix();
        jumps::detect_jumps_prefix(
            &self.prefix,
            window,
            threshold,
            &mut self.raw_jumps,
            &mut self.jumps,
        );
        &self.jumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        autocorrelation, best_fit, detect_jumps, dominant_periods, periodogram, summarize,
    };

    fn series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                100.0
                    + 20.0 * (i as f64 * std::f64::consts::TAU / 30.0).sin()
                    + 5.0 * noise
                    + if i > n / 2 { 40.0 } else { 0.0 }
            })
            .collect()
    }

    #[test]
    fn matches_free_functions_exactly() {
        let mut scratch = SeriesScratch::new();
        for (n, seed) in [(64usize, 1u64), (150, 2), (600, 3)] {
            let xs = series(n, seed);
            scratch.load(&xs);
            assert_eq!(scratch.summary(), summarize(&xs));
            assert_eq!(scratch.best_fit(), best_fit(&xs));
            assert_eq!(scratch.periodogram(), &periodogram(&xs)[..]);
            assert_eq!(
                scratch.dominant_periods(0.05, 3),
                &dominant_periods(&xs, 0.05, 3)[..]
            );
            assert_eq!(scratch.autocorrelation(1), autocorrelation(&xs, 1));
            assert_eq!(
                scratch.detect_jumps(10, 5.0),
                &detect_jumps(&xs, 10, 5.0)[..]
            );
        }
    }

    #[test]
    fn reuse_does_not_leak_state_between_series() {
        let mut scratch = SeriesScratch::new();
        // Long periodic series first, then a short constant one, then a
        // fresh noisy one: every lazily-built product must reset.
        let long = series(512, 9);
        scratch.load(&long);
        assert!(!scratch.periodogram().is_empty());
        assert!(scratch.summary().is_some());

        scratch.load(&[7.0; 20]);
        assert!(scratch.periodogram().is_empty(), "constant has no spectrum");
        assert_eq!(scratch.summary().map(|s| s.mean), Some(7.0));
        assert!(scratch.detect_jumps(3, 0.5).is_empty());

        let other = series(100, 4);
        scratch.load(&other);
        assert_eq!(scratch.summary(), summarize(&other));
        assert_eq!(scratch.periodogram(), &periodogram(&other)[..]);
    }

    #[test]
    fn empty_and_non_finite_series_are_guarded() {
        let mut scratch = SeriesScratch::new();
        scratch.load(&[]);
        assert!(scratch.summary().is_none());
        assert!(scratch.best_fit().is_none());
        assert!(scratch.periodogram().is_empty());
        assert!(scratch.autocorrelation(1).is_none());

        let mut xs = vec![1.0; 32];
        xs[5] = f64::NAN;
        scratch.load(&xs);
        assert!(scratch.summary().is_none());
        assert!(scratch.best_fit().is_none());
    }
}
