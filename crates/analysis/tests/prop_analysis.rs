//! Property-based tests for the characterization analytics.

use cloudchar_analysis::{
    aggregate_ratio, autocorrelation, cross_correlation, cross_correlation_scan, detect_jumps,
    dominant_periods, find_lag, find_lag_naive, fit_all, goertzel_periodogram, mean_ratio, pearson,
    periodogram, summarize,
};
use proptest::prelude::*;

proptest! {
    /// Summary statistics respect their order relations on any data.
    #[test]
    fn summary_order_relations(xs in proptest::collection::vec(-1e9f64..1e9, 1..500)) {
        let s = summarize(&xs).unwrap();
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.variance >= 0.0);
        prop_assert!((s.std_dev * s.std_dev - s.variance).abs() < 1e-6 * (1.0 + s.variance));
        prop_assert_eq!(s.n, xs.len());
    }

    /// Scaling data scales mean/std linearly and leaves CV invariant
    /// (for positive data and scale).
    #[test]
    fn summary_scale_equivariance(
        xs in proptest::collection::vec(0.1f64..1e4, 2..100),
        k in 0.1f64..100.0,
    ) {
        let a = summarize(&xs).unwrap();
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let b = summarize(&scaled).unwrap();
        prop_assert!((b.mean - k * a.mean).abs() < 1e-6 * (1.0 + b.mean.abs()));
        prop_assert!((b.cv - a.cv).abs() < 1e-9 + 1e-6 * a.cv);
    }

    /// Pearson correlation is bounded and symmetric.
    #[test]
    fn pearson_bounded_and_symmetric(
        pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..200),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&a, &b) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = pearson(&b, &a).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    /// A series correlates perfectly with itself at lag zero.
    #[test]
    fn self_correlation_is_one(xs in proptest::collection::vec(-1e3f64..1e3, 3..100)) {
        // Skip constant series (undefined correlation).
        let constant = xs.windows(2).all(|w| w[0] == w[1]);
        if !constant {
            let r = autocorrelation(&xs, 0).unwrap();
            prop_assert!((r - 1.0).abs() < 1e-9, "r = {r}");
        }
    }

    /// find_lag recovers a known integer shift of a non-degenerate
    /// signal.
    #[test]
    fn lag_recovers_shift(shift in 0usize..8, freq in 3u32..40) {
        let n = 300;
        let base: Vec<f64> = (0..n + shift)
            .map(|i| (i as f64 / f64::from(freq)).sin() + 0.2 * (i as f64 / 17.0).cos())
            .collect();
        let leader = base[shift..].to_vec();
        let follower = base[..n].to_vec();
        let r = find_lag(&leader, &follower, 10).unwrap();
        prop_assert_eq!(r.lag_samples, shift as i64);
        prop_assert!(r.correlation > 0.99);
    }

    /// Jump detection: every reported jump exceeds the threshold, indices
    /// are sorted, and a constant series reports none.
    #[test]
    fn jumps_respect_threshold(
        levels in proptest::collection::vec((10usize..40, -1e4f64..1e4), 1..6),
        threshold in 1.0f64..1e4,
        window in 2usize..10,
    ) {
        let xs: Vec<f64> = levels
            .iter()
            .flat_map(|&(n, v)| std::iter::repeat(v).take(n))
            .collect();
        let jumps = detect_jumps(&xs, window, threshold);
        for j in &jumps {
            prop_assert!(j.magnitude.abs() >= threshold);
            prop_assert!(j.index >= window && j.index <= xs.len() - window);
        }
        for pair in jumps.windows(2) {
            prop_assert!(pair[0].index < pair[1].index);
        }
        let flat = vec![levels[0].1; 100];
        prop_assert!(detect_jumps(&flat, window, threshold).is_empty());
    }

    /// Ratios: aggregate and mean ratios agree for equal-length series
    /// and respect scaling.
    #[test]
    fn ratio_identities(
        xs in proptest::collection::vec(0.1f64..1e5, 2..100),
        k in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let agg = aggregate_ratio(&scaled, &xs).expect("positive denominator");
        let mean = mean_ratio(&scaled, &xs).expect("positive denominator");
        prop_assert!((agg - k).abs() < 1e-9 * (1.0 + k));
        prop_assert!((mean - k).abs() < 1e-9 * (1.0 + k));
    }

    /// The FFT periodogram matches the Goertzel oracle bin for bin
    /// within 1e-9 normalized (relative) power, on random series of
    /// arbitrary length — power-of-two and Bluestein paths alike.
    #[test]
    fn fft_periodogram_matches_goertzel_oracle(
        xs in proptest::collection::vec(-1e4f64..1e4, 8..400),
    ) {
        let fast = periodogram(&xs);
        let oracle = goertzel_periodogram(&xs);
        prop_assert_eq!(fast.len(), oracle.len());
        for (f, o) in fast.iter().zip(&oracle) {
            prop_assert_eq!(f.period_samples, o.period_samples);
            prop_assert!(
                (f.power - o.power).abs() < 1e-9,
                "period {}: fft {} vs goertzel {}", f.period_samples, f.power, o.power
            );
        }
    }

    /// Ranked dominant periods agree with ranking the Goertzel oracle's
    /// spectrum: same periods in the same order.
    #[test]
    fn dominant_periods_match_goertzel_ranking(
        xs in proptest::collection::vec(-1e3f64..1e3, 8..200),
        min_power in 0.02f64..0.3,
    ) {
        let fast = dominant_periods(&xs, min_power, 5);
        let mut oracle = goertzel_periodogram(&xs);
        oracle.retain(|p| p.power >= min_power);
        oracle.sort_by(|a, b| b.power.total_cmp(&a.power));
        oracle.truncate(5);
        // Peaks within 1e-9 of the cutoff may legitimately differ; skip
        // those borderline cases.
        let borderline = oracle
            .iter()
            .chain(fast.iter())
            .any(|p| (p.power - min_power).abs() < 1e-9);
        if !borderline {
            prop_assert_eq!(fast.len(), oracle.len());
            for (f, o) in fast.iter().zip(&oracle) {
                prop_assert_eq!(f.period_samples, o.period_samples);
            }
        }
    }

    /// The prefix-sum cross-correlation scan equals the naive per-shift
    /// Pearson at every shift, including on large-mean series.
    #[test]
    fn scan_equals_naive_pearson_at_every_shift(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..150),
        offset in -1e6f64..1e6,
        max_lag in 0usize..20,
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0 + offset).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1 + offset).collect();
        let scan = cross_correlation_scan(&a, &b, max_lag);
        prop_assert_eq!(scan.len(), 2 * max_lag + 1);
        for (shift, got) in scan {
            let want = cross_correlation(&a, &b, shift);
            match (got, want) {
                (Some(g), Some(w)) => prop_assert!(
                    (g - w).abs() < 1e-9,
                    "shift {}: scan {} vs naive {}", shift, g, w
                ),
                (g, w) => prop_assert_eq!(g.is_some(), w.is_some(), "shift {}", shift),
            }
        }
        // And the peak pick agrees with the naive scan.
        let fast = find_lag(&a, &b, max_lag);
        let naive = find_lag_naive(&a, &b, max_lag);
        match (fast, naive) {
            (Some(f), Some(n)) => {
                prop_assert_eq!(f.lag_samples, n.lag_samples);
                prop_assert!((f.correlation - n.correlation).abs() < 1e-9);
            }
            (f, n) => prop_assert_eq!(f.is_some(), n.is_some()),
        }
    }

    /// Distribution fitting returns sorted, finite KS distances and at
    /// least the normal+uniform candidates for positive data.
    #[test]
    fn fitting_is_well_formed(xs in proptest::collection::vec(0.1f64..1e4, 8..300)) {
        let fits = fit_all(&xs);
        prop_assert!(fits.len() >= 2);
        for f in &fits {
            prop_assert!(f.ks.is_finite() && f.ks >= 0.0 && f.ks <= 1.0 + 1e-9);
        }
        for pair in fits.windows(2) {
            prop_assert!(pair[0].ks <= pair[1].ks);
        }
    }
}
