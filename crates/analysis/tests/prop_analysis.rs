//! Property-based tests for the characterization analytics.

use cloudchar_analysis::{
    aggregate_ratio, autocorrelation, detect_jumps, find_lag, fit_all, mean_ratio, pearson,
    summarize,
};
use proptest::prelude::*;

proptest! {
    /// Summary statistics respect their order relations on any data.
    #[test]
    fn summary_order_relations(xs in proptest::collection::vec(-1e9f64..1e9, 1..500)) {
        let s = summarize(&xs).unwrap();
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.variance >= 0.0);
        prop_assert!((s.std_dev * s.std_dev - s.variance).abs() < 1e-6 * (1.0 + s.variance));
        prop_assert_eq!(s.n, xs.len());
    }

    /// Scaling data scales mean/std linearly and leaves CV invariant
    /// (for positive data and scale).
    #[test]
    fn summary_scale_equivariance(
        xs in proptest::collection::vec(0.1f64..1e4, 2..100),
        k in 0.1f64..100.0,
    ) {
        let a = summarize(&xs).unwrap();
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let b = summarize(&scaled).unwrap();
        prop_assert!((b.mean - k * a.mean).abs() < 1e-6 * (1.0 + b.mean.abs()));
        prop_assert!((b.cv - a.cv).abs() < 1e-9 + 1e-6 * a.cv);
    }

    /// Pearson correlation is bounded and symmetric.
    #[test]
    fn pearson_bounded_and_symmetric(
        pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..200),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&a, &b) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = pearson(&b, &a).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    /// A series correlates perfectly with itself at lag zero.
    #[test]
    fn self_correlation_is_one(xs in proptest::collection::vec(-1e3f64..1e3, 3..100)) {
        // Skip constant series (undefined correlation).
        let constant = xs.windows(2).all(|w| w[0] == w[1]);
        if !constant {
            let r = autocorrelation(&xs, 0).unwrap();
            prop_assert!((r - 1.0).abs() < 1e-9, "r = {r}");
        }
    }

    /// find_lag recovers a known integer shift of a non-degenerate
    /// signal.
    #[test]
    fn lag_recovers_shift(shift in 0usize..8, freq in 3u32..40) {
        let n = 300;
        let base: Vec<f64> = (0..n + shift)
            .map(|i| (i as f64 / f64::from(freq)).sin() + 0.2 * (i as f64 / 17.0).cos())
            .collect();
        let leader = base[shift..].to_vec();
        let follower = base[..n].to_vec();
        let r = find_lag(&leader, &follower, 10).unwrap();
        prop_assert_eq!(r.lag_samples, shift as i64);
        prop_assert!(r.correlation > 0.99);
    }

    /// Jump detection: every reported jump exceeds the threshold, indices
    /// are sorted, and a constant series reports none.
    #[test]
    fn jumps_respect_threshold(
        levels in proptest::collection::vec((10usize..40, -1e4f64..1e4), 1..6),
        threshold in 1.0f64..1e4,
        window in 2usize..10,
    ) {
        let xs: Vec<f64> = levels
            .iter()
            .flat_map(|&(n, v)| std::iter::repeat(v).take(n))
            .collect();
        let jumps = detect_jumps(&xs, window, threshold);
        for j in &jumps {
            prop_assert!(j.magnitude.abs() >= threshold);
            prop_assert!(j.index >= window && j.index <= xs.len() - window);
        }
        for pair in jumps.windows(2) {
            prop_assert!(pair[0].index < pair[1].index);
        }
        let flat = vec![levels[0].1; 100];
        prop_assert!(detect_jumps(&flat, window, threshold).is_empty());
    }

    /// Ratios: aggregate and mean ratios agree for equal-length series
    /// and respect scaling.
    #[test]
    fn ratio_identities(
        xs in proptest::collection::vec(0.1f64..1e5, 2..100),
        k in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let agg = aggregate_ratio(&scaled, &xs).expect("positive denominator");
        let mean = mean_ratio(&scaled, &xs).expect("positive denominator");
        prop_assert!((agg - k).abs() < 1e-9 * (1.0 + k));
        prop_assert!((mean - k).abs() < 1e-9 * (1.0 + k));
    }

    /// Distribution fitting returns sorted, finite KS distances and at
    /// least the normal+uniform candidates for positive data.
    #[test]
    fn fitting_is_well_formed(xs in proptest::collection::vec(0.1f64..1e4, 8..300)) {
        let fits = fit_all(&xs);
        prop_assert!(fits.len() >= 2);
        for f in &fits {
            prop_assert!(f.ks.is_finite() && f.ks >= 0.0 && f.ks <= 1.0 + 1e-9);
        }
        for pair in fits.windows(2) {
            prop_assert!(pair[0].ks <= pair[1].ks);
        }
    }
}
