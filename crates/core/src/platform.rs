//! The platform abstraction: one RUBiS deployment's substrate.
//!
//! The same application logic (client emulator, web tier, MySQL tier)
//! runs over two substrates — VMs under a Xen hypervisor, or bare
//! physical servers. [`Platform`] is the seam: CPU work submission,
//! disk and network paths, periodic scheduling, and per-host sampling.

use crate::virt::VirtPlatform;
use cloudchar_hw::{IoRequest, WorkToken};
use cloudchar_monitor::{RawHostSample, Source};
use cloudchar_simcore::{FaultKind, FaultTier, SimDuration, SimTime};

pub use crate::phys::PhysPlatform;

/// Which application tier an operation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Apache + PHP web/application tier.
    Web,
    /// MySQL database tier.
    Db,
}

impl From<FaultTier> for Tier {
    fn from(t: FaultTier) -> Tier {
        match t {
            FaultTier::Web => Tier::Web,
            FaultTier::Db => Tier::Db,
        }
    }
}

/// Scheduler-visible load of one tier, supplied by the orchestrator for
/// sampling (run queues, task counts, sockets).
#[derive(Debug, Clone, Copy, Default)]
pub struct TierLoad {
    /// Runnable threads.
    pub runq: f64,
    /// Total tasks of the tier's processes.
    pub nproc: f64,
    /// Tasks blocked on I/O.
    pub blocked: f64,
    /// TCP connections opened since the last sample.
    pub tcp_active: f64,
    /// Open TCP sockets.
    pub tcp_sockets: f64,
    /// Processes forked since the last sample.
    pub forks: f64,
}

/// One monitored host's sample, tagged with the sysstat plane it reports
/// through and whether perf counters are collected there.
#[derive(Debug, Clone)]
pub struct HostSample {
    /// Host label used as the series key (e.g. `"web-vm"`, `"dom0"`).
    /// Static: all host names are fixed deployment constants, so the
    /// sampler never allocates for identity.
    pub host: &'static str,
    /// Raw activity for metric synthesis.
    pub raw: RawHostSample,
    /// Which sysstat plane this host reports through.
    pub sysstat_source: Source,
    /// Whether the modified perf collects counters on this host (dom0
    /// and physical machines; not inside guests).
    pub has_perf: bool,
}

/// A deployed substrate.
#[derive(Debug)]
pub enum Platform {
    /// Xen host with web and DB VMs plus dom0.
    Virt(Box<VirtPlatform>),
    /// Two physical servers.
    Phys(Box<PhysPlatform>),
}

impl Platform {
    /// Scheduling quantum the orchestrator should tick at.
    pub fn quantum(&self) -> SimDuration {
        match self {
            Platform::Virt(v) => v.quantum(),
            Platform::Phys(p) => p.quantum(),
        }
    }

    /// Submit application CPU work for a tier.
    pub fn submit_work(&mut self, tier: Tier, token: WorkToken, cycles: f64) {
        match self {
            Platform::Virt(v) => v.submit_work(tier, token, cycles),
            Platform::Phys(p) => p.submit_work(tier, token, cycles),
        }
    }

    /// Run one scheduling quantum; returns completed work tokens.
    pub fn tick(&mut self, now: SimTime, dt: SimDuration, out: &mut Vec<(Tier, WorkToken)>) {
        match self {
            Platform::Virt(v) => v.tick(now, dt, out),
            Platform::Phys(p) => p.tick(dt, out),
        }
    }

    /// Issue a disk I/O for a tier; returns the completion time.
    pub fn disk_io(&mut self, now: SimTime, tier: Tier, req: IoRequest) -> SimTime {
        match self {
            Platform::Virt(v) => v.disk_io(now, tier, req),
            Platform::Phys(p) => p.disk_io(now, tier, req),
        }
    }

    /// Client request entering the web tier; returns arrival time.
    pub fn net_client_to_web(&mut self, now: SimTime, bytes: u64) -> SimTime {
        match self {
            Platform::Virt(v) => v.net_client_to_web(now, bytes),
            Platform::Phys(p) => p.net_client_to_web(now, bytes),
        }
    }

    /// Response leaving the web tier; returns client delivery time.
    pub fn net_web_to_client(&mut self, now: SimTime, bytes: u64) -> SimTime {
        match self {
            Platform::Virt(v) => v.net_web_to_client(now, bytes),
            Platform::Phys(p) => p.net_web_to_client(now, bytes),
        }
    }

    /// Transfer between the tiers; `to_db` selects direction. Returns
    /// delivery time.
    pub fn net_web_db(&mut self, now: SimTime, to_db: bool, bytes: u64) -> SimTime {
        match self {
            Platform::Virt(v) => v.net_web_db(now, to_db, bytes),
            Platform::Phys(p) => p.net_web_db(now, to_db, bytes),
        }
    }

    /// Update the resident size of a tier's application processes.
    pub fn set_tier_memory(&mut self, tier: Tier, bytes: u64) {
        match self {
            Platform::Virt(v) => v.set_tier_memory(tier, bytes),
            Platform::Phys(p) => p.set_tier_memory(tier, bytes),
        }
    }

    /// Housekeeping hook, called about once per second (write-back
    /// flushes and similar platform-side periodic work).
    pub fn periodic(&mut self, now: SimTime) {
        match self {
            Platform::Virt(v) => v.periodic(now),
            Platform::Phys(p) => p.periodic(now),
        }
    }

    /// Collect per-host raw samples for one sampling interval.
    pub fn sample_hosts(
        &mut self,
        dt: SimDuration,
        web_load: TierLoad,
        db_load: TierLoad,
    ) -> Vec<HostSample> {
        match self {
            Platform::Virt(v) => v.sample_hosts(dt, web_load, db_load),
            Platform::Phys(p) => p.sample_hosts(dt, web_load, db_load),
        }
    }

    /// Apply or clear a platform-level fault. Returns the work tokens of
    /// any requests abandoned by the fault (a crashed tier's in-flight
    /// work) so the orchestrator can fail them. Application-level faults
    /// ([`FaultKind::TierErrors`]) are a no-op here — the workload layer
    /// handles them.
    pub fn apply_fault(&mut self, kind: &FaultKind, active: bool) -> Vec<(Tier, WorkToken)> {
        match self {
            Platform::Virt(v) => v.apply_fault(kind, active),
            Platform::Phys(p) => p.apply_fault(kind, active),
        }
    }

    /// Whether a tier's host/domain is currently up (not crash-injected).
    pub fn tier_up(&self, tier: Tier) -> bool {
        match self {
            Platform::Virt(v) => v.tier_up(tier),
            Platform::Phys(p) => p.tier_up(tier),
        }
    }

    /// Host labels in presentation order (front-end, back-end,
    /// hypervisor view if any).
    pub fn host_labels(&self) -> Vec<&'static str> {
        match self {
            Platform::Virt(_) => vec![
                VirtPlatform::WEB_HOST,
                VirtPlatform::DB_HOST,
                VirtPlatform::DOM0_HOST,
            ],
            Platform::Phys(_) => vec![PhysPlatform::WEB_HOST, PhysPlatform::DB_HOST],
        }
    }
}
