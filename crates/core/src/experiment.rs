//! Experiment execution and result extraction.

use crate::config::{Deployment, ExperimentConfig};
use crate::online::{OnlineBank, OnlineReport};
use crate::phys::{HostIoPolicy, PhysPlatform};
use crate::platform::Platform;
use crate::virt::VirtPlatform;
use crate::workload::{bootstrap, World};
use cloudchar_analysis::Resource;
use cloudchar_hw::ServerSpec;
use cloudchar_monitor::{catalog, ChunkWriter, FaultSummary, SeriesStore, Source};
use cloudchar_rubis::{ClientCohort, Database, MySqlServer, WebAppServer};
use cloudchar_simcore::shard::{RunMode, ShardCtx, ShardLogic, ShardedEngine, Topology};
use cloudchar_simcore::{audit, Engine, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced it.
    pub config: ExperimentConfig,
    /// All sampled metric series.
    pub store: SeriesStore,
    /// Host labels in presentation order.
    pub hosts: Vec<String>,
    /// Requests completed end-to-end.
    pub completed: u64,
    /// Mean end-to-end response time in seconds.
    pub response_time_mean_s: f64,
    /// Maximum end-to-end response time in seconds.
    pub response_time_max_s: f64,
    /// 95th-percentile response time in seconds (histogram estimate).
    pub response_time_p95_s: f64,
    /// 99th-percentile response time in seconds (histogram estimate).
    pub response_time_p99_s: f64,
    /// Events executed by the engine.
    pub events: u64,
    /// Per-interaction transaction statistics: (script name,
    /// completions, mean latency in seconds).
    pub transactions: Vec<(String, u64, f64)>,
    /// Fault observability record; `None` for fault-free runs (and for
    /// traces written before fault injection existed).
    #[serde(default)]
    pub faults: Option<FaultSummary>,
}

/// The paper's server spec with failure-injected disk degradation.
fn degraded_spec(factor: f64) -> ServerSpec {
    let mut spec = ServerSpec::hp_proliant();
    if factor > 1.0 {
        spec.disk.bandwidth = (spec.disk.bandwidth as f64 / factor) as u64;
        spec.disk.positioning = spec.disk.positioning.mul_f64(factor);
        spec.disk.sequential_positioning = spec.disk.sequential_positioning.mul_f64(factor);
    }
    spec
}

/// Run one experiment to completion.
pub fn run(cfg: ExperimentConfig) -> ExperimentResult {
    let (mut engine, mut world) = build(&cfg);
    engine.run_until(&mut world, cfg.end_time());
    finalize(cfg, engine, world)
}

/// Run one experiment with the sampling tick spilling to a chunked
/// compressed trace file at `path` instead of the in-memory store:
/// resident series memory stays bounded by the open-chunk working set
/// however long the run is. The simulation itself is byte-identical to
/// [`run`] (tracing only redirects the sample sink), so counters,
/// latencies and the replay fingerprint are unchanged; the returned
/// result's `store` is empty, and analysis reads the trace through
/// [`crate::trace`].
pub fn run_traced(
    cfg: ExperimentConfig,
    path: &std::path::Path,
) -> std::io::Result<ExperimentResult> {
    let opts = RunOptions {
        trace_out: Some(path.to_path_buf()),
        ..RunOptions::default()
    };
    run_opts(cfg, &opts).map(|(result, _)| result)
}

/// Composable run options: the sinks and observers a run can carry.
/// All combinations are valid — tracing redirects the sample sink,
/// online profiling only observes, and the sharded engine produces
/// byte-identical events — so the simulation itself never changes.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Spill sampled rows to a chunked compressed trace at this path
    /// (the in-memory store stays empty), as in [`run_traced`].
    pub trace_out: Option<std::path::PathBuf>,
    /// Arm live online characterization over sliding windows of this
    /// many samples; the run returns an [`OnlineReport`].
    pub online_window: Option<usize>,
    /// Route through the sharded runner with this many worker threads,
    /// as in [`run_sharded`].
    pub sharded_jobs: Option<usize>,
}

/// Run one experiment with composable [`RunOptions`]. The second
/// element of the result is the online report when
/// [`RunOptions::online_window`] was set.
pub fn run_opts(
    cfg: ExperimentConfig,
    opts: &RunOptions,
) -> std::io::Result<(ExperimentResult, Option<OnlineReport>)> {
    let (engine, mut world) = build(&cfg);
    if let Some(path) = &opts.trace_out {
        let writer = ChunkWriter::create(path, "", cloudchar_monitor::CHUNK_SAMPLES)?;
        world.set_trace_writer(writer);
    }
    if let Some(window) = opts.online_window {
        world.set_online(OnlineBank::new(window, cfg.sample_interval.as_secs_f64()));
    }
    let (engine, mut world) = match opts.sharded_jobs {
        Some(jobs) => {
            let mut sharded =
                ShardedEngine::new(Topology::new(1), vec![MonoShard { engine, world }]);
            sharded.run(cfg.end_time(), RunMode::Windowed { jobs: jobs.max(1) });
            let Some(MonoShard { engine, world }) = sharded.into_logics().pop() else {
                unreachable!("one shard in, one shard out");
            };
            (engine, world)
        }
        None => {
            let mut engine = engine;
            engine.run_until(&mut world, cfg.end_time());
            (engine, world)
        }
    };
    let (writer, deferred) = world.take_trace();
    if let Some(e) = deferred {
        return Err(e);
    }
    if let Some(mut w) = writer {
        w.finish()?;
    }
    let online = world.take_online().map(OnlineBank::finish);
    Ok((finalize(cfg, engine, world), online))
}

/// Run one experiment through the sharded runner.
///
/// An [`ExperimentConfig`] world is *one* physical host (both RUBiS
/// tiers in VMs on it, or two directly-cabled servers sharing one
/// event stream), so it maps onto a single shard wrapping the whole
/// engine/world pair — byte-identical to [`run`] by construction, at
/// any `jobs`, which is exactly what `tests/shard_equiv.rs` pins.
/// Multi-host parallelism lives in [`crate::fleet`], where each pod is
/// its own shard.
pub fn run_sharded(cfg: ExperimentConfig, jobs: usize) -> ExperimentResult {
    let (engine, world) = build(&cfg);
    let mut sharded = ShardedEngine::new(Topology::new(1), vec![MonoShard { engine, world }]);
    sharded.run(cfg.end_time(), RunMode::Windowed { jobs: jobs.max(1) });
    let Some(MonoShard { engine, world }) = sharded.into_logics().pop() else {
        unreachable!("one shard in, one shard out");
    };
    finalize(cfg, engine, world)
}

/// The whole single-host experiment as one shard: no in-links means an
/// unbounded horizon, so the runner executes it in a single window.
struct MonoShard {
    engine: Engine<World>,
    world: World,
}

impl ShardLogic for MonoShard {
    type Msg = ();

    fn next_local(&mut self) -> Option<SimTime> {
        self.engine.peek_next_time()
    }

    fn run_local(&mut self, ctx: &mut ShardCtx<'_, ()>) -> u64 {
        self.engine.run_before(&mut self.world, ctx.limit())
    }

    fn on_message(&mut self, _ctx: &mut ShardCtx<'_, ()>, _src: u32, _msg: ()) {
        unreachable!("a single-shard topology has no channels");
    }
}

/// Build the engine/world pair of an experiment: platform, application
/// models, bootstrap events, and any fault plan — everything up to the
/// first event execution.
fn build(cfg: &ExperimentConfig) -> (Engine<World>, World) {
    cfg.validate().expect("invalid experiment config");
    let master = SimRng::new(cfg.seed);
    let mut db_rng = master.derive("db-gen");
    let mut client_rng = master.derive("clients");
    let workload_rng = master.derive("workload");
    let platform_rng = master.derive("platform");
    let fault_rng = master.derive("faults");

    let spec = degraded_spec(cfg.disk_degradation);
    let db = Database::generate(cfg.db_scale, &mut db_rng);
    let mut mysql = MySqlServer::new(db, cfg.mysql);
    // The paper measures a warm database; leave some cold tail so the
    // early-run read decay of Figure 3 remains visible.
    mysql.prewarm(0.6);
    let web = WebAppServer::new(cfg.web);
    let clients = ClientCohort::new(cfg.clients, cfg.mix, &mut client_rng);
    let platform = match cfg.deployment {
        Deployment::Virtualized => Platform::Virt(Box::new(VirtPlatform::new(
            spec,
            crate::virt::VirtOptions {
                overhead: cfg.overhead,
                vm_cap_percent: cfg.vm_cap_percent,
                background_vms: cfg.background_vms,
                background_util: cfg.background_util,
                background_iops: cfg.background_iops,
            },
            platform_rng,
        ))),
        Deployment::NonVirtualized => Platform::Phys(Box::new(PhysPlatform::new(
            spec,
            HostIoPolicy::default(),
            platform_rng,
        ))),
    };
    let mut world = World::new(
        cfg.clone(),
        platform,
        web,
        mysql,
        clients,
        workload_rng,
        fault_rng,
    );
    let mut engine: Engine<World> = Engine::new();
    bootstrap(&mut engine, &mut world);
    if !cfg.faults.is_empty() {
        crate::faults::install_plan(&cfg.faults, &mut engine, &mut world);
    }
    (engine, world)
}

/// Extract the [`ExperimentResult`] of a completed engine/world pair.
fn finalize(cfg: ExperimentConfig, engine: Engine<World>, world: World) -> ExperimentResult {
    let hosts: Vec<String> = world
        .platform
        .host_labels()
        .iter()
        .map(|s| s.to_string())
        .collect();
    if audit::is_enabled() {
        // Every sampled series must hold exactly one point per sampling
        // tick at the configured cadence (the paper's 2 s interval).
        let expected = cfg.sample_count();
        for (host, metric, series) in world.store.iter() {
            audit::check(
                "monitor.sample_cadence",
                series.start.as_nanos(),
                series.len() == expected && series.interval == cfg.sample_interval,
                || {
                    format!(
                        "{host}/{metric:?}: {} samples at {} ns interval, expected {} at {} ns",
                        series.len(),
                        series.interval.as_nanos(),
                        expected,
                        cfg.sample_interval.as_nanos()
                    )
                },
            );
        }
    }

    let transactions = cloudchar_rubis::Interaction::ALL
        .iter()
        .enumerate()
        .map(|(i, inter)| {
            (
                inter.script_name().to_string(),
                world.interaction_counts[i],
                world.interaction_latency[i].mean(),
            )
        })
        .collect();
    let faults = if world.faults_enabled() {
        Some(world.fault_summary())
    } else {
        None
    };
    ExperimentResult {
        config: cfg,
        hosts,
        completed: world.completed,
        response_time_mean_s: world.response_time.mean(),
        response_time_max_s: world.response_time.max().unwrap_or(0.0),
        response_time_p95_s: world.response_hist.quantile(0.95).unwrap_or(0.0),
        response_time_p99_s: world.response_hist.quantile(0.99).unwrap_or(0.0),
        events: engine.events_executed(),
        transactions,
        faults,
        store: world.store,
    }
}

impl ExperimentResult {
    /// The sysstat plane a host reports through.
    fn sysstat_source(&self, host: &str) -> Source {
        if host.ends_with("-vm") {
            Source::VmSysstat
        } else {
            Source::HypervisorSysstat
        }
    }

    fn sysstat_series(&self, host: &str, name: &str) -> Vec<f64> {
        let source = self.sysstat_source(host);
        let id = catalog()
            .find(name, source)
            .unwrap_or_else(|| panic!("metric {name} not in catalog"));
        self.store
            .get(host, id)
            .map(|s| s.values.clone())
            .unwrap_or_default()
    }

    fn perf_series(&self, host: &str, name: &str) -> Vec<f64> {
        let id = catalog()
            .find(name, Source::PerfCounter)
            .unwrap_or_else(|| panic!("perf metric {name} not in catalog"));
        self.store
            .get(host, id)
            .map(|s| s.values.clone())
            .unwrap_or_default()
    }

    /// CPU cycles per sample (the y-axis of Figures 1 and 5).
    pub fn cpu_cycles(&self, host: &str) -> Vec<f64> {
        self.perf_series(host, "cycles")
    }

    /// Used memory in MB per sample (Figures 2 and 6).
    pub fn ram_mb(&self, host: &str) -> Vec<f64> {
        self.sysstat_series(host, "kbmemused")
            .into_iter()
            .map(|kb| kb / 1024.0)
            .collect()
    }

    /// Disk read+write KB per sample (Figures 3 and 7).
    pub fn disk_kb(&self, host: &str) -> Vec<f64> {
        let dt = self.config.sample_interval.as_secs_f64();
        let read = self.sysstat_series(host, "bread/s");
        let write = self.sysstat_series(host, "bwrtn/s");
        read.iter()
            .zip(&write)
            .map(|(r, w)| (r + w) * 512.0 * dt / 1024.0)
            .collect()
    }

    /// Network rx+tx KB per sample (Figures 4 and 8).
    pub fn net_kb(&self, host: &str) -> Vec<f64> {
        let dt = self.config.sample_interval.as_secs_f64();
        let rx = self.sysstat_series(host, "eth0-rxkB/s");
        let tx = self.sysstat_series(host, "eth0-txkB/s");
        rx.iter().zip(&tx).map(|(r, t)| (r + t) * dt).collect()
    }

    /// Demand series of one resource on one host, in the figures' units.
    pub fn resource_series(&self, resource: Resource, host: &str) -> Vec<f64> {
        match resource {
            Resource::Cpu => self.cpu_cycles(host),
            Resource::Ram => self.ram_mb(host),
            Resource::Disk => self.disk_kb(host),
            Resource::Net => self.net_kb(host),
        }
    }

    /// Front-end host label (web tier).
    pub fn front_host(&self) -> &str {
        &self.hosts[0]
    }

    /// Back-end host label (DB tier).
    pub fn back_host(&self) -> &str {
        &self.hosts[1]
    }

    /// Hypervisor-view host label, when the deployment has one.
    pub fn hypervisor_host(&self) -> Option<&str> {
        self.hosts.get(2).map(|s| s.as_str())
    }

    /// Persist the full result (config + every sampled series) as JSON —
    /// the "trace" of a run, for offline trace-driven analysis.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_vec(self).expect("result serializes");
        std::fs::write(path, json)
    }

    /// Load a result previously written by [`ExperimentResult::save_json`].
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<ExperimentResult> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudchar_rubis::WorkloadMix;

    #[test]
    fn fast_virtualized_run_produces_data() {
        let cfg = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        let samples = cfg.sample_count();
        let r = run(cfg);
        assert_eq!(r.hosts.len(), 3);
        assert!(r.completed > 100, "completed {}", r.completed);
        assert!(r.response_time_mean_s > 0.0);
        assert!(r.response_time_p95_s >= r.response_time_mean_s * 0.5);
        assert!(r.response_time_p99_s >= r.response_time_p95_s);
        for host in &r.hosts {
            assert_eq!(r.cpu_cycles(host).len(), samples, "{host} cpu");
            assert_eq!(r.ram_mb(host).len(), samples, "{host} ram");
            assert_eq!(r.disk_kb(host).len(), samples, "{host} disk");
            assert_eq!(r.net_kb(host).len(), samples, "{host} net");
        }
        // The web VM carried network traffic; dom0 burned cycles.
        assert!(r.net_kb("web-vm").iter().sum::<f64>() > 0.0);
        assert!(r.cpu_cycles("dom0").iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn fast_physical_run_produces_data() {
        let cfg = ExperimentConfig::fast(Deployment::NonVirtualized, WorkloadMix::BIDDING);
        let r = run(cfg);
        assert_eq!(r.hosts.len(), 2);
        assert!(r.hypervisor_host().is_none());
        assert!(r.completed > 100, "completed {}", r.completed);
        assert!(r.cpu_cycles("web-pm").iter().sum::<f64>() > 0.0);
        assert!(r.ram_mb("mysql-pm").iter().all(|&m| m > 100.0));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let cfg = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BIDDING);
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.cpu_cycles("web-vm"), b.cpu_cycles("web-vm"));
        assert_eq!(a.disk_kb("dom0"), b.disk_kb("dom0"));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg1 = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BIDDING);
        let mut cfg2 = cfg1.clone();
        cfg2.seed = 777;
        let a = run(cfg1);
        let b = run(cfg2);
        assert_ne!(a.cpu_cycles("web-vm"), b.cpu_cycles("web-vm"));
    }

    #[test]
    fn trace_round_trips_through_json() {
        let cfg = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BIDDING);
        let r = run(cfg);
        let dir = std::env::temp_dir().join("cloudchar-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        r.save_json(&path).unwrap();
        let back = ExperimentResult::load_json(&path).unwrap();
        assert_eq!(back.completed, r.completed);
        assert_eq!(back.cpu_cycles("web-vm"), r.cpu_cycles("web-vm"));
        // JSON float text round-trips can differ by one ULP; compare
        // counts exactly and latencies with tolerance.
        assert_eq!(back.transactions.len(), r.transactions.len());
        for (a, b) in back.transactions.iter().zip(&r.transactions) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
            assert!((a.2 - b.2).abs() <= 1e-12 * (1.0 + b.2.abs()));
        }
        std::fs::remove_file(&path).ok();
    }

    /// `|a - b|` within 1e-9 relative-or-absolute, the online-vs-batch
    /// parity bound.
    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn online_tail_matches_batch_over_trailing_window() {
        use cloudchar_analysis::SeriesScratch;
        let cfg = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        let window = 32usize;
        let opts = RunOptions {
            online_window: Some(window),
            ..RunOptions::default()
        };
        let (r, report) = run_opts(cfg, &opts).unwrap();
        let report = report.expect("online was armed");
        assert_eq!(report.window, window);
        let mut scratch = SeriesScratch::new();
        for host in &r.hosts {
            for (resource, series) in [
                ("cpu", r.cpu_cycles(host)),
                ("ram", r.ram_mb(host)),
                ("disk", r.disk_kb(host)),
                ("net", r.net_kb(host)),
            ] {
                let snap = report
                    .snapshots
                    .iter()
                    .rev()
                    .find(|s| s.host == *host && s.resource == resource)
                    .unwrap_or_else(|| panic!("{host}/{resource} snapshot"));
                assert_eq!(snap.profile.samples_seen as usize, series.len());
                let tail = &series[series.len().saturating_sub(window)..];
                assert_eq!(snap.profile.window_len, tail.len());
                scratch.load(tail);
                let batch = scratch.summary().expect("finite series");
                let online = snap.profile.summary.as_ref().expect("clean window");
                assert!(close(online.mean, batch.mean), "{host}/{resource} mean");
                assert!(
                    close(online.std_dev, batch.std_dev),
                    "{host}/{resource} std"
                );
                assert!(close(online.min, batch.min), "{host}/{resource} min");
                assert!(close(online.max, batch.max), "{host}/{resource} max");
                assert!(close(online.p95, batch.p95), "{host}/{resource} p95");
                let (k, r1) = snap.profile.autocorr[0];
                assert_eq!(k, 1);
                match (r1, scratch.autocorrelation(1)) {
                    (Some(a), Some(b)) => assert!(close(a, b), "{host}/{resource} ac1"),
                    (a, b) => assert_eq!(a, b, "{host}/{resource} ac1 option"),
                }
                let threshold = (batch.mean.abs() * 0.10).max(1e-9);
                let jumps = scratch.detect_jumps(15, threshold).to_vec();
                assert_eq!(
                    snap.profile.jumps.len(),
                    jumps.len(),
                    "{host}/{resource} jumps"
                );
                for (o, b) in snap.profile.jumps.iter().zip(&jumps) {
                    assert_eq!(o.index, b.index);
                    assert!(close(o.magnitude, b.magnitude));
                }
                let dominant = scratch.dominant_periods(0.10, 1).first().copied();
                match (&snap.profile.dominant, &dominant) {
                    (Some(o), Some(b)) => {
                        assert_eq!(o.period_samples, b.period_samples, "{host}/{resource}");
                        assert!(close(o.power, b.power), "{host}/{resource} power");
                    }
                    (o, b) => assert_eq!(o.is_some(), b.is_some(), "{host}/{resource} period"),
                }
            }
        }
    }

    #[test]
    fn online_profiling_does_not_perturb_the_run() {
        let cfg = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BIDDING);
        let plain = run(cfg.clone());
        let opts = RunOptions {
            online_window: Some(16),
            ..RunOptions::default()
        };
        let (observed, report) = run_opts(cfg, &opts).unwrap();
        assert!(report.is_some());
        assert_eq!(plain.completed, observed.completed);
        assert_eq!(plain.events, observed.events);
        assert_eq!(plain.cpu_cycles("web-vm"), observed.cpu_cycles("web-vm"));
        assert_eq!(plain.net_kb("web-vm"), observed.net_kb("web-vm"));
        assert_eq!(plain.disk_kb("dom0"), observed.disk_kb("dom0"));
    }

    #[test]
    fn online_composes_with_sharded_engine() {
        let cfg = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        let plain = run(cfg.clone());
        let opts = RunOptions {
            online_window: Some(16),
            sharded_jobs: Some(2),
            ..RunOptions::default()
        };
        let (sharded, report) = run_opts(cfg, &opts).unwrap();
        let report = report.expect("online was armed");
        assert!(!report.snapshots.is_empty());
        assert_eq!(plain.completed, sharded.completed);
        assert_eq!(plain.cpu_cycles("web-vm"), sharded.cpu_cycles("web-vm"));
    }

    #[test]
    fn front_end_dominates_back_end() {
        let cfg = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        let r = run(cfg);
        let web_net: f64 = r.net_kb(r.front_host()).iter().sum();
        let db_net: f64 = r.net_kb(r.back_host()).iter().sum();
        assert!(
            web_net > 5.0 * db_net,
            "front-end net {web_net} should dwarf back-end {db_net}"
        );
    }
}
