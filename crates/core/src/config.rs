//! Experiment configuration.

use cloudchar_rubis::{DbScale, MySqlConfig, WebConfig, WorkloadMix};
use cloudchar_simcore::{FaultPlan, SimDuration, SimTime};
use cloudchar_xen::OverheadModel;
use serde::{Deserialize, Serialize};

/// Which deployment the experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Deployment {
    /// §4.1: both RUBiS tiers in VMs on one Xen host; dom0 is profiled
    /// as the hypervisor view.
    Virtualized,
    /// §4.2: each tier on its own physical server.
    NonVirtualized,
}

/// Full experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Master seed; every stochastic component derives a named stream.
    pub seed: u64,
    /// Deployment under test.
    pub deployment: Deployment,
    /// Number of emulated clients (paper: 1000).
    pub clients: u32,
    /// Request composition.
    pub mix: WorkloadMix,
    /// Run length (paper: ~20 minutes).
    pub duration: SimDuration,
    /// Sampling interval (paper: 2 s).
    pub sample_interval: SimDuration,
    /// Clients connect staggered over this window at the start.
    pub rampup: SimDuration,
    /// Database population.
    pub db_scale: DbScale,
    /// Virtualization cost model (ignored for non-virtualized runs).
    pub overhead: OverheadModel,
    /// Credit-scheduler cap applied to each guest VM, in percent of one
    /// physical CPU (`None` = uncapped, the paper's setting).
    pub vm_cap_percent: Option<u32>,
    /// Colocated background VMs on the virtualized host (the paper's
    /// servers host up to ten VMs; its experiment uses two).
    pub background_vms: u32,
    /// CPU demand of each background VM (fraction of one VCPU).
    pub background_util: f64,
    /// Disk I/O rate of each background VM (48 KB random ops/s).
    pub background_iops: f64,
    /// Disk health factor for failure injection: 1.0 = healthy; k > 1
    /// multiplies positioning latency and divides bandwidth by k
    /// (a dying spindle relocating sectors).
    pub disk_degradation: f64,
    /// Web tier configuration.
    pub web: WebConfig,
    /// Database tier configuration.
    pub mysql: MySqlConfig,
    /// Fault-injection schedule. The default (empty) plan injects
    /// nothing and leaves the run byte-identical to the pre-fault
    /// testbed; a non-empty plan also arms client timeouts and retries.
    #[serde(default)]
    pub faults: FaultPlan,
}

impl ExperimentConfig {
    /// Largest client population the columnar cohort is sized (and
    /// tested) for. One million clients is the ROADMAP's
    /// production-scale target; the cap mostly guards against typos
    /// (`--clients 10000000`) silently allocating tens of GB.
    pub const MAX_CLIENTS: u32 = 1_000_000;

    /// The paper's experiment: 1000 clients, 7 s think time (inside the
    /// client model), ~20 min, 2 s samples.
    pub fn paper(deployment: Deployment, mix: WorkloadMix) -> Self {
        ExperimentConfig {
            seed: 42,
            deployment,
            clients: 1000,
            mix,
            duration: SimDuration::from_secs(1200),
            sample_interval: SimDuration::from_secs(2),
            rampup: SimDuration::from_secs(45),
            db_scale: DbScale::paper(),
            overhead: OverheadModel::default(),
            vm_cap_percent: None,
            background_vms: 0,
            background_util: 0.0,
            background_iops: 0.0,
            disk_degradation: 1.0,
            web: WebConfig::default(),
            mysql: MySqlConfig::default(),
            faults: FaultPlan::default(),
        }
    }

    /// A reduced-scale configuration for tests: 120 clients, 2 minutes.
    pub fn fast(deployment: Deployment, mix: WorkloadMix) -> Self {
        ExperimentConfig {
            clients: 120,
            duration: SimDuration::from_secs(120),
            rampup: SimDuration::from_secs(10),
            db_scale: DbScale::small(),
            ..ExperimentConfig::paper(deployment, mix)
        }
    }

    /// Number of samples the run will produce.
    pub fn sample_count(&self) -> usize {
        (self.duration.as_nanos() / self.sample_interval.as_nanos()) as usize
    }

    /// End-of-run instant.
    pub fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("clients must be > 0".into());
        }
        if self.clients > Self::MAX_CLIENTS {
            return Err(format!(
                "clients must be <= {} (cohort scale ceiling), got {}",
                Self::MAX_CLIENTS,
                self.clients
            ));
        }
        if self.sample_interval > self.duration {
            return Err("sample interval exceeds run duration".into());
        }
        if !(0.0..=1.0).contains(&self.mix.browsing_fraction) {
            return Err("browsing fraction must be in [0,1]".into());
        }
        if !(self.disk_degradation.is_finite() && self.disk_degradation >= 1.0) {
            return Err("disk_degradation must be >= 1".into());
        }
        self.faults.validate()?;
        for ev in &self.faults.events {
            if ev.at_s >= self.duration.as_secs_f64() {
                return Err(format!(
                    "fault at {} s starts after the {} s run ends",
                    ev.at_s,
                    self.duration.as_secs_f64()
                ));
            }
        }
        self.overhead.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_published_setup() {
        let c = ExperimentConfig::paper(Deployment::Virtualized, WorkloadMix::BROWSING);
        assert_eq!(c.clients, 1000);
        assert_eq!(c.duration, SimDuration::from_secs(1200));
        assert_eq!(c.sample_interval, SimDuration::from_secs(2));
        assert_eq!(c.sample_count(), 600);
        c.validate().unwrap();
    }

    #[test]
    fn fast_is_reduced() {
        let c = ExperimentConfig::fast(Deployment::NonVirtualized, WorkloadMix::BIDDING);
        assert!(c.clients < 1000);
        assert!(c.duration < SimDuration::from_secs(1200));
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut c = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        c.clients = 0;
        assert!(c.validate().is_err());
        let mut c2 = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        c2.sample_interval = SimDuration::from_secs(10_000);
        assert!(c2.validate().is_err());
        let mut c3 = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        c3.mix = WorkloadMix {
            browsing_fraction: 2.0,
        };
        assert!(c3.validate().is_err());
    }

    #[test]
    fn validate_bounds_the_client_scale_knob() {
        let mut c = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        c.clients = 100_000;
        assert_eq!(c.validate(), Ok(()), "100k-client smoke scale is legal");
        c.clients = ExperimentConfig::MAX_CLIENTS;
        assert_eq!(c.validate(), Ok(()), "the 1M ceiling itself is legal");
        c.clients = ExperimentConfig::MAX_CLIENTS + 1;
        assert!(c.validate().is_err(), "past the ceiling is rejected");
    }

    #[test]
    fn serde_round_trip() {
        let c = ExperimentConfig::paper(Deployment::Virtualized, WorkloadMix::percent_browsing(30));
        let s = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn faults_field_defaults_to_empty_plan() {
        // Pre-fault configs (no `faults` key) must still parse.
        let c = ExperimentConfig::paper(Deployment::Virtualized, WorkloadMix::BROWSING);
        let s = serde_json::to_string(&c).unwrap();
        let mut v: serde::Value = serde_json::from_str(&s).unwrap();
        if let serde::Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "faults");
        }
        let stripped = serde_json::to_string(&v).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&stripped).unwrap();
        assert!(back.faults.is_empty());
        assert_eq!(back, c);
    }

    #[test]
    fn validate_rejects_bad_fault_plans() {
        use cloudchar_simcore::{FaultEvent, FaultKind};
        let mut c = ExperimentConfig::fast(Deployment::Virtualized, WorkloadMix::BROWSING);
        // A fault starting after the run ends is misconfigured.
        c.faults.events.push(FaultEvent {
            at_s: 10_000.0,
            duration_s: 5.0,
            kind: FaultKind::DiskSlow { factor: 2.0 },
        });
        assert!(c.validate().is_err());
        c.faults.events[0] = FaultEvent {
            at_s: 50.0,
            duration_s: -1.0,
            kind: FaultKind::DiskSlow { factor: 2.0 },
        };
        assert!(c.validate().is_err());
        c.faults.events[0] = FaultEvent {
            at_s: 50.0,
            duration_s: 20.0,
            kind: FaultKind::DiskSlow { factor: 2.0 },
        };
        assert_eq!(c.validate(), Ok(()));
    }
}
