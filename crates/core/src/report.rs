//! Markdown report generation: one self-contained paper-vs-measured
//! document from a set of experiment results, written by the repro
//! harness to `results/REPORT.md`.

use crate::compare::{paper_values, q1_tier_lag, q2_ram_jumps, q3_disk_cv, ratio_report};
use crate::experiment::ExperimentResult;
use crate::sweep::par_map_ordered_with;
use cloudchar_analysis::{Resource, ResourceRatios, SeriesScratch};
use std::fmt::Write as _;

/// The four runs a full report covers.
#[derive(Debug)]
pub struct ReportInputs<'a> {
    /// Virtualized, browsing mix.
    pub virt_browse: &'a ExperimentResult,
    /// Virtualized, bidding mix.
    pub virt_bid: &'a ExperimentResult,
    /// Non-virtualized, browsing mix.
    pub phys_browse: &'a ExperimentResult,
    /// Non-virtualized, bidding mix.
    pub phys_bid: &'a ExperimentResult,
}

fn ratio_table(out: &mut String, title: &str, paper: ResourceRatios, ours: ResourceRatios) {
    writeln!(out, "### {title}\n").unwrap();
    writeln!(out, "| | cpu | ram | disk | net |").unwrap();
    writeln!(out, "|---|---|---|---|---|").unwrap();
    writeln!(
        out,
        "| paper | {:.2} | {:.2} | {:.2} | {:.2} |",
        paper.cpu, paper.ram, paper.disk, paper.net
    )
    .unwrap();
    writeln!(
        out,
        "| measured | {:.2} | {:.2} | {:.2} | {:.2} |\n",
        ours.cpu, ours.ram, ours.disk, ours.net
    )
    .unwrap();
}

fn figure_table(
    out: &mut String,
    title: &str,
    rows: &[(&str, &ExperimentResult, &str, Resource)],
    jobs: usize,
) {
    writeln!(out, "### {title}\n").unwrap();
    writeln!(out, "| series | mean | max | cv | dominant period |").unwrap();
    writeln!(out, "|---|---|---|---|---|").unwrap();
    // Profile the rows on the pool (summary + periodogram per series),
    // then render serially in row order — the markdown is byte-identical
    // to the serial loop for every job count.
    let stats = par_map_ordered_with(
        rows,
        jobs,
        SeriesScratch::new,
        |scratch, &(_, result, host, resource)| {
            let xs = result.resource_series(resource, host);
            scratch.load(&xs);
            let summary = scratch.summary()?;
            let period = scratch.dominant_periods(0.08, 1).first().copied();
            Some((summary, period))
        },
    );
    for ((label, _, _, _), stat) in rows.iter().zip(stats) {
        let Some((s, peak)) = stat else { continue };
        let period = peak
            .map(|p| format!("{:.0} s", p.period_samples * 2.0))
            .unwrap_or_else(|| "—".to_string());
        writeln!(
            out,
            "| {label} | {:.3e} | {:.3e} | {:.2} | {period} |",
            s.mean, s.max, s.cv
        )
        .unwrap();
    }
    writeln!(out).unwrap();
}

/// Render the full markdown report on the default-size worker pool.
pub fn render_report(inputs: &ReportInputs<'_>) -> String {
    render_report_jobs(inputs, crate::sweep::default_jobs())
}

/// Render the full markdown report, fanning the per-series figure
/// statistics across at most `jobs` pooled worker threads. The output
/// is byte-identical for every job count.
pub fn render_report_jobs(inputs: &ReportInputs<'_>, jobs: usize) -> String {
    let mut out = String::new();
    writeln!(out, "# cloudchar reproduction report\n").unwrap();
    writeln!(
        out,
        "Generated from seed {} at paper scale ({} clients, {:.0} s, {:.0} s samples).\n",
        inputs.virt_browse.config.seed,
        inputs.virt_browse.config.clients,
        inputs.virt_browse.config.duration.as_secs_f64(),
        inputs.virt_browse.config.sample_interval.as_secs_f64(),
    )
    .unwrap();

    writeln!(out, "## Run vitals\n").unwrap();
    writeln!(out, "| run | requests | mean resp (ms) | events |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for (label, r) in [
        ("virtualized/browsing", inputs.virt_browse),
        ("virtualized/bidding", inputs.virt_bid),
        ("non-virtualized/browsing", inputs.phys_browse),
        ("non-virtualized/bidding", inputs.phys_bid),
    ] {
        writeln!(
            out,
            "| {label} | {} | {:.1} | {} |",
            r.completed,
            r.response_time_mean_s * 1e3,
            r.events
        )
        .unwrap();
    }
    writeln!(out).unwrap();

    // Figures.
    for (fig, resource, unit) in [
        (1u8, Resource::Cpu, "cycles/2s"),
        (2, Resource::Ram, "MB"),
        (3, Resource::Disk, "KB/2s"),
        (4, Resource::Net, "KB/2s"),
    ] {
        figure_table(
            &mut out,
            &format!("Figure {fig} — {resource:?} ({unit}), virtualized"),
            &[
                ("Web+App VM browse", inputs.virt_browse, "web-vm", resource),
                ("Web+App VM bid", inputs.virt_bid, "web-vm", resource),
                ("MySQL VM browse", inputs.virt_browse, "mysql-vm", resource),
                ("MySQL VM bid", inputs.virt_bid, "mysql-vm", resource),
                ("Domain0 browse", inputs.virt_browse, "dom0", resource),
                ("Domain0 bid", inputs.virt_bid, "dom0", resource),
            ],
            jobs,
        );
    }
    for (fig, resource, unit) in [
        (5u8, Resource::Cpu, "cycles/2s"),
        (6, Resource::Ram, "MB"),
        (7, Resource::Disk, "KB/2s"),
        (8, Resource::Net, "KB/2s"),
    ] {
        figure_table(
            &mut out,
            &format!("Figure {fig} — {resource:?} ({unit}), non-virtualized"),
            &[
                ("Web+App PM browse", inputs.phys_browse, "web-pm", resource),
                ("Web+App PM bid", inputs.phys_bid, "web-pm", resource),
                ("MySQL PM browse", inputs.phys_browse, "mysql-pm", resource),
                ("MySQL PM bid", inputs.phys_bid, "mysql-pm", resource),
            ],
            jobs,
        );
    }

    // Ratios (mix-averaged, as in §4).
    writeln!(out, "## Ratios\n").unwrap();
    let avg = |a: ResourceRatios, b: ResourceRatios| ResourceRatios {
        cpu: 0.5 * (a.cpu + b.cpu),
        ram: 0.5 * (a.ram + b.ram),
        disk: 0.5 * (a.disk + b.disk),
        net: 0.5 * (a.net + b.net),
    };
    let rb = ratio_report(inputs.virt_browse, inputs.phys_browse);
    let rd = ratio_report(inputs.virt_bid, inputs.phys_bid);
    ratio_table(
        &mut out,
        "R1 — front-end vs back-end (virtualized)",
        paper_values::R1,
        avg(rb.r1, rd.r1),
    );
    ratio_table(
        &mut out,
        "R2 — VMs vs dom0 view",
        paper_values::R2,
        avg(rb.r2, rd.r2),
    );
    ratio_table(
        &mut out,
        "R3 — non-virt vs virt physical",
        paper_values::R3,
        avg(rb.r3, rd.r3),
    );
    ratio_table(
        &mut out,
        "R4 — physical-demand delta (%)",
        paper_values::R4_PERCENT,
        avg(rb.r4_percent, rd.r4_percent),
    );

    // Qualitative.
    writeln!(out, "## Qualitative claims\n").unwrap();
    for (label, r) in [
        ("virtualized/browsing", inputs.virt_browse),
        ("virtualized/bidding", inputs.virt_bid),
        ("non-virtualized/browsing", inputs.phys_browse),
        ("non-virtualized/bidding", inputs.phys_bid),
    ] {
        let lag = q1_tier_lag(r, 10)
            .map(|l| format!("{} samples (r={:.2})", l.lag_samples, l.correlation))
            .unwrap_or_else(|| "n/a".into());
        let jumps = q2_ram_jumps(r, 15, 40.0).len();
        let cv = q3_disk_cv(r, r.front_host());
        writeln!(
            out,
            "* **{label}**: web→db lag {lag}; {jumps} front-end RAM jump(s); front-end disk cv {cv:.2}"
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "See EXPERIMENTS.md for the per-claim verdicts and the analysis of\nthe paper's internally inconsistent ratio definitions."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Deployment, ExperimentConfig};
    use crate::experiment::run;
    use cloudchar_rubis::WorkloadMix;

    #[test]
    fn report_renders_all_sections() {
        let vb = run(ExperimentConfig::fast(
            Deployment::Virtualized,
            WorkloadMix::BROWSING,
        ));
        let vd = run(ExperimentConfig::fast(
            Deployment::Virtualized,
            WorkloadMix::BIDDING,
        ));
        let pb = run(ExperimentConfig::fast(
            Deployment::NonVirtualized,
            WorkloadMix::BROWSING,
        ));
        let pd = run(ExperimentConfig::fast(
            Deployment::NonVirtualized,
            WorkloadMix::BIDDING,
        ));
        let report = render_report(&ReportInputs {
            virt_browse: &vb,
            virt_bid: &vd,
            phys_browse: &pb,
            phys_bid: &pd,
        });
        for needle in [
            "# cloudchar reproduction report",
            "## Run vitals",
            "Figure 1",
            "Figure 8",
            "R1 — front-end vs back-end",
            "R4 — physical-demand delta",
            "## Qualitative claims",
            "| paper | 16.84 |",
        ] {
            assert!(report.contains(needle), "missing: {needle}");
        }
        // All 8 figures and 4 ratio tables render.
        assert_eq!(report.matches("### Figure").count(), 8);
        assert_eq!(report.matches("### R").count(), 4);

        // Byte-identical across job counts.
        let inputs = ReportInputs {
            virt_browse: &vb,
            virt_bid: &vd,
            phys_browse: &pb,
            phys_bid: &pd,
        };
        assert_eq!(
            render_report_jobs(&inputs, 1),
            render_report_jobs(&inputs, 6)
        );
    }
}
