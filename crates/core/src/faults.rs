//! Fault-plan interpretation: glue between the generic
//! [`cloudchar_simcore::fault`] schedule and the cloudchar testbed.
//!
//! A [`FaultPlan`] only names *what* happens *when*; this module decides
//! what each [`FaultKind`] means for a running [`World`] — platform-level
//! faults route through [`crate::platform::Platform::apply_fault`],
//! application-level errors arm the workload layer's per-tier error
//! probability, and the tokens of any work a crash dropped are failed as
//! requests.
//!
//! It also ships the three built-in chaos scenarios (`db-crash`,
//! `web-throttle`, `noisy-neighbor`) and a before/during/after resource
//! delta report mirroring the shape of the paper's R-claims.

use crate::experiment::ExperimentResult;
use crate::platform::Tier;
use crate::workload::{fail_request, FailCause, World};
use cloudchar_analysis::Resource;
use cloudchar_simcore::{fault, Engine, FaultEvent, FaultKind, FaultPhase, FaultPlan, FaultTier};

/// Names of the built-in failure scenarios.
pub const SCENARIOS: [&str; 3] = ["db-crash", "web-throttle", "noisy-neighbor"];

/// Build a named chaos scenario scaled to a run of `duration_s` seconds.
/// Returns `None` for unknown names.
pub fn scenario(name: &str, duration_s: f64) -> Option<FaultPlan> {
    let t = duration_s;
    let events = match name {
        // The MySQL VM crashes mid-run and reboots: the canonical
        // availability dip with full recovery after the boot delay.
        "db-crash" => vec![FaultEvent {
            at_s: 0.40 * t,
            duration_s: 0.15 * t,
            kind: FaultKind::DomainCrash {
                tier: FaultTier::Db,
                boot_delay_s: 2.0,
            },
        }],
        // The web tier is throttled to a quarter of one CPU while the
        // application sheds 10% of requests with HTTP 500s.
        "web-throttle" => vec![
            FaultEvent {
                at_s: 0.35 * t,
                duration_s: 0.25 * t,
                kind: FaultKind::VcpuCap {
                    tier: FaultTier::Web,
                    cap_percent: 25,
                },
            },
            FaultEvent {
                at_s: 0.35 * t,
                duration_s: 0.25 * t,
                kind: FaultKind::TierErrors {
                    tier: FaultTier::Web,
                    probability: 0.10,
                },
            },
        ],
        // A noisy co-tenant: scheduler starvation, a slow shared disk, a
        // congested NIC, and guest memory pressure in overlapping waves.
        "noisy-neighbor" => vec![
            FaultEvent {
                at_s: 0.30 * t,
                duration_s: 0.30 * t,
                kind: FaultKind::CreditStarve { util: 0.6 },
            },
            FaultEvent {
                at_s: 0.35 * t,
                duration_s: 0.25 * t,
                kind: FaultKind::DiskSlow { factor: 3.0 },
            },
            FaultEvent {
                at_s: 0.40 * t,
                duration_s: 0.20 * t,
                kind: FaultKind::NicDegrade {
                    loss: 0.02,
                    bandwidth_factor: 0.5,
                },
            },
            FaultEvent {
                at_s: 0.30 * t,
                duration_s: 0.35 * t,
                kind: FaultKind::MemPressure {
                    bytes: 512 * 1024 * 1024,
                },
            },
        ],
        _ => return None,
    };
    Some(FaultPlan {
        name: name.to_string(),
        events,
    })
}

/// Interpret one fault transition against the world: platform faults go
/// through the platform seam, tier errors arm the workload layer, and
/// work dropped by a crash fails its requests.
fn apply_world_fault(
    engine: &mut Engine<World>,
    world: &mut World,
    kind: &FaultKind,
    active: bool,
) {
    if let FaultKind::TierErrors { tier, probability } = *kind {
        world.set_tier_error(Tier::from(tier), if active { probability } else { 0.0 });
        return;
    }
    let dropped = world.platform.apply_fault(kind, active);
    for (_tier, token) in dropped {
        fail_request(engine, world, token.0, FailCause::Error);
    }
}

/// Install a fault plan into a bootstrapped engine/world pair. Every
/// inject/clear transition flows through the calendar queue (see
/// [`fault::install`]), so fault timing is part of the deterministic
/// event order. Also registers each fault's attribution window with the
/// fault monitor. Returns the number of events scheduled.
pub fn install_plan(plan: &FaultPlan, engine: &mut Engine<World>, world: &mut World) -> usize {
    plan.validate().expect("invalid fault plan");
    for ev in &plan.events {
        world
            .fault_monitor_mut()
            .push_window(ev.kind.label(), ev.at_s, ev.clear_s());
    }
    fault::install(plan, engine, |e, w, _idx, kind, phase| {
        apply_world_fault(e, w, kind, phase == FaultPhase::Inject);
    })
}

/// Mean resource demand of one host over one phase of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Host label the row describes.
    pub host: String,
    /// Resource the row describes.
    pub resource: Resource,
    /// Mean per-sample demand before any fault window opens.
    pub before: f64,
    /// Mean per-sample demand while the fault envelope is open.
    pub during: f64,
    /// Mean per-sample demand after the last fault clears.
    pub after: f64,
}

impl PhaseDelta {
    /// `during / before` (1.0 when the baseline is zero).
    pub fn during_ratio(&self) -> f64 {
        if self.before == 0.0 {
            1.0
        } else {
            self.during / self.before
        }
    }

    /// `after / before` (1.0 when the baseline is zero) — a recovery
    /// indicator: ≈1 means the fault's effects cleared.
    pub fn recovery_ratio(&self) -> f64 {
        if self.before == 0.0 {
            1.0
        } else {
            self.after / self.before
        }
    }
}

/// Before/during/after report of a fault-injected run, in the spirit of
/// the paper's R-claim ratio tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Plan that ran.
    pub plan_name: String,
    /// Sample-index envelope of the fault windows (`[start, end)`).
    pub window: (usize, usize),
    /// Per host × resource phase means.
    pub deltas: Vec<PhaseDelta>,
    /// Mean availability before the envelope opens.
    pub availability_before: f64,
    /// Mean availability inside the envelope.
    pub availability_during: f64,
    /// Mean availability after the envelope closes.
    pub availability_after: f64,
}

/// Compute the before/during/after deltas of a fault-injected result.
/// Returns `None` when the run carried no fault summary or its windows
/// leave no samples on one side of the envelope.
pub fn scenario_report(result: &ExperimentResult) -> Option<ScenarioReport> {
    let summary = result.faults.as_ref()?;
    let dt = result.config.sample_interval.as_secs_f64();
    let samples = result.config.sample_count();
    let start_s = summary
        .windows
        .iter()
        .map(|w| w.start_s)
        .fold(f64::INFINITY, f64::min);
    let end_s = summary
        .windows
        .iter()
        .map(|w| w.end_s)
        .fold(0.0_f64, f64::max);
    if !start_s.is_finite() || end_s <= start_s {
        return None;
    }
    let lo = ((start_s / dt).floor() as usize).min(samples);
    let hi = ((end_s / dt).ceil() as usize).min(samples);
    if lo == 0 || hi <= lo || hi >= samples {
        return None; // need samples on both sides of the envelope
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let mut deltas = Vec::new();
    for host in &result.hosts {
        for resource in [Resource::Cpu, Resource::Ram, Resource::Disk, Resource::Net] {
            let series = result.resource_series(resource, host);
            if series.len() != samples {
                continue;
            }
            deltas.push(PhaseDelta {
                host: host.clone(),
                resource,
                before: mean(&series[..lo]),
                during: mean(&series[lo..hi]),
                after: mean(&series[hi..]),
            });
        }
    }
    Some(ScenarioReport {
        plan_name: summary.plan_name.clone(),
        window: (lo, hi),
        deltas,
        availability_before: summary.availability_over(0, lo),
        availability_during: summary.availability_over(lo, hi),
        availability_after: summary.availability_over(hi, samples),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scenarios_validate_and_fit_the_run() {
        for name in SCENARIOS {
            let plan = scenario(name, 120.0).expect("known scenario");
            assert_eq!(plan.name, name);
            plan.validate().expect("scenario validates");
            for ev in &plan.events {
                assert!(ev.at_s < 120.0, "{name} event starts inside the run");
                assert!(ev.clear_s() < 120.0, "{name} event clears inside the run");
            }
        }
        assert!(scenario("no-such-chaos", 120.0).is_none());
    }

    #[test]
    fn scenario_fingerprints_are_duration_stable() {
        // Same name + duration ⇒ identical plan bytes and fingerprint.
        let a = scenario("db-crash", 120.0).unwrap();
        let b = scenario("db-crash", 120.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = scenario("db-crash", 1200.0).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn phase_delta_ratios() {
        let d = PhaseDelta {
            host: "web-vm".into(),
            resource: Resource::Cpu,
            before: 10.0,
            during: 25.0,
            after: 11.0,
        };
        assert!((d.during_ratio() - 2.5).abs() < 1e-12);
        assert!((d.recovery_ratio() - 1.1).abs() < 1e-12);
        let z = PhaseDelta { before: 0.0, ..d };
        assert_eq!(z.during_ratio(), 1.0);
    }
}
