//! The paper's quantitative comparisons (R1–R4, Q1–Q4), computed from
//! experiment results.
//!
//! Definitions follow §4.1/§4.2 as closely as the text permits. Where
//! the paper's own numbers are mutually inconsistent (its 3.47× CPU
//! aggregate in R3 versus its "+88% CPU" in R4 describe the same
//! comparison), we fix one definition per claim and record the choice —
//! see EXPERIMENTS.md for the arithmetic.

use crate::experiment::ExperimentResult;
use cloudchar_analysis::{
    demand_ratio, detect_jumps, find_lag, percent_more, Jump, LagResult, Resource, ResourceRatios,
};
use serde::{Deserialize, Serialize};

fn ratios_for(
    num: impl Fn(Resource) -> Vec<f64>,
    den: impl Fn(Resource) -> Vec<f64>,
) -> ResourceRatios {
    let r = |resource| {
        let a = num(resource);
        let b = den(resource);
        // Experiments always produce non-empty demand series; a missing
        // ratio (empty input or zero denominator) is reported as NaN so
        // downstream report tables can show a hole instead of panicking.
        demand_ratio(resource, &a, &b).unwrap_or(f64::NAN)
    };
    ResourceRatios {
        cpu: r(Resource::Cpu),
        ram: r(Resource::Ram),
        disk: r(Resource::Disk),
        net: r(Resource::Net),
    }
}

/// R1 (§4.1): front-end (web+app) demand over back-end (DB) demand,
/// virtualized deployment, VM-level measurements.
///
/// Paper: CPU 6.11, RAM 3.29, disk 5.71, net 55.56.
pub fn r1_front_vs_back(virt: &ExperimentResult) -> ResourceRatios {
    ratios_for(
        |res| virt.resource_series(res, virt.front_host()),
        |res| virt.resource_series(res, virt.back_host()),
    )
}

/// R2 (§4.1): aggregated VM demand over the hypervisor (dom0) view.
///
/// Paper: CPU 16.84, RAM 0.58, disk 0.47, net 0.98.
pub fn r2_vms_vs_dom0(virt: &ExperimentResult) -> ResourceRatios {
    let dom0 = virt.hypervisor_host().expect("virtualized result");
    ratios_for(
        |res| {
            let a = virt.resource_series(res, virt.front_host());
            let b = virt.resource_series(res, virt.back_host());
            cloudchar_analysis::elementwise_sum(&[&a, &b])
        },
        |res| virt.resource_series(res, dom0),
    )
}

/// R3 (§4.2): aggregate non-virtualized physical demand over the
/// virtualized environment's physical (dom0) view.
///
/// Paper: CPU 3.47, RAM 0.97, disk 0.6, net 0.98.
pub fn r3_nonvirt_vs_virt(phys: &ExperimentResult, virt: &ExperimentResult) -> ResourceRatios {
    let dom0 = virt.hypervisor_host().expect("virtualized result");
    ratios_for(
        |res| {
            let a = phys.resource_series(res, phys.front_host());
            let b = phys.resource_series(res, phys.back_host());
            cloudchar_analysis::elementwise_sum(&[&a, &b])
        },
        |res| virt.resource_series(res, dom0),
    )
}

/// R4 (§4.2): percent difference of the application's physical demand,
/// non-virtualized vs virtualized, compared per front-end server (the
/// web PM against the dom0 view — the reading under which the paper's
/// "+88% CPU" is consistent with its own figures).
///
/// Paper: +88% CPU, +21% RAM, +2% net, −25% disk.
pub fn r4_physical_percent(phys: &ExperimentResult, virt: &ExperimentResult) -> ResourceRatios {
    let dom0 = virt.hypervisor_host().expect("virtualized result");
    let r = ratios_for(
        |res| phys.resource_series(res, phys.front_host()),
        |res| virt.resource_series(res, dom0),
    );
    ResourceRatios {
        cpu: percent_more(r.cpu),
        ram: percent_more(r.ram),
        disk: percent_more(r.disk),
        net: percent_more(r.net),
    }
}

/// Q1 (§4.1): lag of the DB tier behind the web tier, from the CPU
/// demand series. Positive lag = DB trails, as the paper observes.
pub fn q1_tier_lag(result: &ExperimentResult, max_lag_samples: usize) -> Option<LagResult> {
    let web = result.resource_series(Resource::Cpu, result.front_host());
    let db = result.resource_series(Resource::Cpu, result.back_host());
    find_lag(&web, &db, max_lag_samples)
}

/// Q2 (§4.1/§4.2): RAM level shifts on the front-end host.
///
/// `window`/`threshold_mb` tune the detector; the paper's jumps are
/// ~100 MB steps.
pub fn q2_ram_jumps(result: &ExperimentResult, window: usize, threshold_mb: f64) -> Vec<Jump> {
    let ram = result.resource_series(Resource::Ram, result.front_host());
    detect_jumps(&ram, window, threshold_mb)
}

/// Q3 (§4.2): coefficient of variation of disk traffic, for the
/// variance comparison (non-virt should exceed virt).
pub fn q3_disk_cv(result: &ExperimentResult, host: &str) -> f64 {
    let xs = result.resource_series(Resource::Disk, host);
    cloudchar_analysis::summarize(&xs).map_or(0.0, |s| s.cv)
}

/// A full paper-vs-measured ratio report for one virt/non-virt pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioReport {
    /// R1 measured.
    pub r1: ResourceRatios,
    /// R2 measured.
    pub r2: ResourceRatios,
    /// R3 measured.
    pub r3: ResourceRatios,
    /// R4 measured (percent).
    pub r4_percent: ResourceRatios,
}

/// Paper-reported values for R1–R4.
pub mod paper_values {
    use cloudchar_analysis::ResourceRatios;

    /// §4.1 front-end vs back-end.
    pub const R1: ResourceRatios = ResourceRatios {
        cpu: 6.11,
        ram: 3.29,
        disk: 5.71,
        net: 55.56,
    };
    /// §4.1 VMs vs hypervisor.
    pub const R2: ResourceRatios = ResourceRatios {
        cpu: 16.84,
        ram: 0.58,
        disk: 0.47,
        net: 0.98,
    };
    /// §4.2 non-virt vs virt aggregates.
    pub const R3: ResourceRatios = ResourceRatios {
        cpu: 3.47,
        ram: 0.97,
        disk: 0.6,
        net: 0.98,
    };
    /// §4.2 physical-demand percent deltas.
    pub const R4_PERCENT: ResourceRatios = ResourceRatios {
        cpu: 88.0,
        ram: 21.0,
        disk: -25.0,
        net: 2.0,
    };
}

/// Compute all four ratio sets.
pub fn ratio_report(virt: &ExperimentResult, phys: &ExperimentResult) -> RatioReport {
    RatioReport {
        r1: r1_front_vs_back(virt),
        r2: r2_vms_vs_dom0(virt),
        r3: r3_nonvirt_vs_virt(phys, virt),
        r4_percent: r4_physical_percent(phys, virt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Deployment, ExperimentConfig};
    use crate::experiment::run;
    use cloudchar_rubis::WorkloadMix;

    fn pair() -> (ExperimentResult, ExperimentResult) {
        let virt = run(ExperimentConfig::fast(
            Deployment::Virtualized,
            WorkloadMix::BROWSING,
        ));
        let phys = run(ExperimentConfig::fast(
            Deployment::NonVirtualized,
            WorkloadMix::BROWSING,
        ));
        (virt, phys)
    }

    #[test]
    fn ratio_report_is_finite_and_shaped() {
        let (virt, phys) = pair();
        let rep = ratio_report(&virt, &phys);
        // Front-end demands more of everything than the back-end.
        assert!(rep.r1.cpu > 1.0, "r1 cpu {}", rep.r1.cpu);
        assert!(rep.r1.ram > 1.0, "r1 ram {}", rep.r1.ram);
        assert!(rep.r1.net > 5.0, "r1 net {}", rep.r1.net);
        // VMs report far more CPU than dom0's physical view. (At the
        // reduced test scale dom0's fixed housekeeping weighs more than
        // in the paper-scale run, so the bar here is loose; the repro
        // harness checks the paper-scale value.)
        assert!(rep.r2.cpu > 1.3, "r2 cpu {}", rep.r2.cpu);
        // dom0 sees more disk traffic than the VMs request.
        assert!(rep.r2.disk < 1.0, "r2 disk {}", rep.r2.disk);
        // At the reduced test scale dom0's fixed housekeeping dominates
        // its view, so R3/R4 only need to be positive and finite here;
        // the repro harness checks the paper-scale values (>1, +88%).
        assert!(rep.r3.cpu > 0.0, "r3 cpu {}", rep.r3.cpu);
        assert!(rep.r4_percent.cpu > -100.0, "r4 cpu {}", rep.r4_percent.cpu);
        for r in [&rep.r1, &rep.r2, &rep.r3, &rep.r4_percent] {
            for res in cloudchar_analysis::Resource::ALL {
                assert!(r.get(res).is_finite(), "{res:?} not finite");
            }
        }
    }

    #[test]
    fn tier_lag_is_detectable() {
        let (virt, _) = pair();
        let lag = q1_tier_lag(&virt, 5).expect("lag computable");
        assert!(lag.correlation > 0.1, "tiers should co-vary: {lag:?}");
        assert!(lag.lag_samples.abs() <= 5);
    }

    #[test]
    fn disk_cv_positive() {
        let (virt, phys) = pair();
        assert!(q3_disk_cv(&virt, virt.front_host()) > 0.0);
        assert!(q3_disk_cv(&phys, phys.front_host()) > 0.0);
    }
}
